//! Quickstart: measure what the paper measured, in a dozen lines each.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the §4 testbed — two DECstation 5000/200s with OSIRIS boards
//! linked back-to-back — and runs one latency and one throughput
//! experiment on it, then switches machines to the DEC 3000/600.
//!
//! Pass `--trace-out trace.json` to additionally record one traced
//! ping-pong on the typed timeline and write it as Chrome trace-event
//! JSON (load it in `chrome://tracing` or Perfetto).
//!
//! Pass `--pdu-trace` to run one traced ping-pong and print the ping
//! PDU's full causal span tree (send → fragmentation → DMA → lanes →
//! reassembly → interrupt → delivery) plus its per-stage latency
//! attribution, which sums exactly to the measured end-to-end latency.
//!
//! Pass `--shards N` to run a many-pairs workload on the sharded
//! conservative-lookahead engine (N threads) and print its goodput
//! line — which is byte-identical to the single-threaded line, the
//! sharded engine's core guarantee.

use osiris::board::dma::DmaMode;
use osiris::config::{TestbedConfig, TouchMode};
use osiris::experiments::{receive_throughput, round_trip_latency};
use osiris::report;
use osiris::sim::{CriticalPath, SimTime, Simulation};
use osiris::testbed::{Event, NodeId, Testbed};

/// Runs one 1 KB ping-pong with the timeline enabled and writes the
/// Chrome trace-event JSON document to `path`.
fn dump_chrome_trace(path: &str) {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 1;
    let tb = Testbed::new_pair(cfg);
    tb.timeline.set_enabled(true);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    assert!(sim.run_while(|m| !m.done), "traced ping did not complete");
    let doc = sim.model.timeline.to_chrome_json().render_pretty();
    std::fs::write(path, doc).expect("write trace file");
    println!(
        "wrote {} timeline events to {path} (open in chrome://tracing or Perfetto)",
        sim.model.timeline.events().len()
    );
}

/// Runs one traced 16 KB ping-pong and prints the ping PDU's whole
/// causal path: the span tree across every layer, then the per-stage
/// attribution summing to the measured end-to-end latency.
fn print_pdu_trace() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 1;
    let tb = Testbed::new_pair(cfg);
    tb.timeline.set_enabled(true);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    assert!(sim.run_while(|m| !m.done), "traced ping did not complete");
    let paths = CriticalPath::analyze_all(&sim.model.timeline);
    let ping = paths
        .iter()
        .find(|p| p.ctx.host == 0)
        .expect("traced ping PDU");
    println!("one 1 KB UDP/IP datagram, node 0 -> node 1 (DEC 5000/200 pair):\n");
    print!("{}", ping.render_tree());
    println!("\nwhere the time went:");
    print!("{}", ping.render_stage_table());
    if let Some(warn) = report::dropped_spans_warning(&sim.model.snapshot()) {
        println!("{warn}");
    }
}

/// Runs an 8-pair switched workload on the sharded engine and shows
/// the partition-invariant goodput line next to the shard layout.
fn run_sharded(shards: usize) {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8 * 1024;
    cfg.messages = 4;
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    cfg.sim.shards = shards;
    let out = osiris::Scenario::ManyPairs { pairs: 8 }.run(cfg);
    assert!(out.done, "many-pairs must complete");
    println!(
        "8 source->sink pairs through the switch on {} shard(s): {}",
        out.shards,
        out.goodput_line()
    );
    for s in &out.per_shard {
        println!(
            "  shard {}: {} events scheduled, {} dispatched, slab high-water {}",
            s.shard, s.events_scheduled, s.events_dispatched, s.slab_high_water
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        let path = args.get(i + 1).expect("--trace-out needs a file path");
        dump_chrome_trace(path);
        return;
    }
    if args.iter().any(|a| a == "--pdu-trace") {
        print_pdu_trace();
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let shards: usize = args
            .get(i + 1)
            .expect("--shards needs a thread count")
            .parse()
            .expect("--shards takes an integer");
        run_sharded(shards);
        return;
    }
    // ── Round-trip latency (Table 1 style) ─────────────────────────────
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 16;
    cfg.touch = TouchMode::WritePerMessage;
    let lat = round_trip_latency(&cfg);
    println!(
        "UDP/IP round trip, 1 KB messages, DEC 5000/200 pair: {:.0} us (paper: 659 us)",
        lat.mean_us()
    );

    // ── Receive-side throughput (Figure 2 style) ───────────────────────
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 64 * 1024;
    cfg.messages = 16;
    cfg.warmup = 3;
    let single = receive_throughput(&cfg);
    cfg.rx_dma = DmaMode::DoubleCell;
    let double = receive_throughput(&cfg);
    println!(
        "Receive throughput, 64 KB messages: single-cell DMA {:.0} Mbps, double-cell {:.0} Mbps",
        single.mbps, double.mbps
    );
    println!(
        "Interrupts per delivered PDU: {:.2} (the §2.1.2 suppression at work)",
        single.interrupts_per_pdu
    );

    // ── Same experiment, next-generation workstation ───────────────────
    let mut cfg = TestbedConfig::dec3000_600_udp();
    cfg.msg_size = 64 * 1024;
    cfg.messages = 16;
    cfg.warmup = 3;
    cfg.rx_dma = DmaMode::DoubleCell;
    let alpha = receive_throughput(&cfg);
    println!(
        "DEC 3000/600 with double-cell DMA: {:.0} Mbps — approaching the 516 Mbps link payload",
        alpha.mbps
    );
}
