//! Quickstart: measure what the paper measured, in a dozen lines each.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the §4 testbed — two DECstation 5000/200s with OSIRIS boards
//! linked back-to-back — and runs one latency and one throughput
//! experiment on it, then switches machines to the DEC 3000/600.
//!
//! Pass `--trace-out trace.json` to additionally record one traced
//! ping-pong on the typed timeline and write it as Chrome trace-event
//! JSON (load it in `chrome://tracing` or Perfetto).
//!
//! Pass `--pdu-trace` to run one traced ping-pong and print the ping
//! PDU's full causal span tree (send → fragmentation → DMA → lanes →
//! reassembly → interrupt → delivery) plus its per-stage latency
//! attribution, which sums exactly to the measured end-to-end latency.
//!
//! Pass `--shards N` to run a many-pairs workload on the sharded
//! conservative-lookahead engine (N threads) and print its goodput
//! line — which is byte-identical to the single-threaded line, the
//! sharded engine's core guarantee.
//!
//! Pass `--sample-every <period>` (`100us`, `2ms`, or a bare number =
//! microseconds) to run an incast with the runtime telemetry plane on:
//! deterministic time-series sampling of the engine's own registry —
//! per-event-type dispatch rates, switch queue depth, slab high water.
//! Prints the per-series summary table (plus the shard self-profile
//! when `--shards N` > 1). Composes with:
//!
//! * `--senders N` — incast fan-in (default 64);
//! * `--series-out <path>` — write the series (`.csv` → CSV, `.jsonl`
//!   → JSON-lines, anything else → one JSON document);
//! * `--trace-out <path>` — write a Chrome trace: sequentially, the
//!   full span timeline with the sampled counter tracks merged in;
//!   sharded, the counter tracks alone.

use osiris::board::dma::DmaMode;
use osiris::config::{TestbedConfig, TouchMode};
use osiris::experiments::{receive_throughput, round_trip_latency};
use osiris::report;
use osiris::sim::{CriticalPath, SimDuration, SimTime, Simulation};
use osiris::testbed::{Event, NodeId, Testbed};
use osiris::{run_sampled, Sampler};

/// Runs one 1 KB ping-pong with the timeline enabled and writes the
/// Chrome trace-event JSON document to `path`.
fn dump_chrome_trace(path: &str) {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 1;
    let tb = Testbed::new_pair(cfg);
    tb.timeline.set_enabled(true);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    assert!(sim.run_while(|m| !m.done), "traced ping did not complete");
    let doc = sim.model.timeline.to_chrome_json().render_pretty();
    std::fs::write(path, doc).expect("write trace file");
    println!(
        "wrote {} timeline events to {path} (open in chrome://tracing or Perfetto)",
        sim.model.timeline.events().len()
    );
}

/// Runs one traced 16 KB ping-pong and prints the ping PDU's whole
/// causal path: the span tree across every layer, then the per-stage
/// attribution summing to the measured end-to-end latency.
fn print_pdu_trace() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 1;
    let tb = Testbed::new_pair(cfg);
    tb.timeline.set_enabled(true);
    let mut sim = Simulation::new(tb);
    sim.queue
        .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
    assert!(sim.run_while(|m| !m.done), "traced ping did not complete");
    let paths = CriticalPath::analyze_all(&sim.model.timeline);
    let ping = paths
        .iter()
        .find(|p| p.ctx.host == 0)
        .expect("traced ping PDU");
    println!("one 1 KB UDP/IP datagram, node 0 -> node 1 (DEC 5000/200 pair):\n");
    print!("{}", ping.render_tree());
    println!("\nwhere the time went:");
    print!("{}", ping.render_stage_table());
    if let Some(warn) = report::dropped_spans_warning(&sim.model.snapshot()) {
        println!("{warn}");
    }
}

/// Runs an 8-pair switched workload on the sharded engine and shows
/// the partition-invariant goodput line next to the shard layout.
fn run_sharded(shards: usize) {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8 * 1024;
    cfg.messages = 4;
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    cfg.sim.shards = shards;
    let out = osiris::Scenario::ManyPairs { pairs: 8 }.run(cfg);
    assert!(out.done, "many-pairs must complete");
    println!(
        "8 source->sink pairs through the switch on {} shard(s): {}",
        out.shards,
        out.goodput_line()
    );
    for s in &out.per_shard {
        println!(
            "  shard {}: {} events scheduled, {} dispatched, slab high-water {}",
            s.shard, s.events_scheduled, s.events_dispatched, s.slab_high_water
        );
    }
}

/// Parses a `--sample-every` period: `100us`, `2ms`, `500ns`, or a
/// bare number of microseconds.
fn parse_period(s: &str) -> SimDuration {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let n: u64 = s[..split]
        .parse()
        .expect("--sample-every needs a number, e.g. 100us");
    match &s[split..] {
        "" | "us" => SimDuration::from_us(n),
        "ns" => SimDuration::from_ns(n),
        "ms" => SimDuration::from_us(n * 1_000),
        "s" => SimDuration::from_us(n * 1_000_000),
        unit => panic!("unknown --sample-every unit {unit:?} (use ns/us/ms/s)"),
    }
}

/// The telemetry workload: an N-sender switched incast sampled on the
/// `every` grid. Reports the series table (and shard profile), then
/// writes the optional series file and Chrome counter trace.
fn run_telemetry(
    senders: usize,
    shards: usize,
    every: SimDuration,
    series_out: Option<&str>,
    trace_out: Option<&str>,
) {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 2 * 1024;
    cfg.messages = 1;
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    // At 64-way fan-in even a maxed-out 63-buffer free ring overruns;
    // reliable mode reaps and retransmits what the overrun sheds — the
    // congested regime the telemetry plane is for.
    cfg.rx_buffers = 63;
    cfg.reliable = true;
    cfg.reassembly_timeout = Some(SimDuration::from_us(1000));
    cfg.sim.shards = shards;
    cfg.sim.sample_every = Some(every);
    let out = osiris::Scenario::Incast { senders }.run(cfg.clone());
    assert!(out.done, "incast must complete");
    let dump = out.series.as_ref().expect("sampling was on");
    let title = format!(
        "{senders}-sender switched incast on {shards} shard(s), sampled every {:.0} us:",
        every.as_us_f64()
    );
    print!("{}", report::series_summary(&title, dump));
    if shards > 1 {
        print!("{}", report::shard_profile("engine self-profile:", &out));
    }
    println!("  {}", out.goodput_line());

    if let Some(path) = series_out {
        let text = if path.ends_with(".csv") {
            dump.to_csv()
        } else if path.ends_with(".jsonl") {
            dump.to_jsonl()
        } else {
            dump.to_json().render_pretty()
        };
        std::fs::write(path, text).expect("write series file");
        println!("wrote {} series to {path}", dump.series.len());
    }

    if let Some(path) = trace_out {
        let doc = if shards <= 1 {
            // Re-run the same deterministic history with the span
            // timeline enabled and merge the sampled counter tracks
            // into the span export — one Chrome document showing both.
            cfg.sim.sample_every = None;
            let mut sim = osiris::Scenario::Incast { senders }.launch(cfg);
            sim.model.timeline.set_enabled(true);
            let sampler = Sampler::new(
                &sim.model.registry,
                &sim.model.registry.probe("obs"),
                every,
                sim.model.cfg.sim.series_capacity,
            );
            run_sampled(&mut sim, &sampler);
            let dump = sampler.finish(sim.now());
            dump.merge_into_chrome(sim.model.timeline.to_chrome_json())
        } else {
            // Sharded runs have no merged span timeline; the counter
            // tracks stand alone.
            dump.to_chrome_json()
        };
        std::fs::write(path, doc.render_pretty()).expect("write trace file");
        println!("wrote counter trace to {path} (open in chrome://tracing or Perfetto)");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--sample-every") {
        let every = parse_period(args.get(i + 1).expect("--sample-every needs a period"));
        let flag_val = |name: &str| {
            args.iter().position(|a| a == name).map(|j| {
                args.get(j + 1)
                    .unwrap_or_else(|| panic!("{name} needs a value"))
            })
        };
        let senders: usize = flag_val("--senders").map_or(64, |v| v.parse().expect("--senders"));
        let shards: usize = flag_val("--shards").map_or(1, |v| v.parse().expect("--shards"));
        let series_out = flag_val("--series-out").map(String::as_str);
        let trace_out = flag_val("--trace-out").map(String::as_str);
        run_telemetry(senders, shards, every, series_out, trace_out);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        let path = args.get(i + 1).expect("--trace-out needs a file path");
        dump_chrome_trace(path);
        return;
    }
    if args.iter().any(|a| a == "--pdu-trace") {
        print_pdu_trace();
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let shards: usize = args
            .get(i + 1)
            .expect("--shards needs a thread count")
            .parse()
            .expect("--shards takes an integer");
        run_sharded(shards);
        return;
    }
    // ── Round-trip latency (Table 1 style) ─────────────────────────────
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 16;
    cfg.touch = TouchMode::WritePerMessage;
    let lat = round_trip_latency(&cfg);
    println!(
        "UDP/IP round trip, 1 KB messages, DEC 5000/200 pair: {:.0} us (paper: 659 us)",
        lat.mean_us()
    );

    // ── Receive-side throughput (Figure 2 style) ───────────────────────
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 64 * 1024;
    cfg.messages = 16;
    cfg.warmup = 3;
    let single = receive_throughput(&cfg);
    cfg.rx_dma = DmaMode::DoubleCell;
    let double = receive_throughput(&cfg);
    println!(
        "Receive throughput, 64 KB messages: single-cell DMA {:.0} Mbps, double-cell {:.0} Mbps",
        single.mbps, double.mbps
    );
    println!(
        "Interrupts per delivered PDU: {:.2} (the §2.1.2 suppression at work)",
        single.interrupts_per_pdu
    );

    // ── Same experiment, next-generation workstation ───────────────────
    let mut cfg = TestbedConfig::dec3000_600_udp();
    cfg.msg_size = 64 * 1024;
    cfg.messages = 16;
    cfg.warmup = 3;
    cfg.rx_dma = DmaMode::DoubleCell;
    let alpha = receive_throughput(&cfg);
    println!(
        "DEC 3000/600 with double-cell DMA: {:.0} Mbps — approaching the 516 Mbps link payload",
        alpha.mbps
    );
}
