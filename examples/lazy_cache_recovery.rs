//! Lazy cache invalidation (§2.3), demonstrated with real stale bytes.
//!
//! The DECstation 5000/200 gives the CPU no coherent view of memory after
//! DMA. The paper's trick: don't invalidate eagerly; let the protocol
//! checksum *detect* stale reads and only then invalidate and re-evaluate.
//! This works because (1) the network already needs error handling,
//! (2) 64 buffers × 16 KB of rotation flushes a 64 KB cache long before a
//! buffer is reused, and (3) per-stream buffer recycling keeps any stale
//! bytes an application could see confined to its own earlier traffic.
//!
//! Here we *force* the unlikely event — a cached line surviving until its
//! buffer is reused — and watch the UDP checksum catch it and the lazy
//! recovery repair it, with the genuine stale bytes flowing through.

use osiris::atm::Vci;
use osiris::board::descriptor::Descriptor;
use osiris::host::driver::DeliveredPdu;
use osiris::host::machine::{HostMachine, MachineSpec};
use osiris::mem::{AddressSpace, PhysAddr};
use osiris::proto::stack::{ProtoConfig, ProtoStack, RxVerdict};
use osiris::sim::SimTime;

fn main() {
    let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 3);
    let mut asp = AddressSpace::new(host.spec.page_size);
    let mut stack = ProtoStack::new(
        ProtoConfig {
            udp_checksum: true,
            ..ProtoConfig::paper_default()
        },
        &mut host,
        &mut asp,
    );
    let buffer = PhysAddr(0x40_0000);

    // 1. The buffer's previous life: an earlier message's bytes end up in
    //    the CPU cache when the application reads them.
    let old = vec![0x11u8; 2048];
    host.phys.write(buffer, &old);
    let mut scratch = vec![0u8; 2048];
    let t0 = host
        .cpu_read(SimTime::ZERO, buffer, &mut scratch)
        .grant
        .finish;
    println!("t={t0}: application read the previous message; its bytes are cached");

    // 2. The board DMAs a NEW PDU into the same buffer. The 5000/200's
    //    cache is not updated — the cached lines are now stale.
    let payload = vec![0xC3u8; 1500];
    let pdus = ProtoStack::build_wire_pdus(stack.cfg, 77, 9, 10, &payload);
    let wire = &pdus[0];
    let mut phys = std::mem::replace(&mut host.phys, osiris::mem::PhysMemory::new(4096, 4096));
    host.cache.dma_write(&mut phys, buffer, wire);
    host.phys = phys;
    println!(
        "t={t0}: DMA stored a new {}-byte PDU behind the cache's back",
        wire.len()
    );

    // 3. Protocol input: the checksum reads through the cache, sees the
    //    STALE bytes, mismatches, invalidates, re-reads, and delivers.
    let pdu = DeliveredPdu {
        vci: Vci(5),
        bufs: vec![Descriptor::tx(buffer, wire.len() as u32, Vci(5), true)],
        len: wire.len() as u32,
        ready_at: t0,
        ctx: None,
    };
    let (verdict, t1) = stack.input(t0, &mut host, &pdu);
    match verdict {
        RxVerdict::Deliver { len, data, .. } => {
            println!("t={t1}: delivered {len} bytes after lazy recovery");
            let mut bytes = Vec::new();
            for seg in data.segs() {
                bytes.extend_from_slice(host.phys.read(seg.addr, seg.len as usize));
            }
            assert_eq!(bytes, payload, "recovered data must be the new message");
        }
        other => panic!("expected delivery, got {other:?}"),
    }
    println!(
        "lazy recoveries performed: {} (stale lines invalidated, message re-evaluated)",
        stack.stats().lazy_recoveries
    );
    assert!(stack.stats().lazy_recoveries >= 1);

    // 4. The price the eager strategy would have paid on EVERY buffer:
    let words = 16 * 1024 / 4;
    println!(
        "eager alternative: ~{words} cycles (~{} us at 25 MHz) of invalidation per 16 KB buffer",
        words as f64 / 25.0
    );
}
