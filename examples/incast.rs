//! Incast: N senders stream at one receiver through the AURORA switch.
//!
//! ```sh
//! cargo run --release --example incast
//! ```
//!
//! The workload class the node/fabric split unlocks: every sender gets
//! its own VCI routed to the receiver's four-port block, so the N-to-1
//! fan-in contends at the switch's output queues while the receiver's
//! free ring and interrupt suppression absorb the merged stream —
//! the place where the paper's §2.1.2 and §2.2 lessons actually bite.

use osiris::config::TestbedConfig;
use osiris::experiments::incast_throughput;

fn main() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 12 * 1024; // single IP fragment: four-way framing needs
    cfg.messages = 6; // every PDU to span all four lanes
    cfg.warmup = 1;

    println!("N-to-1 incast, 12 KB UDP messages, DEC 5000/200s through the switch:");
    println!(
        "{:>7} {:>10} {:>10} {:>9} {:>12} {:>14}",
        "senders", "Mbps", "delivered", "intr/PDU", "switch cells", "max queue (us)"
    );
    for senders in [1, 2, 4, 8] {
        let r = incast_throughput(&cfg, senders);
        println!(
            "{:>7} {:>10.0} {:>10} {:>9.2} {:>12} {:>14.1}",
            r.senders,
            r.mbps,
            r.delivered,
            r.interrupts_per_pdu,
            r.switch_cells,
            r.max_port_queueing_us
        );
        assert_eq!(r.dropped_pdus, 0, "no PDU shed at these sizes");
    }
}
