//! A stripe crossing a real switch with real cross traffic — the AURORA
//! deployment scenario behind §2.6's third skew source.
//!
//! Four lanes of a striped PDU traverse four distinct switch ports. Ports
//! 1 and 3 also carry bursty on/off background traffic, so the stripe's
//! lanes pick up *different* queueing delays — the skew "it was not
//! within our power to eliminate". The four-way reassembler absorbs it;
//! a coordinated switch would remove it by making every lane as slow as
//! the busiest.

use osiris::atm::sar::{FramingMode, Reassembler, ReassemblyMode, SegmentUnit, Segmenter};
use osiris::atm::switch::{Switch, SwitchSpec};
use osiris::atm::traffic::{TrafficModel, TrafficSource};
use osiris::atm::Vci;
use osiris::sim::{SimDuration, SimTime};

fn main() {
    for (label, spec) in [
        (
            "uncoordinated switch (the real AURORA)",
            SwitchSpec::sts3c_16port(),
        ),
        (
            "coordinated ports (the rejected design)",
            SwitchSpec::coordinated(),
        ),
    ] {
        let mut sw = Switch::new(spec);
        for lane in 0..4u16 {
            sw.route(Vci(10 + lane), lane as usize);
        }
        sw.set_group(vec![0, 1, 2, 3]);

        // Bursty cross traffic hammers ports 1 and 3.
        for (port, seed) in [(1usize, 11u64), (3, 13)] {
            let mut src = TrafficSource::new(
                TrafficModel::OnOff {
                    mean_burst: 25,
                    mean_gap: 30,
                },
                155_520_000,
                SimTime::ZERO,
                seed,
            );
            for at in src.arrivals_until(SimTime::from_ms(1)) {
                sw.background_load(at, port, 1);
            }
        }

        // One 30-cell striped PDU enters mid-storm.
        let data: Vec<u8> = (0..44 * 30).map(|i| (i % 251) as u8).collect();
        let cells = Segmenter {
            framing: FramingMode::FourWay { lanes: 4 },
            unit: SegmentUnit::Pdu,
        }
        .segment(Vci(0), &[&data]);
        let mut arrivals = Vec::new();
        for (i, mut cell) in cells.into_iter().enumerate() {
            let lane = i % 4;
            cell.header.vci = Vci(10 + lane as u16);
            let t = SimTime::from_us(300) + SimDuration::from_ns(700 * i as u64);
            let (port, dep) = sw.forward(t, &cell).expect("routed");
            cell.header.vci = Vci(0);
            arrivals.push((dep, port, cell));
        }
        arrivals.sort_by_key(|&(at, _, _)| at);

        // Per-lane queueing the stripe experienced.
        print!("{label}: per-port queueing =");
        for p in 0..4 {
            print!(" {:.0}us", sw.port_stats(p).queueing.as_us_f64());
        }
        let first = arrivals.first().unwrap().0;
        let last = arrivals.last().unwrap().0;
        println!("  (PDU spread {:.0} us)", last.since(first).as_us_f64());

        // Reassemble with strategy 2.
        let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true);
        let mut done = None;
        for (_, lane, cell) in &arrivals {
            done = r.receive(*lane, cell).unwrap().completed.or(done);
        }
        let pdu = done.expect("PDU completes");
        assert!(pdu.crc_ok);
        assert_eq!(pdu.data.unwrap(), data);
        println!("  four-way reassembly: complete, CRC ok, data intact\n");
    }
    println!("Lesson (§2.6): live with the skew and reassemble around it —");
    println!("coordination equalises delay only by giving every lane the worst one.");
}
