//! Striping and skew: the §2.6 story, end to end.
//!
//! The OSIRIS link reaches 622 Mbps by striping cells over four 155 Mbps
//! lanes — and striping introduces *skew*, a bounded misordering in which
//! each lane stays FIFO while lanes shift against each other. This
//! example walks the paper's whole argument:
//!
//! 1. a naive in-order reassembler silently corrupts PDUs under skew —
//!    caught only by the (real) AAL CRC-32;
//! 2. strategy 1 (sequence numbers) and strategy 2 (four concurrent
//!    AAL5 reassemblies) both deliver correct data under the same skew;
//! 3. skew destroys the double-cell DMA combining optimisation — the
//!    serious disadvantage §2.6 ends on.

use osiris::atm::sar::{FramingMode, ReassemblyMode, SegmentUnit, Segmenter};
use osiris::atm::stripe::{SkewConfig, StripedLink};
use osiris::atm::{LinkSpec, Vci};
use osiris::config::TestbedConfig;
use osiris::experiments::skew_vs_merging;
use osiris::host::machine::MachineSpec;
use osiris::sim::SimTime;

/// Pushes one PDU through a (possibly skewed) striped link and collects
/// the cells in arrival order with their lanes.
fn send_over(
    skew: SkewConfig,
    framing: FramingMode,
    data: &[u8],
) -> Vec<(usize, osiris::atm::Cell)> {
    let seg = Segmenter {
        framing,
        unit: SegmentUnit::Pdu,
    };
    let cells = seg.segment(Vci(1), &[data]);
    let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &skew);
    let mut arrivals: Vec<(osiris::sim::SimTime, usize, osiris::atm::Cell)> = Vec::new();
    for (i, mut cell) in cells.into_iter().enumerate() {
        if let Some((lane, at)) = link.send_cell(SimTime::ZERO, i as u32, &mut cell) {
            arrivals.push((at, lane, cell));
        }
    }
    // Stable sort by arrival time keeps per-lane FIFO order intact.
    arrivals.sort_by_key(|&(at, _, _)| at);
    arrivals
        .into_iter()
        .map(|(_, lane, cell)| (lane, cell))
        .collect()
}

fn reassemble(mode: ReassemblyMode, arrivals: &[(usize, osiris::atm::Cell)]) -> (bool, Vec<u8>) {
    let mut r = osiris::atm::Reassembler::new(mode, 1 << 20, true);
    let mut out = None;
    for (lane, cell) in arrivals {
        if let Ok(d) = r.receive(*lane, cell) {
            out = d.completed.or(out);
        }
    }
    match out {
        Some(p) => (p.crc_ok, p.data.unwrap_or_default()),
        None => (false, Vec::new()),
    }
}

fn main() {
    let data: Vec<u8> = (0..44 * 40).map(|i| (i % 251) as u8).collect();
    let skew = SkewConfig::mux_skew(33);

    // 1. In-order reassembly under skew: corrupted, CRC catches it.
    let arrivals = send_over(skew.clone(), FramingMode::EndOfPdu, &data);
    let (crc_ok, got) = reassemble(ReassemblyMode::InOrder, &arrivals);
    println!(
        "in-order reassembly under mux skew: crc_ok={crc_ok}, data intact={}",
        got == data
    );
    assert!(!crc_ok, "the CRC must flag misordered assembly");

    // 2a. Strategy 1: AAL sequence numbers place each cell.
    let (crc_ok, got) = reassemble(ReassemblyMode::SeqNum { max_cells: 4096 }, &arrivals);
    println!(
        "sequence-number reassembly:          crc_ok={crc_ok}, data intact={}",
        got == data
    );
    assert!(crc_ok && got == data);

    // 2b. Strategy 2: four concurrent AAL5 reassemblies.
    let arrivals = send_over(skew, FramingMode::FourWay { lanes: 4 }, &data);
    let (crc_ok, got) = reassemble(ReassemblyMode::FourWay { lanes: 4 }, &arrivals);
    println!(
        "four-way (per-lane AAL5) reassembly: crc_ok={crc_ok}, data intact={}",
        got == data
    );
    assert!(crc_ok && got == data);

    // 3. The cost: double-cell combining collapses.
    let (aligned, skewed) = skew_vs_merging(MachineSpec::ds5000_200());
    println!(
        "\ndouble-cell DMA merge ratio: {aligned:.2} with aligned lanes, {skewed:.2} under skew"
    );
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 16 * 1024;
    let _ = cfg; // (see `cargo run -p osiris-bench --bin lessons` for the sweep)
    println!("→ skew trades ~20% of the DMA-throughput gain for link scalability (§2.6).");
}
