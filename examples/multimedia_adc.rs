//! Application device channels for a latency-sensitive application
//! (§3.2's motivating scenario).
//!
//! "In many distributed applications, such as multimedia, network I/O is
//! a frequent and common component of program execution. ADCs recognise
//! this and allow the operating system kernel to be bypassed in the
//! common case of network data delivery."
//!
//! This example:
//! 1. compares message latency for an application using the kernel path,
//!    a plain user process, and an ADC;
//! 2. shows the transmit-priority mechanism: the ADC's queue is served
//!    before the kernel's;
//! 3. shows the protection mechanism: a descriptor naming memory outside
//!    the channel's authorized page list is stopped on the board and
//!    surfaced as an access-violation exception.

use std::collections::HashSet;

use osiris::adc::AdcManager;
use osiris::atm::stripe::SkewConfig;
use osiris::atm::{LinkSpec, StripedLink, Vci};
use osiris::board::descriptor::Descriptor;
use osiris::board::dpram::DpramLayout;
use osiris::board::rx::{RxConfig, RxProcessor};
use osiris::board::tx::{TxConfig, TxProcessor};
use osiris::config::{DataPath, TestbedConfig, TouchMode};
use osiris::experiments::round_trip_latency;
use osiris::host::domain::DomainId;
use osiris::host::machine::{HostMachine, MachineSpec};
use osiris::mem::PhysAddr;
use osiris::sim::SimTime;

fn main() {
    // ── 1. Latency: kernel vs user vs ADC ─────────────────────────────
    println!("1 KB UDP/IP round trips on a DEC 5000/200 pair:");
    for (label, path) in [
        ("test programs in the kernel", DataPath::Kernel),
        ("user process via the kernel", DataPath::UserViaKernel),
        ("user process with an ADC", DataPath::Adc),
    ] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 1024;
        cfg.messages = 12;
        cfg.touch = TouchMode::WritePerMessage;
        cfg.data_path = path;
        let lat = round_trip_latency(&cfg);
        println!("  {label:<30} {:>6.0} us", lat.mean_us());
    }
    println!("  → the ADC matches the in-kernel latency; the syscall path does not.\n");

    // ── 2. Transmit priority ───────────────────────────────────────────
    let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 7);
    let mut tx = TxProcessor::new(TxConfig::paper_default(), DpramLayout::paper_default());
    let mut rx = RxProcessor::new(RxConfig::paper_default(), DpramLayout::paper_default());
    let mut mgr = AdcManager::new();
    let frames: HashSet<u64> = (64..128).collect();
    let page = mgr
        .open(DomainId(1), vec![Vci(80)], frames, 7, &mut tx, &mut rx)
        .expect("channel");
    // Bulk kernel traffic on queue 0, one urgent video frame on the ADC.
    for i in 0..4u64 {
        tx.queue_mut(0)
            .push(Descriptor::tx(
                PhysAddr(0x1000 + i * 0x100),
                44,
                Vci(1),
                true,
            ))
            .unwrap();
    }
    host.phys.write(PhysAddr(64 * 4096), &[0xEE; 44]);
    tx.queue_mut(page)
        .push(Descriptor::tx(PhysAddr(64 * 4096), 44, Vci(80), true))
        .unwrap();
    let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
    let mut slab = osiris::atm::CellSlab::new();
    let first = tx
        .service(
            SimTime::ZERO,
            &mut host.mem_sys,
            &host.phys,
            &mut link,
            &mut slab,
        )
        .unwrap();
    println!(
        "first PDU transmitted came from queue {} (the priority-7 ADC)",
        first.queue
    );
    assert_eq!(first.queue, page);

    // ── 3. Protection ──────────────────────────────────────────────────
    tx.queue_mut(page)
        .push(Descriptor::tx(PhysAddr(0x2000), 44, Vci(80), true))
        .unwrap();
    let mut out = None;
    let mut t = first.finished_at;
    while let Some(o) = tx.service(t, &mut host.mem_sys, &host.phys, &mut link, &mut slab) {
        t = o.finished_at;
        if o.violation {
            out = Some(o);
            break;
        }
    }
    let violation = out.expect("the rogue descriptor must be caught");
    assert!(violation.arrivals.is_empty());
    let t = mgr.deliver_violation(t, &mut host, page);
    println!(
        "rogue descriptor (outside the authorized pages) blocked on the board; \
         exception delivered to the application at t={t}"
    );
}
