//! # osiris-fbuf — fast buffers (§3.1)
//!
//! "The fbuf mechanism … combines two well-known techniques for
//! transferring data across protection domains: page remapping and shared
//! memory." An fbuf that is already mapped into a path's sequence of
//! domains is **cached**; transferring it costs almost nothing. An
//! **uncached** fbuf must be mapped into each domain as it crosses, paying
//! page-remap costs — "an order of magnitude difference in how fast the
//! data can be transferred across a domain boundary".
//!
//! The OSIRIS driver "maintains queues of preallocated cached fbufs for
//! the 16 most recently used data paths, plus a single queue of
//! preallocated uncached fbufs"; the board's early-demultiplexing decision
//! (VCI → path) picks which queue a reassembly buffer comes from.
//!
//! # Example
//!
//! ```
//! use osiris_fbuf::{FbufAllocator, FbufCosts, FbufSource};
//! use osiris_host::machine::{HostMachine, MachineSpec};
//! use osiris_mem::PhysAddr;
//! use osiris_sim::SimTime;
//!
//! let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 1);
//! let costs = FbufCosts::for_machine(&host);
//! let mut fbufs = FbufAllocator::new(costs, PhysAddr(0x10_0000), 16 * 1024, 8);
//!
//! // First use of a path: uncached, pays per-page mapping on transfer.
//! let (mut fb, src) = fbufs.alloc_for_path(3).unwrap();
//! assert_eq!(src, FbufSource::Uncached);
//! fbufs.transfer(SimTime::ZERO, &mut host, &mut fb, 3);
//! fbufs.release(fb);
//!
//! // The path is now warm: cached fbufs, order-of-magnitude cheaper.
//! let (_, src) = fbufs.alloc_for_path(3).unwrap();
//! assert_eq!(src, FbufSource::Cached);
//! ```

use std::collections::VecDeque;

use osiris_host::machine::HostMachine;
use osiris_mem::PhysAddr;
use osiris_sim::obs::{Counter, Probe};
use osiris_sim::resource::Grant;
use osiris_sim::{SimDuration, SimTime};

/// How many paths keep preallocated cached fbufs (the paper: 16 MRU).
pub const CACHED_PATHS: usize = 16;

/// Identifies an fbuf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FbufId(pub u64);

/// One fast buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fbuf {
    /// Identity.
    pub id: FbufId,
    /// Physically contiguous storage.
    pub addr: PhysAddr,
    /// Size in bytes.
    pub len: u32,
    /// The path whose domain sequence this fbuf is currently mapped into
    /// (`None` = uncached).
    pub cached_for: Option<u32>,
}

/// Where an allocation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FbufSource {
    /// Preallocated and already mapped for the requesting path.
    Cached,
    /// Taken from the uncached pool; the first transfer will pay mapping.
    Uncached,
}

/// Transfer-cost model. The cached/uncached split is the experiment knob;
/// absolute values follow the fbufs paper's order-of-magnitude claim.
#[derive(Debug, Clone, Copy)]
pub struct FbufCosts {
    /// Handing a cached fbuf across one domain boundary (bookkeeping +
    /// pointer passing through shared memory).
    pub cached_transfer: SimDuration,
    /// Per-page remap cost for an uncached fbuf crossing a boundary.
    pub uncached_map_per_page: SimDuration,
    /// Fixed VM overhead per uncached transfer.
    pub uncached_fixed: SimDuration,
}

impl FbufCosts {
    /// Costs scaled to the host (the Alpha's VM operations are faster).
    pub fn for_machine(h: &HostMachine) -> Self {
        match h.spec.bus.topology {
            osiris_mem::MemTopology::SharedBus => FbufCosts {
                cached_transfer: SimDuration::from_us(18),
                uncached_map_per_page: SimDuration::from_us(40),
                uncached_fixed: SimDuration::from_us(60),
            },
            osiris_mem::MemTopology::Crossbar => FbufCosts {
                cached_transfer: SimDuration::from_us(7),
                uncached_map_per_page: SimDuration::from_us(16),
                uncached_fixed: SimDuration::from_us(25),
            },
        }
    }
}

#[derive(Debug)]
struct PathQueue {
    path: u32,
    bufs: VecDeque<Fbuf>,
}

/// fbuf allocation statistics — a point-in-time copy of the allocator's
/// registry counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FbufStats {
    /// Allocations served from a path's cached queue.
    pub cached_hits: u64,
    /// Allocations that fell back to the uncached pool.
    pub uncached_allocs: u64,
    /// Path-cache evictions (17th path pushes out the LRU).
    pub evictions: u64,
}

/// The allocator's registry-visible counters (scope `<probe>.fbuf`).
#[derive(Debug, Clone)]
struct FbufCounters {
    cached_hits: Counter,
    uncached_allocs: Counter,
    evictions: Counter,
}

impl FbufCounters {
    fn with_probe(probe: &Probe) -> Self {
        let p = probe.scoped("fbuf");
        FbufCounters {
            cached_hits: p.counter("cached_hits"),
            uncached_allocs: p.counter("uncached_allocs"),
            evictions: p.counter("evictions"),
        }
    }
}

/// The driver's fbuf allocator: per-path cached queues (MRU-limited) plus
/// the shared uncached pool.
#[derive(Debug)]
pub struct FbufAllocator {
    costs: FbufCosts,
    buf_len: u32,
    /// MRU-ordered (front = most recent) path queues, at most
    /// [`CACHED_PATHS`] of them.
    paths: Vec<PathQueue>,
    uncached: VecDeque<Fbuf>,
    stats: FbufCounters,
}

impl FbufAllocator {
    /// An allocator with detached counters (standalone use). See
    /// [`FbufAllocator::with_probe`].
    pub fn new(costs: FbufCosts, base: PhysAddr, buf_len: u32, pool: usize) -> Self {
        FbufAllocator::with_probe(costs, base, buf_len, pool, &Probe::detached())
    }

    /// An allocator over a preallocated pool of `pool` uncached fbufs of
    /// `buf_len` bytes each, carved from `base` (physically contiguous;
    /// provisioning cost is a boot-time affair), publishing its counters
    /// under `<scope>.fbuf`.
    pub fn with_probe(
        costs: FbufCosts,
        base: PhysAddr,
        buf_len: u32,
        pool: usize,
        probe: &Probe,
    ) -> Self {
        let uncached = (0..pool)
            .map(|i| Fbuf {
                id: FbufId(i as u64),
                addr: base.offset(i as u64 * buf_len as u64),
                len: buf_len,
                cached_for: None,
            })
            .collect();
        FbufAllocator {
            costs,
            buf_len,
            paths: Vec::new(),
            uncached,
            stats: FbufCounters::with_probe(probe),
        }
    }

    /// Allocation statistics (a copy of the current values).
    pub fn stats(&self) -> FbufStats {
        FbufStats {
            cached_hits: self.stats.cached_hits.get(),
            uncached_allocs: self.stats.uncached_allocs.get(),
            evictions: self.stats.evictions.get(),
        }
    }

    /// Buffer size.
    pub fn buf_len(&self) -> u32 {
        self.buf_len
    }

    /// Fbufs waiting in the uncached pool.
    pub fn uncached_available(&self) -> usize {
        self.uncached.len()
    }

    /// Allocates a reassembly buffer for `path` — the decision the OSIRIS
    /// receive processor makes per incoming PDU: "it checks to see if
    /// there is a preallocated fbuf for the VCI of the incoming packet. If
    /// not, it uses a buffer from the queue of uncached fbufs."
    pub fn alloc_for_path(&mut self, path: u32) -> Option<(Fbuf, FbufSource)> {
        if let Some(idx) = self.paths.iter().position(|p| p.path == path) {
            // MRU maintenance.
            let mut q = self.paths.remove(idx);
            if let Some(buf) = q.bufs.pop_front() {
                self.paths.insert(0, q);
                self.stats.cached_hits.incr();
                return Some((buf, FbufSource::Cached));
            }
            self.paths.insert(0, q);
        }
        let buf = self.uncached.pop_front()?;
        self.stats.uncached_allocs.incr();
        Some((buf, FbufSource::Uncached))
    }

    /// Returns an fbuf after the application consumed it. A buffer that
    /// crossed domains for a path stays mapped (cached) for that path;
    /// caching a new path may evict the least-recently-used one, whose
    /// buffers fall back to the uncached pool (their mappings are torn
    /// down lazily).
    pub fn release(&mut self, mut buf: Fbuf) {
        match buf.cached_for {
            Some(path) => {
                if let Some(idx) = self.paths.iter().position(|p| p.path == path) {
                    self.paths[idx].bufs.push_back(buf);
                    return;
                }
                // New cached path: make room.
                if self.paths.len() == CACHED_PATHS {
                    let evicted = self.paths.pop().expect("non-empty");
                    self.stats.evictions.incr();
                    for mut b in evicted.bufs {
                        b.cached_for = None;
                        self.uncached.push_back(b);
                    }
                }
                let mut q = PathQueue {
                    path,
                    bufs: VecDeque::new(),
                };
                q.bufs.push_back(buf);
                self.paths.insert(0, q);
            }
            None => {
                buf.cached_for = None;
                self.uncached.push_back(buf);
            }
        }
    }

    /// Transfers an fbuf across one protection-domain boundary along
    /// `path`, charging the CPU. A cached fbuf is cheap; an uncached one
    /// pays per-page remapping and *becomes* cached for the path.
    pub fn transfer(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        buf: &mut Fbuf,
        path: u32,
    ) -> Grant {
        let cost = if buf.cached_for == Some(path) {
            self.costs.cached_transfer
        } else {
            let pages = (buf.len as u64).div_ceil(host.spec.page_size as u64);
            buf.cached_for = Some(path);
            self.costs.uncached_fixed
                + SimDuration::from_ps(self.costs.uncached_map_per_page.as_ps() * pages)
        };
        host.run_cpu(now, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_host::machine::MachineSpec;

    fn setup() -> (HostMachine, FbufAllocator) {
        let host = HostMachine::boot(MachineSpec::ds5000_200(), 2);
        let costs = FbufCosts::for_machine(&host);
        let alloc = FbufAllocator::new(costs, PhysAddr(0x10_0000), 16 * 1024, 64);
        (host, alloc)
    }

    #[test]
    fn first_use_is_uncached_then_cached() {
        let (mut host, mut alloc) = setup();
        let (mut buf, src) = alloc.alloc_for_path(5).unwrap();
        assert_eq!(src, FbufSource::Uncached);
        alloc.transfer(SimTime::ZERO, &mut host, &mut buf, 5);
        alloc.release(buf);
        // Second allocation for the same path hits the cache.
        let (buf2, src2) = alloc.alloc_for_path(5).unwrap();
        assert_eq!(src2, FbufSource::Cached);
        assert_eq!(buf2.cached_for, Some(5));
        assert_eq!(alloc.stats().cached_hits, 1);
        assert_eq!(alloc.stats().uncached_allocs, 1);
    }

    #[test]
    fn cached_transfer_is_order_of_magnitude_faster() {
        let (mut host, mut alloc) = setup();
        let (mut buf, _) = alloc.alloc_for_path(1).unwrap();
        let g1 = alloc.transfer(SimTime::ZERO, &mut host, &mut buf, 1);
        let uncached_cost = g1.finish.since(g1.start);
        let g2 = alloc.transfer(g1.finish, &mut host, &mut buf, 1);
        let cached_cost = g2.finish.since(g2.start);
        assert!(
            uncached_cost.as_ps() >= 10 * cached_cost.as_ps(),
            "order of magnitude: {uncached_cost} vs {cached_cost}"
        );
    }

    #[test]
    fn mru_eviction_at_17_paths() {
        let (mut host, mut alloc) = setup();
        // Cache one buffer for paths 0..16.
        for path in 0..17u32 {
            let (mut buf, _) = alloc.alloc_for_path(path).unwrap();
            alloc.transfer(SimTime::ZERO, &mut host, &mut buf, path);
            alloc.release(buf);
        }
        assert_eq!(alloc.stats().evictions, 1);
        // Path 0 was least recently used → evicted → next alloc uncached.
        let (_, src) = alloc.alloc_for_path(0).unwrap();
        assert_eq!(src, FbufSource::Uncached);
        // Path 16 is still cached.
        let (_, src) = alloc.alloc_for_path(16).unwrap();
        assert_eq!(src, FbufSource::Cached);
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let (_, mut alloc) = setup();
        for _ in 0..64 {
            assert!(alloc.alloc_for_path(9).is_some());
        }
        assert!(alloc.alloc_for_path(9).is_none());
    }

    #[test]
    fn release_uncached_goes_back_to_pool() {
        let (_, mut alloc) = setup();
        let before = alloc.uncached_available();
        let (buf, _) = alloc.alloc_for_path(3).unwrap();
        assert_eq!(alloc.uncached_available(), before - 1);
        alloc.release(buf); // never transferred → still uncached
        assert_eq!(alloc.uncached_available(), before);
    }

    #[test]
    fn touching_a_path_refreshes_mru_order() {
        let (mut host, mut alloc) = setup();
        for path in 0..16u32 {
            let (mut b, _) = alloc.alloc_for_path(path).unwrap();
            alloc.transfer(SimTime::ZERO, &mut host, &mut b, path);
            alloc.release(b);
        }
        // Touch path 0 (making path 1 the LRU), then cache path 99.
        let (b0, s0) = alloc.alloc_for_path(0).unwrap();
        assert_eq!(s0, FbufSource::Cached);
        alloc.release(b0);
        let (mut b99, _) = alloc.alloc_for_path(99).unwrap();
        alloc.transfer(SimTime::ZERO, &mut host, &mut b99, 99);
        alloc.release(b99);
        // Path 1 should have been evicted, path 0 retained.
        let (_, s1) = alloc.alloc_for_path(1).unwrap();
        assert_eq!(s1, FbufSource::Uncached);
        let (_, s0b) = alloc.alloc_for_path(0).unwrap();
        assert_eq!(s0b, FbufSource::Cached);
    }

    #[test]
    fn alpha_costs_are_lower() {
        let ds = HostMachine::boot(MachineSpec::ds5000_200(), 1);
        let ax = HostMachine::boot(MachineSpec::dec3000_600(), 1);
        let cds = FbufCosts::for_machine(&ds);
        let cax = FbufCosts::for_machine(&ax);
        assert!(cax.cached_transfer < cds.cached_transfer);
        assert!(cax.uncached_map_per_page < cds.uncached_map_per_page);
    }
}
