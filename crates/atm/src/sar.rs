//! Segmentation and reassembly — the algorithms running on the two i80960s.
//!
//! Transmit side: [`Segmenter`] turns a PDU (a chain of physical buffers)
//! into cells. Two unit disciplines are modelled (§2.5.2):
//!
//! * [`SegmentUnit::Pdu`] — cells are filled across buffer boundaries, so
//!   only the final cell of the PDU is partial. This is what the modified
//!   page-boundary-splitting DMA controller enables.
//! * [`SegmentUnit::Buffer`] — each buffer is flushed independently,
//!   producing partially filled cells mid-PDU: "not only is this inelegant,
//!   but it also makes interoperating with other systems impossible".
//!
//! Receive side: [`Reassembler`] supports the three strategies of §2.6:
//!
//! * [`ReassemblyMode::InOrder`] — classic AAL5; assumes no misordering.
//!   Under skew it produces corrupted PDUs that the (real) CRC-32 catches.
//! * [`ReassemblyMode::SeqNum`] — strategy 1: an AAL-header sequence number
//!   places each cell. Sequence space is finite ("we can never guarantee
//!   that the sequence number space is large enough") and partial fills
//!   mid-stream are unsupported — both failure modes are surfaced as
//!   typed errors.
//! * [`ReassemblyMode::FourWay`] — strategy 2: one AAL5-style reassembly
//!   per stripe lane, with a per-lane CRC trailer; the PDU completes when
//!   every contributing lane has completed, and the extra ATM-header
//!   `last_cell` bit resolves PDUs shorter than the stripe width.
//!
//! # Example
//!
//! ```
//! use osiris_atm::sar::{FramingMode, ReassemblyMode, Reassembler, SegmentUnit, Segmenter};
//! use osiris_atm::Vci;
//!
//! let data = vec![7u8; 1000];
//! let seg = Segmenter { framing: FramingMode::EndOfPdu, unit: SegmentUnit::Pdu };
//! let cells = seg.segment(Vci(5), &[&data]);
//! assert_eq!(cells.len(), 23); // ceil(1000 / 44)
//!
//! let mut r = Reassembler::new(ReassemblyMode::InOrder, 1 << 20, true);
//! let mut done = None;
//! for cell in &cells {
//!     done = r.receive(0, cell).unwrap().completed.or(done);
//! }
//! let pdu = done.unwrap();
//! assert!(pdu.crc_ok);
//! assert_eq!(pdu.data.unwrap(), data);
//! ```

use std::collections::HashMap;

use crate::cell::{Cell, Trailer, CELL_PAYLOAD};
use crate::crc::Crc32;
use crate::vci::Vci;

/// How end-of-PDU framing is encoded at segmentation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramingMode {
    /// One end-of-message bit + trailer on the final cell of the PDU.
    EndOfPdu,
    /// Per-lane framing for an `n`-lane striped link: the last cell on
    /// *each lane* carries an EOM bit and a trailer over that lane's bytes.
    FourWay {
        /// Stripe width (the paper's hardware: 4).
        lanes: u8,
    },
}

/// Whether cells may span physical-buffer boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentUnit {
    /// Fill cells across buffers; only the last cell of the PDU is partial.
    Pdu,
    /// Flush a (possibly partial) cell at every buffer boundary — the
    /// problematic original hardware model of §2.5.2.
    Buffer,
}

/// The transmit-side segmentation algorithm.
#[derive(Debug, Clone, Copy)]
pub struct Segmenter {
    /// Framing discipline.
    pub framing: FramingMode,
    /// Buffer-boundary discipline.
    pub unit: SegmentUnit,
}

impl Segmenter {
    /// Segments a PDU presented as a chain of buffers into cells.
    ///
    /// Sequence numbers are assigned in global cell order; the final cell
    /// carries the ATM-header `last_cell` bit. Trailers are attached per
    /// the framing mode.
    ///
    /// # Panics
    /// Panics if the PDU is empty.
    pub fn segment(&self, vci: Vci, buffers: &[&[u8]]) -> Vec<Cell> {
        let total: usize = buffers.iter().map(|b| b.len()).sum();
        assert!(total > 0, "cannot segment an empty PDU");

        // Chop into cell payloads according to the unit discipline.
        let mut chunks: Vec<Vec<u8>> = Vec::with_capacity(total / CELL_PAYLOAD + 2);
        match self.unit {
            SegmentUnit::Pdu => {
                let mut cur: Vec<u8> = Vec::with_capacity(CELL_PAYLOAD);
                for buf in buffers {
                    let mut rest: &[u8] = buf;
                    while !rest.is_empty() {
                        let take = (CELL_PAYLOAD - cur.len()).min(rest.len());
                        cur.extend_from_slice(&rest[..take]);
                        rest = &rest[take..];
                        if cur.len() == CELL_PAYLOAD {
                            chunks.push(std::mem::take(&mut cur));
                        }
                    }
                }
                if !cur.is_empty() {
                    chunks.push(cur);
                }
            }
            SegmentUnit::Buffer => {
                for buf in buffers {
                    for piece in buf.chunks(CELL_PAYLOAD) {
                        chunks.push(piece.to_vec());
                    }
                }
            }
        }

        let n = chunks.len();
        let mut cells: Vec<Cell> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| Cell::data(vci, (i % (u16::MAX as usize + 1)) as u16, c))
            .collect();
        cells[n - 1].header.last_cell = true;

        match self.framing {
            FramingMode::EndOfPdu => {
                let mut crc = Crc32::new();
                for c in &cells {
                    crc.update(c.data_bytes());
                }
                let last = &mut cells[n - 1];
                last.aal.eom = true;
                last.trailer = Some(Trailer {
                    len: total as u32,
                    crc: crc.finish(),
                });
            }
            FramingMode::FourWay { lanes } => {
                let lanes = lanes as usize;
                assert!(lanes >= 1, "need at least one lane");
                for lane in 0..lanes.min(n) {
                    // This lane's cells are i ≡ lane (mod lanes).
                    let mut crc = Crc32::new();
                    let mut lane_len = 0u32;
                    let mut last_idx = lane;
                    let mut i = lane;
                    while i < n {
                        crc.update(cells[i].data_bytes());
                        lane_len += cells[i].aal.fill as u32;
                        last_idx = i;
                        i += lanes;
                    }
                    let c = &mut cells[last_idx];
                    c.aal.eom = true;
                    c.trailer = Some(Trailer {
                        len: lane_len,
                        crc: crc.finish(),
                    });
                }
            }
        }
        cells
    }
}

/// Receive-side reassembly strategy (§2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassemblyMode {
    /// Assume cells arrive in order (no striping skew).
    InOrder,
    /// Place cells by AAL sequence number; `max_cells` is the sequence
    /// window (bounded sequence space — the strategy's Achilles heel).
    SeqNum {
        /// Largest per-PDU cell count representable.
        max_cells: u32,
    },
    /// One concurrent AAL5 reassembly per stripe lane.
    FourWay {
        /// Stripe width.
        lanes: u8,
    },
}

/// Typed reassembly failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxError {
    /// A sequence number outside the configured window arrived.
    SeqOutOfRange,
    /// Too many cells for a future PDU arrived while one was incomplete.
    StashOverflow,
    /// A cell arrived on a lane index ≥ the configured stripe width.
    LaneOutOfRange,
    /// An EOM cell carried no trailer (malformed framing).
    NoTrailer,
    /// A partially filled cell mid-stream, unsupported by this strategy
    /// (SeqNum/FourWay place cells at `index × 44`).
    PartialFillUnsupported,
    /// The assembled PDU would exceed the configured maximum size.
    PduTooLarge,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RxError::SeqOutOfRange => "sequence number out of window",
            RxError::StashOverflow => "next-PDU stash overflow",
            RxError::LaneOutOfRange => "lane index out of range",
            RxError::NoTrailer => "EOM cell without trailer",
            RxError::PartialFillUnsupported => "partial fill mid-stream unsupported",
            RxError::PduTooLarge => "PDU exceeds configured maximum",
        };
        f.write_str(s)
    }
}

impl std::error::Error for RxError {}

/// A completed PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PduComplete {
    /// Monotonic PDU number on this reassembler (0-based arrival order of
    /// *starts*, i.e. segmentation order).
    pub pdu: u64,
    /// Data length in bytes.
    pub len: u32,
    /// True if every framing CRC over the assembled data matched.
    pub crc_ok: bool,
    /// The assembled bytes (present when the reassembler keeps data).
    pub data: Option<Vec<u8>>,
}

/// Where an accepted cell's payload belongs, and whether it completed a PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDisposition {
    /// PDU number the cell belongs to.
    pub pdu: u64,
    /// Byte offset of the cell's data within the PDU.
    pub offset: u32,
    /// Set when this cell completed the PDU.
    pub completed: Option<PduComplete>,
}

#[derive(Debug, Default)]
struct PduRecord {
    received_cells: u32,
    received_bytes: u32,
    expected_total_cells: Option<u32>,
    /// Per-lane CRC accumulators and completion flags (FourWay).
    lane_crc: Vec<Crc32>,
    lane_ok: Vec<Option<bool>>,
    lane_len: u32,
    /// Whole-PDU trailer (EndOfPdu framing), checked at completion.
    pdu_trailer: Option<Trailer>,
    /// Seen-sequence bitmap (SeqNum mode duplicate detection).
    seen: Vec<bool>,
    data: Vec<u8>,
    high_water: u32,
}

/// The receive-side reassembly state machine for one VCI.
#[derive(Debug)]
pub struct Reassembler {
    mode: ReassemblyMode,
    keep_data: bool,
    max_pdu_bytes: u32,
    records: HashMap<u64, PduRecord>,
    /// InOrder/SeqNum: the PDU currently being assembled.
    current_pdu: u64,
    /// InOrder: running byte offset.
    inorder_offset: u32,
    /// InOrder: running CRC.
    inorder_crc: Crc32,
    /// SeqNum: stash of cells that belong to the next PDU.
    stash: Vec<Cell>,
    stash_limit: usize,
    /// FourWay: per-lane (pdu number, within-lane cell index).
    lane_pos: Vec<(u64, u32)>,
    /// FourWay: total cell counts of completed PDUs, kept until every
    /// lane has advanced past them. A lane finishing PDU p must skip any
    /// already-completed PDUs that carried no cells on its lane — the
    /// short-PDU / skew interaction §2.6 calls "significant complexity".
    completed_totals: HashMap<u64, u32>,
    completed_count: u64,
}

impl Reassembler {
    /// A reassembler for `mode`, assembling PDUs of at most `max_pdu_bytes`
    /// bytes. When `keep_data` is set, completed PDUs carry their bytes
    /// (standalone use and tests); the board integration can disable it and
    /// rely on placement offsets alone.
    pub fn new(mode: ReassemblyMode, max_pdu_bytes: u32, keep_data: bool) -> Self {
        let lanes = match mode {
            ReassemblyMode::FourWay { lanes } => lanes as usize,
            _ => 0,
        };
        Reassembler {
            mode,
            keep_data,
            max_pdu_bytes,
            records: HashMap::new(),
            current_pdu: 0,
            inorder_offset: 0,
            inorder_crc: Crc32::new(),
            stash: Vec::new(),
            stash_limit: 4096,
            lane_pos: vec![(0, 0); lanes],
            completed_totals: HashMap::new(),
            completed_count: 0,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> ReassemblyMode {
        self.mode
    }

    /// Number of PDUs completed so far.
    pub fn completed(&self) -> u64 {
        self.completed_count
    }

    /// Number of PDUs currently in flight (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.records.len()
    }

    /// Processes one received cell. `lane` is the physical link the cell
    /// arrived on (ignored by [`ReassemblyMode::InOrder`] and
    /// [`ReassemblyMode::SeqNum`]).
    pub fn receive(&mut self, lane: usize, cell: &Cell) -> Result<CellDisposition, RxError> {
        match self.mode {
            ReassemblyMode::InOrder => self.receive_inorder(cell),
            ReassemblyMode::SeqNum { max_cells } => self.receive_seqnum(cell, max_cells),
            ReassemblyMode::FourWay { lanes } => self.receive_fourway(lane, lanes as usize, cell),
        }
    }

    fn record(&mut self, pdu: u64, lanes: usize) -> &mut PduRecord {
        self.records.entry(pdu).or_insert_with(|| PduRecord {
            lane_crc: vec![Crc32::new(); lanes],
            lane_ok: vec![None; lanes],
            ..Default::default()
        })
    }

    fn store(
        keep: bool,
        max: u32,
        rec: &mut PduRecord,
        offset: u32,
        data: &[u8],
    ) -> Result<(), RxError> {
        let end = offset + data.len() as u32;
        if end > max {
            return Err(RxError::PduTooLarge);
        }
        rec.received_cells += 1;
        rec.received_bytes += data.len() as u32;
        rec.high_water = rec.high_water.max(end);
        if keep {
            if rec.data.len() < end as usize {
                rec.data.resize(end as usize, 0);
            }
            rec.data[offset as usize..end as usize].copy_from_slice(data);
        }
        Ok(())
    }

    fn receive_inorder(&mut self, cell: &Cell) -> Result<CellDisposition, RxError> {
        let pdu = self.current_pdu;
        let offset = self.inorder_offset;
        let keep = self.keep_data;
        let max = self.max_pdu_bytes;
        let rec = self.record(pdu, 0);
        Self::store(keep, max, rec, offset, cell.data_bytes())?;
        self.inorder_offset += cell.aal.fill as u32;
        self.inorder_crc.update(cell.data_bytes());

        let mut completed = None;
        if cell.aal.eom || cell.header.last_cell {
            let trailer = cell.trailer.ok_or(RxError::NoTrailer)?;
            let crc_ok = std::mem::take(&mut self.inorder_crc).finish() == trailer.crc
                && trailer.len == self.inorder_offset;
            let rec = self.records.remove(&pdu).expect("record exists");
            completed = Some(PduComplete {
                pdu,
                len: rec.received_bytes,
                crc_ok,
                data: self.keep_data.then_some(rec.data),
            });
            self.completed_count += 1;
            self.current_pdu += 1;
            self.inorder_offset = 0;
        }
        Ok(CellDisposition {
            pdu,
            offset,
            completed,
        })
    }

    fn receive_seqnum(&mut self, cell: &Cell, max_cells: u32) -> Result<CellDisposition, RxError> {
        let seq = cell.aal.seq as u32;
        if seq >= max_cells {
            return Err(RxError::SeqOutOfRange);
        }
        // Partial fills are only placeable for the final cell.
        if (cell.aal.fill as usize) < CELL_PAYLOAD && !cell.header.last_cell {
            return Err(RxError::PartialFillUnsupported);
        }
        let pdu = self.current_pdu;
        {
            let keep = self.keep_data;
            let max = self.max_pdu_bytes;
            let rec = self.record(pdu, 0);
            // A duplicate sequence number means this cell belongs to the
            // *next* PDU (per-lane FIFO guarantees intra-PDU uniqueness);
            // stash it until the current PDU completes. This is exactly the
            // "significant complexity" §2.6 attributes to strategy 1.
            if Self::seq_seen(rec, seq) {
                if self.stash.len() >= self.stash_limit {
                    return Err(RxError::StashOverflow);
                }
                self.stash.push(cell.clone());
                // Disposition points at the next PDU; offset as usual.
                return Ok(CellDisposition {
                    pdu: pdu + 1,
                    offset: seq * CELL_PAYLOAD as u32,
                    completed: None,
                });
            }
            let offset = seq * CELL_PAYLOAD as u32;
            Self::store(keep, max, rec, offset, cell.data_bytes())?;
            rec.note_seen(seq);
            if cell.header.last_cell {
                rec.expected_total_cells = Some(seq + 1);
            }
            if cell.trailer.is_some() && cell.aal.eom {
                rec.pdu_trailer = cell.trailer;
            }
        }
        let offset = seq * CELL_PAYLOAD as u32;
        let completed = self.try_complete_seqnum(pdu)?;
        Ok(CellDisposition {
            pdu,
            offset,
            completed,
        })
    }

    /// Has a cell with this sequence number already been stored for the
    /// current PDU? (Duplicates signal the start of the next PDU.)
    fn seq_seen(rec: &PduRecord, seq: u32) -> bool {
        rec.seen_bitmap_get(seq)
    }

    fn try_complete_seqnum(&mut self, pdu: u64) -> Result<Option<PduComplete>, RxError> {
        let done = {
            let rec = self.records.get(&pdu).expect("record exists");
            matches!(rec.expected_total_cells, Some(t) if rec.received_cells == t)
        };
        if !done {
            return Ok(None);
        }
        let rec = self.records.remove(&pdu).expect("record exists");
        let crc_ok = match rec.pdu_trailer {
            Some(tr) => {
                tr.len == rec.received_bytes
                    && (!self.keep_data || {
                        let mut c = Crc32::new();
                        c.update(&rec.data[..rec.received_bytes as usize]);
                        c.finish() == tr.crc
                    })
            }
            None => false,
        };
        self.completed_count += 1;
        self.current_pdu += 1;
        let complete = PduComplete {
            pdu,
            len: rec.received_bytes,
            crc_ok,
            data: self.keep_data.then(|| {
                let mut d = rec.data;
                d.truncate(rec.received_bytes as usize);
                d
            }),
        };
        // Replay stashed next-PDU cells.
        let stash = std::mem::take(&mut self.stash);
        let max_cells = match self.mode {
            ReassemblyMode::SeqNum { max_cells } => max_cells,
            _ => unreachable!(),
        };
        let mut nested_complete = None;
        for c in stash {
            let d = self.receive_seqnum(&c, max_cells)?;
            if d.completed.is_some() {
                nested_complete = d.completed;
            }
        }
        // A PDU completing purely out of the stash is pathological at the
        // skews we model; surface it to the caller if it ever happens by
        // preferring the outer completion and asserting in debug builds.
        debug_assert!(
            nested_complete.is_none(),
            "stash replay completed a whole PDU"
        );
        Ok(Some(complete))
    }

    fn receive_fourway(
        &mut self,
        lane: usize,
        lanes: usize,
        cell: &Cell,
    ) -> Result<CellDisposition, RxError> {
        if lane >= lanes {
            return Err(RxError::LaneOutOfRange);
        }
        if (cell.aal.fill as usize) < CELL_PAYLOAD && !cell.aal.eom && !cell.header.last_cell {
            return Err(RxError::PartialFillUnsupported);
        }
        let (pdu, within) = self.lane_pos[lane];
        let global_index = within * lanes as u32 + lane as u32;
        let offset = global_index * CELL_PAYLOAD as u32;
        let keep = self.keep_data;
        let max = self.max_pdu_bytes;
        {
            let rec = self.record(pdu, lanes);
            Self::store(keep, max, rec, offset, cell.data_bytes())?;
            rec.lane_crc[lane].update(cell.data_bytes());
            rec.lane_len += cell.aal.fill as u32;
            if cell.header.last_cell {
                rec.expected_total_cells = Some(global_index + 1);
            }
            if cell.aal.eom {
                let trailer = cell.trailer.ok_or(RxError::NoTrailer)?;
                let lane_crc = std::mem::take(&mut rec.lane_crc[lane]);
                rec.lane_ok[lane] = Some(lane_crc.finish() == trailer.crc);
            }
        }
        // Advance this lane: next cell on the lane belongs to the next PDU
        // if we just saw this lane's EOM — skipping any already-completed
        // PDUs that had no cells on this lane (short PDUs under skew).
        if cell.aal.eom {
            let next = self.skip_empty_completed(pdu + 1, lane, lanes);
            self.lane_pos[lane] = (next, 0);
        } else {
            self.lane_pos[lane] = (pdu, within + 1);
        }

        let completed = self.try_complete_fourway(pdu, lanes);
        Ok(CellDisposition {
            pdu,
            offset,
            completed,
        })
    }

    /// Abandons an in-flight PDU, discarding its partial state. Used by the
    /// receive path's reassembly timeout to reclaim physical buffers when a
    /// dropped cell (or a dropped per-lane EOM) would otherwise wedge the
    /// reassembly forever.
    ///
    /// Late or straggling cells of the aborted PDU may subsequently be
    /// misattributed to a successor PDU; the per-lane / per-PDU CRC catches
    /// that at completion time, so an abort can cause extra *drops* but never
    /// causes corrupted data to be delivered.
    pub fn abort(&mut self, pdu: u64) {
        self.records.remove(&pdu);
        match self.mode {
            ReassemblyMode::InOrder => {
                if pdu == self.current_pdu {
                    self.current_pdu += 1;
                    self.inorder_offset = 0;
                    self.inorder_crc = Crc32::new();
                }
            }
            ReassemblyMode::SeqNum { .. } => {
                if pdu == self.current_pdu {
                    self.current_pdu += 1;
                }
            }
            ReassemblyMode::FourWay { lanes } => {
                let lanes = lanes as usize;
                // Lanes still parked on the aborted PDU resynchronise at the
                // next PDU (skipping completed PDUs that carried no cells for
                // them). Lanes already past it need no help; lanes still
                // *behind* it will recreate a record for `pdu` if stragglers
                // arrive — that record can never complete with a good CRC and
                // is reclaimed by the next timeout sweep.
                for l in 0..lanes {
                    if self.lane_pos[l].0 == pdu {
                        let next = self.skip_empty_completed(pdu + 1, l, lanes);
                        self.lane_pos[l] = (next, 0);
                    }
                }
            }
        }
    }

    fn try_complete_fourway(&mut self, pdu: u64, lanes: usize) -> Option<PduComplete> {
        let (done, total) = {
            let rec = self.records.get(&pdu)?;
            match rec.expected_total_cells {
                Some(t) if rec.received_cells == t => (true, t),
                _ => (false, 0),
            }
        };
        if !done {
            return None;
        }
        let rec = self.records.remove(&pdu).expect("record exists");
        // Lanes l < min(lanes, total) contributed cells and must have
        // passed their per-lane CRC.
        let contributing = (total as usize).min(lanes);
        let crc_ok = (0..contributing).all(|l| rec.lane_ok[l] == Some(true));
        self.completed_count += 1;
        self.completed_totals.insert(pdu, total);
        // Fast-forward lanes that carried no cells for this PDU (short-PDU
        // case) and are already waiting on it; lanes still busy with an
        // earlier PDU will skip it when they advance (`skip_empty_completed`).
        for l in 0..lanes {
            let (p, w) = self.lane_pos[l];
            if p == pdu && Self::lane_cells(total, l, lanes) == 0 {
                debug_assert_eq!(w, 0);
                let next = self.skip_empty_completed(pdu + 1, l, lanes);
                self.lane_pos[l] = (next, 0);
            }
        }
        // Prune totals every lane has moved past.
        let min_pdu = self.lane_pos.iter().map(|&(p, _)| p).min().unwrap_or(0);
        self.completed_totals.retain(|&p, _| p >= min_pdu);
        Some(PduComplete {
            pdu,
            len: rec.received_bytes,
            crc_ok,
            data: self.keep_data.then(|| {
                let mut d = rec.data;
                d.truncate(rec.high_water as usize);
                d
            }),
        })
    }
}

impl Reassembler {
    /// Cells PDU of `total` cells places on `lane` (round-robin stripe).
    fn lane_cells(total: u32, lane: usize, lanes: usize) -> u32 {
        let lane = lane as u32;
        let lanes = lanes as u32;
        if total > lane {
            (total - 1 - lane) / lanes + 1
        } else {
            0
        }
    }

    /// First PDU at or after `from` that is not an already-completed PDU
    /// with zero cells on `lane`.
    fn skip_empty_completed(&self, from: u64, lane: usize, lanes: usize) -> u64 {
        let mut p = from;
        while let Some(&total) = self.completed_totals.get(&p) {
            if Self::lane_cells(total, lane, lanes) == 0 {
                p += 1;
            } else {
                break;
            }
        }
        p
    }
}

impl PduRecord {
    fn seen_bitmap_get(&self, seq: u32) -> bool {
        self.seen.get(seq as usize).copied().unwrap_or(false)
    }

    fn note_seen(&mut self, seq: u32) {
        if self.seen.len() <= seq as usize {
            self.seen.resize(seq as usize + 1, false);
        }
        self.seen[seq as usize] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    fn seg(framing: FramingMode, unit: SegmentUnit) -> Segmenter {
        Segmenter { framing, unit }
    }

    #[test]
    fn segment_counts_and_fills() {
        let data = payload(100);
        let cells = seg(FramingMode::EndOfPdu, SegmentUnit::Pdu).segment(Vci(9), &[&data]);
        assert_eq!(cells.len(), 3); // 44 + 44 + 12
        assert_eq!(cells[0].aal.fill, 44);
        assert_eq!(cells[1].aal.fill, 44);
        assert_eq!(cells[2].aal.fill, 12);
        assert!(cells[2].header.last_cell);
        assert!(cells[2].aal.eom);
        assert_eq!(cells[2].trailer.unwrap().len, 100);
        assert_eq!(
            cells.iter().map(|c| c.aal.seq as usize).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn segment_pdu_unit_spans_buffers() {
        let a = payload(50);
        let b = payload(30);
        let cells = seg(FramingMode::EndOfPdu, SegmentUnit::Pdu).segment(Vci(1), &[&a, &b]);
        // 80 bytes → 44 + 36: the second cell mixes bytes of both buffers.
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].aal.fill, 36);
    }

    #[test]
    fn segment_buffer_unit_flushes_partials() {
        let a = payload(50);
        let b = payload(30);
        let cells = seg(FramingMode::EndOfPdu, SegmentUnit::Buffer).segment(Vci(1), &[&a, &b]);
        // 50 → 44 + 6 (partial mid-PDU!), 30 → 30.
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[1].aal.fill, 6);
        assert_eq!(cells[2].aal.fill, 30);
    }

    #[test]
    fn fourway_framing_marks_each_lane() {
        let data = payload(44 * 10);
        let cells =
            seg(FramingMode::FourWay { lanes: 4 }, SegmentUnit::Pdu).segment(Vci(1), &[&data]);
        assert_eq!(cells.len(), 10);
        // Lane l gets cells l, l+4, ...; the last per lane carries EOM.
        // 10 cells: lane0 {0,4,8}, lane1 {1,5,9}, lane2 {2,6}, lane3 {3,7}.
        let eoms: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.aal.eom)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(eoms, vec![6, 7, 8, 9]);
        assert!(cells[9].header.last_cell);
        for i in eoms {
            assert!(cells[i].trailer.is_some());
        }
    }

    #[test]
    fn inorder_roundtrip() {
        let data = payload(1000);
        let cells = seg(FramingMode::EndOfPdu, SegmentUnit::Pdu).segment(Vci(1), &[&data]);
        let mut r = Reassembler::new(ReassemblyMode::InOrder, 1 << 20, true);
        let mut complete = None;
        for c in &cells {
            let d = r.receive(0, c).unwrap();
            if let Some(p) = d.completed {
                complete = Some(p);
            }
        }
        let p = complete.expect("PDU must complete");
        assert!(p.crc_ok);
        assert_eq!(p.len, 1000);
        assert_eq!(p.data.unwrap(), data);
    }

    #[test]
    fn inorder_roundtrip_buffer_unit_partials() {
        // Partial cells mid-PDU reassemble fine in order (offsets are
        // running, not computed from indices).
        let a = payload(50);
        let b = payload(51);
        let cells = seg(FramingMode::EndOfPdu, SegmentUnit::Buffer).segment(Vci(1), &[&a, &b]);
        let mut r = Reassembler::new(ReassemblyMode::InOrder, 1 << 20, true);
        let mut out = None;
        for c in &cells {
            out = r.receive(0, c).unwrap().completed.or(out);
        }
        let p = out.unwrap();
        assert!(p.crc_ok);
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        assert_eq!(p.data.unwrap(), expect);
    }

    #[test]
    fn inorder_detects_swapped_cells_via_crc() {
        let data = payload(44 * 4);
        let mut cells = seg(FramingMode::EndOfPdu, SegmentUnit::Pdu).segment(Vci(1), &[&data]);
        cells.swap(1, 2); // skew-style misordering
        let mut r = Reassembler::new(ReassemblyMode::InOrder, 1 << 20, true);
        let mut out = None;
        for c in &cells {
            out = r.receive(0, c).unwrap().completed.or(out);
        }
        let p = out.unwrap();
        assert!(!p.crc_ok, "CRC must catch misordered reassembly");
    }

    #[test]
    fn inorder_detects_corruption() {
        let data = payload(500);
        let mut cells = seg(FramingMode::EndOfPdu, SegmentUnit::Pdu).segment(Vci(1), &[&data]);
        cells[3].corrupt_bit(7, 2);
        let mut r = Reassembler::new(ReassemblyMode::InOrder, 1 << 20, true);
        let mut out = None;
        for c in &cells {
            out = r.receive(0, c).unwrap().completed.or(out);
        }
        assert!(!out.unwrap().crc_ok);
    }

    #[test]
    fn seqnum_reassembles_skewed_arrivals() {
        let data = payload(44 * 8);
        let cells = seg(FramingMode::EndOfPdu, SegmentUnit::Pdu).segment(Vci(1), &[&data]);
        // Simulate lane skew: cells 1,2,3 overtake cell 0; per-lane order
        // within each residue class is preserved.
        let order = [1usize, 2, 3, 0, 5, 6, 7, 4];
        let mut r = Reassembler::new(ReassemblyMode::SeqNum { max_cells: 1024 }, 1 << 20, true);
        let mut out = None;
        for &i in &order {
            out = r.receive(0, &cells[i]).unwrap().completed.or(out);
        }
        let p = out.expect("complete");
        assert!(p.crc_ok);
        assert_eq!(p.data.unwrap(), data);
    }

    #[test]
    fn seqnum_rejects_out_of_window() {
        let mut r = Reassembler::new(ReassemblyMode::SeqNum { max_cells: 4 }, 1 << 20, true);
        let c = Cell::data(Vci(1), 4, &[0u8; 44]);
        assert_eq!(r.receive(0, &c).unwrap_err(), RxError::SeqOutOfRange);
    }

    #[test]
    fn seqnum_rejects_partial_fill_midstream() {
        let mut r = Reassembler::new(ReassemblyMode::SeqNum { max_cells: 64 }, 1 << 20, true);
        let c = Cell::data(Vci(1), 0, &[0u8; 10]); // partial, not last
        assert_eq!(
            r.receive(0, &c).unwrap_err(),
            RxError::PartialFillUnsupported
        );
    }

    #[test]
    fn fourway_reassembles_under_lane_skew() {
        let data = payload(44 * 13 + 7);
        let cells =
            seg(FramingMode::FourWay { lanes: 4 }, SegmentUnit::Pdu).segment(Vci(1), &[&data]);
        let n = cells.len();
        // Interleave lanes with heavy skew: deliver lane 3 first, then 2,
        // then 1, then 0 — per-lane order preserved (the §2.6 skew class).
        let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true);
        let mut out = None;
        for lane in (0..4usize).rev() {
            let mut i = lane;
            while i < n {
                let d = r.receive(lane, &cells[i]).unwrap();
                out = d.completed.or(out);
                i += 4;
            }
        }
        let p = out.expect("complete");
        assert!(p.crc_ok);
        assert_eq!(p.len as usize, data.len());
        assert_eq!(p.data.unwrap(), data);
    }

    #[test]
    fn fourway_short_pdu_completes_via_last_cell_bit() {
        // A 2-cell PDU on a 4-lane stripe: lanes 2 and 3 carry nothing.
        let data = payload(60);
        let cells =
            seg(FramingMode::FourWay { lanes: 4 }, SegmentUnit::Pdu).segment(Vci(1), &[&data]);
        assert_eq!(cells.len(), 2);
        let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true);
        assert!(r.receive(0, &cells[0]).unwrap().completed.is_none());
        let p = r
            .receive(1, &cells[1])
            .unwrap()
            .completed
            .expect("complete");
        assert!(p.crc_ok);
        assert_eq!(p.data.unwrap(), data);
        // Lanes 2/3 skipped the PDU; a following PDU still works.
        let data2 = payload(44 * 6);
        let cells2 =
            seg(FramingMode::FourWay { lanes: 4 }, SegmentUnit::Pdu).segment(Vci(1), &[&data2]);
        let mut out = None;
        for (i, c) in cells2.iter().enumerate() {
            out = r.receive(i % 4, c).unwrap().completed.or(out);
        }
        let p2 = out.expect("second PDU completes");
        assert!(p2.crc_ok);
        assert_eq!(p2.pdu, 1);
        assert_eq!(p2.data.unwrap(), data2);
    }

    #[test]
    fn fourway_back_to_back_pdus_with_skew() {
        // Two PDUs; lane 0 lags a full PDU behind the other lanes.
        let d1 = payload(44 * 8);
        let d2 = payload(44 * 8);
        let s = seg(FramingMode::FourWay { lanes: 4 }, SegmentUnit::Pdu);
        let c1 = s.segment(Vci(1), &[&d1]);
        let c2 = s.segment(Vci(1), &[&d2]);
        let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true);
        let mut done = Vec::new();
        // Lanes 1..3 deliver both PDUs first.
        for lane in 1..4usize {
            for cells in [&c1, &c2] {
                let mut i = lane;
                while i < cells.len() {
                    if let Some(p) = r.receive(lane, &cells[i]).unwrap().completed {
                        done.push(p);
                    }
                    i += 4;
                }
            }
        }
        assert!(done.is_empty(), "nothing completes without lane 0");
        // Lane 0 catches up.
        for cells in [&c1, &c2] {
            let mut i = 0;
            while i < cells.len() {
                if let Some(p) = r.receive(0, &cells[i]).unwrap().completed {
                    done.push(p);
                }
                i += 4;
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|p| p.crc_ok));
        assert_eq!(done[0].data.as_ref().unwrap(), &d1);
        assert_eq!(done[1].data.as_ref().unwrap(), &d2);
    }

    #[test]
    fn fourway_lane_out_of_range() {
        let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true);
        let c = Cell::data(Vci(1), 0, &[0u8; 44]);
        assert_eq!(r.receive(4, &c).unwrap_err(), RxError::LaneOutOfRange);
    }

    #[test]
    fn fourway_detects_lane_corruption() {
        let data = payload(44 * 9);
        let mut cells =
            seg(FramingMode::FourWay { lanes: 4 }, SegmentUnit::Pdu).segment(Vci(1), &[&data]);
        cells[5].corrupt_bit(0, 0);
        let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true);
        let mut out = None;
        for (i, c) in cells.iter().enumerate() {
            out = r.receive(i % 4, c).unwrap().completed.or(out);
        }
        assert!(!out.unwrap().crc_ok);
    }

    #[test]
    fn fourway_abort_unwedges_a_lane_missing_its_eom() {
        // Two 8-cell PDUs on a 4-lane stripe. Drop lane 2's EOM cell of the
        // first PDU (global cell 6): without intervention lane 2 is parked on
        // PDU 0 forever and PDU 1 can never complete.
        let d1 = payload(44 * 8);
        let d2 = payload(44 * 8);
        let s = seg(FramingMode::FourWay { lanes: 4 }, SegmentUnit::Pdu);
        let c1 = s.segment(Vci(1), &[&d1]);
        let c2 = s.segment(Vci(1), &[&d2]);
        let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, true);
        for (i, c) in c1.iter().enumerate() {
            if i == 6 {
                continue; // the dropped cell
            }
            assert!(r.receive(i % 4, c).unwrap().completed.is_none());
        }
        assert_eq!(r.in_flight(), 1);

        // Timeout fires: reclaim PDU 0.
        r.abort(0);
        assert_eq!(r.in_flight(), 0);

        // The next PDU now reassembles cleanly on all four lanes.
        let mut out = None;
        for (i, c) in c2.iter().enumerate() {
            out = r.receive(i % 4, c).unwrap().completed.or(out);
        }
        let p = out.expect("PDU 1 completes after the abort");
        assert_eq!(p.pdu, 1);
        assert!(p.crc_ok);
        assert_eq!(p.data.unwrap(), d2);
    }

    #[test]
    fn inorder_abort_resets_running_state() {
        let d1 = payload(44 * 3);
        let d2 = payload(100);
        let s = seg(FramingMode::EndOfPdu, SegmentUnit::Pdu);
        let c1 = s.segment(Vci(1), &[&d1]);
        let c2 = s.segment(Vci(1), &[&d2]);
        let mut r = Reassembler::new(ReassemblyMode::InOrder, 1 << 20, true);
        // Deliver the first two cells of PDU 0, then lose the tail.
        r.receive(0, &c1[0]).unwrap();
        r.receive(0, &c1[1]).unwrap();
        r.abort(0);
        assert_eq!(r.in_flight(), 0);
        let mut out = None;
        for c in &c2 {
            out = r.receive(0, c).unwrap().completed.or(out);
        }
        let p = out.expect("complete");
        assert!(p.crc_ok);
        assert_eq!(p.pdu, 1);
        assert_eq!(p.data.unwrap(), d2);
    }

    #[test]
    fn pdu_too_large_rejected() {
        let mut r = Reassembler::new(ReassemblyMode::InOrder, 40, true);
        let c = Cell::data(Vci(1), 0, &[0u8; 44]);
        assert_eq!(r.receive(0, &c).unwrap_err(), RxError::PduTooLarge);
    }

    #[test]
    fn disposition_offsets_are_placement_addresses() {
        let data = payload(44 * 5);
        let cells =
            seg(FramingMode::FourWay { lanes: 4 }, SegmentUnit::Pdu).segment(Vci(1), &[&data]);
        let mut r = Reassembler::new(ReassemblyMode::FourWay { lanes: 4 }, 1 << 20, false);
        // Deliver in a skewed but per-lane-FIFO order and check offsets
        // equal global_cell_index * 44.
        let order = [(1usize, 1usize), (2, 2), (0, 0), (3, 3), (0, 4)];
        for &(lane, idx) in &order {
            let d = r.receive(lane, &cells[idx]).unwrap();
            assert_eq!(d.offset as usize, idx * 44, "cell {idx}");
        }
    }
}
