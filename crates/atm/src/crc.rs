//! CRC-32 (AAL5) and CRC-10 (ATM OAM) — table-driven, incremental.
//!
//! AAL5 protects each PDU with the IEEE 802.3 CRC-32 (polynomial
//! 0x04C11DB8, reflected 0xEDB88320). The reproduction computes real CRCs
//! over real payload bytes so that cell corruption, cell misordering under
//! an in-order-only reassembler, and stale-cache reads (§2.3) are all
//! *detected the way the paper relies on*: by the error check, not by
//! simulator fiat.

/// Reflected CRC-32 polynomial (IEEE 802.3 / AAL5).
const CRC32_POLY: u32 = 0xEDB8_8320;

/// CRC-10 polynomial x^10 + x^9 + x^5 + x^4 + x + 1 (ITU I.610), MSB-first.
const CRC10_POLY: u16 = 0x633;

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    (c >> 1) ^ CRC32_POLY
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// Incremental CRC-32 state. AAL5-style: initial value all-ones, final
/// complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = crc32_table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final CRC value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// One-shot CRC-10 of a byte slice (bit-serial MSB-first; used for the
/// cell-header-style integrity check in tests and fault injection).
pub fn crc10(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &b in data {
        for bit in (0..8).rev() {
            let inbit = ((b >> bit) & 1) as u16;
            let topbit = (crc >> 9) & 1;
            crc = (crc << 1) & 0x3FF;
            if topbit ^ inbit != 0 {
                crc ^= CRC10_POLY & 0x3FF;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut inc = Crc32::new();
        for chunk in data.chunks(44) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), crc32(&data));
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        data[500] = 0x55;
        let good = crc32(&data);
        for bit in 0..8 {
            let mut bad = data.clone();
            bad[123] ^= 1 << bit;
            assert_ne!(crc32(&bad), good, "bit {bit} flip undetected");
        }
    }

    #[test]
    fn crc32_detects_cell_swap() {
        // Two swapped 44-byte cells — the §2.6 misordering failure an
        // in-order reassembler must catch via CRC.
        let data: Vec<u8> = (0..88u8).collect();
        let mut swapped = data.clone();
        swapped.rotate_left(44);
        assert_ne!(crc32(&data), crc32(&swapped));
    }

    #[test]
    fn crc10_range_and_determinism() {
        let c = crc10(b"OSIRIS");
        assert!(c < 1024);
        assert_eq!(c, crc10(b"OSIRIS"));
        assert_ne!(crc10(b"OSIRIS"), crc10(b"OSIRIX"));
    }

    #[test]
    fn crc10_self_check_property() {
        // Appending the CRC (as 2 bytes, 10 significant bits left-aligned
        // in a 16-bit field) then re-checking yields 0 for MSB-first CRCs
        // when the message is extended by exactly 10 zero bits. We verify
        // the weaker but sufficient property: distinct small messages give
        // distinct CRCs often enough to catch corruption.
        let mut seen = std::collections::HashSet::new();
        for i in 0..200u32 {
            seen.insert(crc10(&i.to_be_bytes()));
        }
        assert!(seen.len() > 150, "CRC-10 collides too much: {}", seen.len());
    }
}
