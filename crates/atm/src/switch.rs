//! An output-queued ATM switch.
//!
//! §2.6's third skew source: "different queuing delays experienced by
//! cells on different links as they pass through distinct ports on the
//! switches in the network". In AURORA the four striped lanes traverse
//! distinct switch ports, so independent cross traffic on each port
//! delays each lane independently — per-lane FIFO order is preserved
//! (output queues are FIFOs) but the stripe as a whole skews, and the
//! skew is "essentially unbounded" because it depends on everyone else's
//! traffic.
//!
//! The paper notes the fix the authors declined: "the switch must
//! coordinate the different ports to keep all queue lengths equal.
//! However, adding this complexity has the undesirable effect of negating
//! the advantage of striping". [`SwitchSpec::coordinated`] models that
//! rejected design for the ablation benches: it equalises queue delay
//! across a port group, eliminating skew at the cost of making every
//! lane as slow as the busiest.

use std::collections::HashMap;

use osiris_sim::obs::{Counter, Gauge, Probe};
use osiris_sim::{FifoResource, SimDuration, SimTime};

use crate::cell::{Cell, CELL_BYTES_ON_WIRE};
use crate::slab::{CellRef, CellSlab};
use crate::vci::Vci;

/// Switch geometry and timing.
#[derive(Debug, Clone, Copy)]
pub struct SwitchSpec {
    /// Number of output ports.
    pub ports: usize,
    /// Line rate of each output port (bps).
    pub port_rate_bps: u64,
    /// Fixed fabric transit latency.
    pub fabric_latency: SimDuration,
    /// If true, port groups are coordinated to equal queueing delay
    /// (the rejected anti-skew design).
    pub coordinated: bool,
}

impl SwitchSpec {
    /// An STS-3c switch with `ports` output ports, uncoordinated.
    pub fn sts3c(ports: usize) -> Self {
        SwitchSpec {
            ports,
            port_rate_bps: 155_520_000,
            fabric_latency: SimDuration::from_us(2),
            coordinated: false,
        }
    }

    /// A 16-port STS-3c switch, uncoordinated (the real thing).
    pub fn sts3c_16port() -> Self {
        Self::sts3c(16)
    }

    /// The same switch with coordinated port groups.
    pub fn coordinated() -> Self {
        SwitchSpec {
            coordinated: true,
            ..Self::sts3c_16port()
        }
    }

    /// Serialisation time of one cell on an output port.
    pub fn cell_time(&self) -> SimDuration {
        let bits = CELL_BYTES_ON_WIRE as u128 * 8;
        SimDuration::from_ps((bits * 1_000_000_000_000u128 / self.port_rate_bps as u128) as u64)
    }
}

/// Per-port statistics, read back from the observability registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortStats {
    /// Cells forwarded through this port.
    pub cells: u64,
    /// Accumulated queueing delay (excludes serialisation and fabric).
    pub queueing: SimDuration,
}

/// One port's registry-visible counters.
#[derive(Debug, Clone)]
struct PortCounters {
    cells: Counter,
    /// Queueing delay in picoseconds (durations are accumulated as
    /// integer ps so they stay exact and registry-snapshotable).
    queueing_ps: Counter,
}

/// The switch.
#[derive(Debug)]
pub struct Switch {
    spec: SwitchSpec,
    routes: HashMap<Vci, usize>,
    /// Striped routes: a VCI whose four lanes land on a contiguous block
    /// of output ports starting at the stored base (multi-node fabrics).
    lane_routes: HashMap<Vci, usize>,
    outputs: Vec<FifoResource>,
    stats: Vec<PortCounters>,
    /// Port group used by the coordinated mode (all members share fate).
    group: Vec<usize>,
    /// Bound on each output queue in cells (`None` = unbounded, the
    /// historical behavior). Set from the run's `FaultPlan`.
    max_queue_cells: Option<u32>,
    unrouted: Counter,
    overflow_dropped: Counter,
    /// Instantaneous backlog (in cell times) of the port a cell was just
    /// queued on — a last-writer gauge the telemetry plane samples into
    /// a queue-depth time series. Partition-*dependent* (which write is
    /// last depends on shard interleaving), so the semantic snapshot
    /// strips it; the high-water companion below is the invariant form.
    queue_depth: Gauge,
    /// Largest backlog any `depart` ever observed, in cells. Invariant
    /// under the sharded engine's gauge-max merge, so it stays in the
    /// semantic snapshot.
    queue_high_water: Gauge,
    hw_cells: u64,
}

impl Switch {
    /// A switch with no routes installed and detached counters.
    pub fn new(spec: SwitchSpec) -> Self {
        Switch::with_probe(spec, &Probe::detached())
    }

    /// A switch publishing `port<i>.cells` / `port<i>.queueing_ps` and
    /// `unrouted` under `<scope>.switch`.
    pub fn with_probe(spec: SwitchSpec, probe: &Probe) -> Self {
        let p = probe.scoped("switch");
        Switch {
            outputs: (0..spec.ports)
                .map(|_| FifoResource::new("switch-port"))
                .collect(),
            stats: (0..spec.ports)
                .map(|i| {
                    let pp = p.scoped(&format!("port{i}"));
                    PortCounters {
                        cells: pp.counter("cells"),
                        queueing_ps: pp.counter("queueing_ps"),
                    }
                })
                .collect(),
            routes: HashMap::new(),
            lane_routes: HashMap::new(),
            group: Vec::new(),
            max_queue_cells: None,
            unrouted: p.counter("unrouted"),
            overflow_dropped: p.counter("overflow_dropped"),
            queue_depth: p.gauge("queue_depth_cells"),
            queue_high_water: p.gauge("queue_high_water_cells"),
            hw_cells: 0,
            spec,
        }
    }

    /// Bounds every output queue to `cells` waiting cells; a cell whose
    /// port backlog already covers that many cell times is dropped
    /// (counted in `overflow_dropped`). `None` restores the unbounded
    /// historical behavior.
    pub fn set_max_queue_cells(&mut self, cells: Option<u32>) {
        self.max_queue_cells = cells;
    }

    /// Installs `vci → port`.
    ///
    /// # Panics
    /// Panics if `port` is out of range.
    pub fn route(&mut self, vci: Vci, port: usize) {
        assert!(port < self.spec.ports, "port {port} out of range");
        self.routes.insert(vci, port);
    }

    /// Installs a striped route: cells of `vci` arriving on lane `l` leave
    /// through port `base + l`. This is how a multi-node fabric maps one
    /// connection's four lanes onto the destination node's port block
    /// without retagging cells with per-lane transit VCIs.
    ///
    /// # Panics
    /// Panics if any port of the block is out of range.
    pub fn route_group(&mut self, vci: Vci, base: usize, lanes: usize) {
        assert!(
            base + lanes <= self.spec.ports,
            "port block {base}..{} out of range",
            base + lanes
        );
        self.lane_routes.insert(vci, base);
    }

    /// The installed port-block base for `vci`, if any — the routing
    /// *decision* without the routing *side effects*. The sharded
    /// engine uses this to pick the owning shard of a cell in flight
    /// before the stateful forward happens at arrival time.
    pub fn lane_route_base(&self, vci: Vci) -> Option<usize> {
        self.lane_routes.get(&vci).copied()
    }

    /// Declares a striped port group (used by coordinated mode).
    pub fn set_group(&mut self, ports: Vec<usize>) {
        for &p in &ports {
            assert!(p < self.spec.ports);
        }
        self.group = ports;
    }

    /// Forwards a cell arriving at `now`. Returns the output port and the
    /// departure time (after queueing + serialisation + fabric), or
    /// `None` if the VCI has no route (the cell is dropped).
    pub fn forward(&mut self, now: SimTime, cell: &Cell) -> Option<(usize, SimTime)> {
        let Some(&port) = self.routes.get(&cell.header.vci) else {
            self.unrouted.incr();
            return None;
        };
        self.depart(now, port).map(|at| (port, at))
    }

    /// Forwards a cell that arrived on stripe lane `lane`, using the
    /// striped routes installed by [`Switch::route_group`]. Returns the
    /// output port (`base + lane`) and the departure time, or `None` if
    /// the VCI has no striped route (the cell is dropped).
    pub fn forward_on_lane(
        &mut self,
        now: SimTime,
        cell: &Cell,
        lane: usize,
    ) -> Option<(usize, SimTime)> {
        let Some(&base) = self.lane_routes.get(&cell.header.vci) else {
            self.unrouted.incr();
            return None;
        };
        let port = base + lane;
        assert!(port < self.spec.ports, "lane {lane} overruns port block");
        self.depart(now, port).map(|at| (port, at))
    }

    /// Slab-handle form of [`forward_on_lane`](Self::forward_on_lane):
    /// the cell stays parked in `slab` and moves through the switch as a
    /// handle; an unrouted or overflow-dropped cell's slot is freed
    /// immediately so the slab recycles it.
    pub fn forward_on_lane_ref(
        &mut self,
        now: SimTime,
        r: CellRef,
        lane: usize,
        slab: &mut CellSlab,
    ) -> Option<(usize, SimTime)> {
        let out = self.forward_on_lane(now, slab.get(r), lane);
        if out.is_none() {
            slab.free(r);
        }
        out
    }

    /// Queues one cell on `port`'s output and returns its departure time
    /// (after queueing + serialisation + fabric latency), or `None` when
    /// the bounded output queue overflows and the cell is dropped.
    fn depart(&mut self, now: SimTime, port: usize) -> Option<SimTime> {
        let at = now + self.spec.fabric_latency;
        if let Some(max) = self.max_queue_cells {
            let backlog = self.outputs[port].free_at().saturating_since(at);
            if backlog.as_ps() >= self.spec.cell_time().as_ps().saturating_mul(max as u64) {
                self.overflow_dropped.incr();
                return None;
            }
        }
        let grant = self.outputs[port].acquire(at, self.spec.cell_time());
        // Backlog of this port the instant the cell joined it, in cell
        // times (1 = the cell itself is in service with nothing ahead).
        let depth = grant
            .finish
            .saturating_since(at)
            .as_ps()
            .div_ceil(self.spec.cell_time().as_ps().max(1));
        self.queue_depth.set(depth as f64);
        if depth > self.hw_cells {
            self.hw_cells = depth;
            self.queue_high_water.set(depth as f64);
        }
        self.stats[port].cells.incr();
        self.stats[port]
            .queueing_ps
            .add(grant.queueing_delay(at).as_ps());
        let mut departure = grant.finish;
        if self.spec.coordinated && self.group.contains(&port) {
            // The rejected design: hold the cell until the slowest group
            // member's queue would also have drained, equalising delay.
            let worst = self
                .group
                .iter()
                .map(|&p| self.outputs[p].free_at())
                .max()
                .unwrap_or(departure);
            departure = departure.max(worst);
        }
        Some(departure)
    }

    /// Occupies an output port with cross traffic for `cells` cell times
    /// starting at `now` (other flows sharing the port).
    pub fn background_load(&mut self, now: SimTime, port: usize, cells: u64) {
        let d = SimDuration::from_ps(self.spec.cell_time().as_ps() * cells);
        self.outputs[port].acquire(now, d);
    }

    /// Per-port statistics.
    pub fn port_stats(&self, port: usize) -> PortStats {
        let c = &self.stats[port];
        PortStats {
            cells: c.cells.get(),
            queueing: SimDuration::from_ps(c.queueing_ps.get()),
        }
    }

    /// Cells dropped for lack of a route.
    pub fn unrouted(&self) -> u64 {
        self.unrouted.get()
    }

    /// Cells dropped by bounded output queues.
    pub fn overflow_dropped(&self) -> u64 {
        self.overflow_dropped.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(vci: u16, seq: u16) -> Cell {
        Cell::data(Vci(vci), seq, &[seq as u8; 44])
    }

    #[test]
    fn routes_by_vci() {
        let mut sw = Switch::new(SwitchSpec::sts3c_16port());
        sw.route(Vci(1), 3);
        sw.route(Vci(2), 7);
        let (p1, _) = sw.forward(SimTime::ZERO, &cell(1, 0)).unwrap();
        let (p2, _) = sw.forward(SimTime::ZERO, &cell(2, 0)).unwrap();
        assert_eq!((p1, p2), (3, 7));
        assert!(sw.forward(SimTime::ZERO, &cell(9, 0)).is_none());
        assert_eq!(sw.unrouted(), 1);
    }

    #[test]
    fn output_port_is_fifo_and_serialises() {
        let mut sw = Switch::new(SwitchSpec::sts3c_16port());
        sw.route(Vci(1), 0);
        let a = sw.forward(SimTime::ZERO, &cell(1, 0)).unwrap().1;
        let b = sw.forward(SimTime::ZERO, &cell(1, 1)).unwrap().1;
        assert!(b > a);
        assert_eq!(b.since(a), sw.spec.cell_time());
    }

    #[test]
    fn cross_traffic_creates_queueing_skew() {
        // Four lanes on four ports; cross traffic loads port 2 only.
        let mut sw = Switch::new(SwitchSpec::sts3c_16port());
        for lane in 0..4u16 {
            sw.route(Vci(10 + lane), lane as usize);
        }
        sw.background_load(SimTime::ZERO, 2, 20); // ~55 us of foreign cells
        let mut departures = Vec::new();
        for lane in 0..4u16 {
            departures.push(sw.forward(SimTime::ZERO, &cell(10 + lane, 0)).unwrap().1);
        }
        // Lane 2's cell departs far later than its peers: skew.
        assert!(departures[2] > departures[0] + SimDuration::from_us(30));
        assert!(sw.port_stats(2).queueing > SimDuration::from_us(30));
        assert_eq!(sw.port_stats(0).queueing, SimDuration::ZERO);
    }

    #[test]
    fn coordinated_mode_equalises_but_slows_everyone() {
        let mut sw = Switch::new(SwitchSpec::coordinated());
        for lane in 0..4u16 {
            sw.route(Vci(10 + lane), lane as usize);
        }
        sw.set_group(vec![0, 1, 2, 3]);
        sw.background_load(SimTime::ZERO, 2, 20);
        let mut departures = Vec::new();
        for lane in 0..4u16 {
            departures.push(sw.forward(SimTime::ZERO, &cell(10 + lane, 0)).unwrap().1);
        }
        // No skew between lanes...
        let min = departures.iter().min().unwrap();
        let max = departures.iter().max().unwrap();
        assert!(
            max.since(*min) < SimDuration::from_us(5),
            "coordination must remove skew"
        );
        // ...but every lane is as slow as the loaded one — "negating the
        // advantage of striping".
        assert!(*min > SimTime::from_us(50));
    }

    #[test]
    fn striped_routes_spread_lanes_over_a_port_block() {
        let mut sw = Switch::new(SwitchSpec::sts3c(8));
        // Two connections to two different "nodes": VCI 100 → ports 0..4,
        // VCI 101 → ports 4..8, no per-lane transit retagging needed.
        sw.route_group(Vci(100), 0, 4);
        sw.route_group(Vci(101), 4, 4);
        for lane in 0..4usize {
            let (p0, _) = sw
                .forward_on_lane(SimTime::ZERO, &cell(100, 0), lane)
                .unwrap();
            let (p1, _) = sw
                .forward_on_lane(SimTime::ZERO, &cell(101, 0), lane)
                .unwrap();
            assert_eq!(p0, lane);
            assert_eq!(p1, 4 + lane);
        }
        // A VCI with no striped route is dropped and counted.
        assert!(sw.forward_on_lane(SimTime::ZERO, &cell(7, 0), 0).is_none());
        assert_eq!(sw.unrouted(), 1);
    }

    #[test]
    fn striped_route_ports_are_fifo_under_contention() {
        // Incast: two VCIs share the same destination block (same node).
        let mut sw = Switch::new(SwitchSpec::sts3c(4));
        sw.route_group(Vci(100), 0, 4);
        sw.route_group(Vci(101), 0, 4);
        let mut last = SimTime::ZERO;
        for seq in 0..20u16 {
            let vci = 100 + (seq % 2);
            let (port, dep) = sw
                .forward_on_lane(SimTime::ZERO, &cell(vci, seq), 2)
                .unwrap();
            assert_eq!(port, 2);
            assert!(dep > last, "shared output port must serialise in order");
            last = dep;
        }
        assert_eq!(sw.port_stats(2).cells, 20);
    }

    #[test]
    fn bounded_output_queue_drops_on_overflow() {
        let mut sw = Switch::new(SwitchSpec::sts3c_16port());
        sw.route(Vci(1), 0);
        sw.set_max_queue_cells(Some(4));
        // Offer 12 cells at the same instant: four fit in the bounded
        // queue (in service + waiting), the rest overflow.
        let mut forwarded = 0;
        for seq in 0..12u16 {
            if sw.forward(SimTime::ZERO, &cell(1, seq)).is_some() {
                forwarded += 1;
            }
        }
        assert_eq!(forwarded, 4, "bound covers in-service + waiting cells");
        assert_eq!(sw.overflow_dropped(), 8);
        assert_eq!(sw.port_stats(0).cells, 4, "dropped cells never count");
        // Once the queue drains, cells flow again.
        let later = SimTime::from_secs(1);
        assert!(sw.forward(later, &cell(1, 99)).is_some());
    }

    #[test]
    fn per_lane_order_survives_any_load_pattern() {
        let mut sw = Switch::new(SwitchSpec::sts3c_16port());
        sw.route(Vci(5), 1);
        sw.background_load(SimTime::from_us(10), 1, 7);
        let mut last = SimTime::ZERO;
        for seq in 0..50u16 {
            let t = SimTime::from_us(seq as u64 * 2);
            let (_, dep) = sw.forward(t, &cell(5, seq)).unwrap();
            assert!(dep >= last, "output queue must be FIFO");
            last = dep;
        }
        assert_eq!(sw.port_stats(1).cells, 50);
    }
}
