//! Cross-traffic generators.
//!
//! The queueing-delay skew of §2.6 exists because *other people's
//! traffic* shares the switch ports the stripe crosses. These generators
//! produce the cell arrival processes used to load switch ports in the
//! skew experiments:
//!
//! * [`TrafficModel::Cbr`] — constant bit rate (a video circuit);
//! * [`TrafficModel::OnOff`] — bursty: exponential-ish on/off periods at
//!   line rate during bursts (the data traffic that makes queueing delay
//!   "essentially unbounded" in the paper's words).

use osiris_sim::{SimDuration, SimRng, SimTime};

use crate::cell::CELL_BYTES_ON_WIRE;

/// The arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficModel {
    /// Evenly spaced cells at a fraction of line rate (per mille).
    Cbr {
        /// Load in 1/1000ths of line rate (1000 = saturated).
        load_permille: u32,
    },
    /// Bursts at full line rate separated by idle gaps; mean burst and
    /// gap lengths in cells.
    OnOff {
        /// Mean cells per burst.
        mean_burst: u32,
        /// Mean idle gap between bursts, in cell times.
        mean_gap: u32,
    },
}

/// Generates cell arrival instants for one source.
#[derive(Debug)]
pub struct TrafficSource {
    model: TrafficModel,
    cell_time: SimDuration,
    rng: SimRng,
    next: SimTime,
    burst_left: u32,
    cells_emitted: u64,
}

impl TrafficSource {
    /// A source over a line of `rate_bps` starting at `start`.
    pub fn new(model: TrafficModel, rate_bps: u64, start: SimTime, seed: u64) -> Self {
        let bits = CELL_BYTES_ON_WIRE as u128 * 8;
        let cell_time =
            SimDuration::from_ps((bits * 1_000_000_000_000u128 / rate_bps as u128) as u64);
        TrafficSource {
            model,
            cell_time,
            rng: SimRng::new(seed),
            next: start,
            burst_left: 0,
            cells_emitted: 0,
        }
    }

    /// Geometric draw with the given mean (≥ 1).
    fn geometric(rng: &mut SimRng, mean: u32) -> u32 {
        let mean = mean.max(1) as f64;
        let p = 1.0 / mean;
        let mut n = 1;
        while !rng.gen_bool(p) && n < 100_000 {
            n += 1;
        }
        n
    }

    /// The next cell's arrival instant.
    pub fn next_arrival(&mut self) -> SimTime {
        let at = match self.model {
            TrafficModel::Cbr { load_permille } => {
                let load = load_permille.clamp(1, 1000) as u64;
                let gap = SimDuration::from_ps(self.cell_time.as_ps() * 1000 / load);
                let at = self.next;
                self.next = at + gap;
                at
            }
            TrafficModel::OnOff {
                mean_burst,
                mean_gap,
            } => {
                if self.burst_left == 0 {
                    // New burst after a geometric idle gap.
                    let gap_cells = Self::geometric(&mut self.rng, mean_gap) as u64;
                    self.next += SimDuration::from_ps(self.cell_time.as_ps() * gap_cells);
                    self.burst_left = Self::geometric(&mut self.rng, mean_burst);
                }
                self.burst_left -= 1;
                let at = self.next;
                self.next = at + self.cell_time;
                at
            }
        };
        self.cells_emitted += 1;
        at
    }

    /// Arrival instants up to (and excluding) `until`.
    pub fn arrivals_until(&mut self, until: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        loop {
            let peek = self.next;
            if peek >= until {
                break;
            }
            out.push(self.next_arrival());
            // OnOff may jump `next` forward past `until` inside
            // next_arrival; the loop condition re-checks.
            if out.last().copied().unwrap_or(SimTime::ZERO) >= until {
                out.pop();
                break;
            }
        }
        out
    }

    /// Cells generated so far.
    pub fn cells_emitted(&self) -> u64 {
        self.cells_emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: u64 = 155_520_000;

    #[test]
    fn cbr_spacing_matches_load() {
        let mut s = TrafficSource::new(
            TrafficModel::Cbr { load_permille: 500 },
            RATE,
            SimTime::ZERO,
            1,
        );
        let a = s.next_arrival();
        let b = s.next_arrival();
        // 50% load → cells spaced two cell-times apart (~5.45 us).
        let gap = b.since(a);
        assert!((gap.as_us_f64() - 5.45).abs() < 0.02, "{gap}");
    }

    #[test]
    fn cbr_full_load_is_line_rate() {
        let mut s = TrafficSource::new(
            TrafficModel::Cbr {
                load_permille: 1000,
            },
            RATE,
            SimTime::ZERO,
            1,
        );
        let arrivals = s.arrivals_until(SimTime::from_ms(1));
        // 1 ms at 2.7263 us/cell ≈ 366 cells.
        assert!((360..=370).contains(&arrivals.len()), "{}", arrivals.len());
    }

    #[test]
    fn onoff_bursts_at_line_rate_with_gaps() {
        let mut s = TrafficSource::new(
            TrafficModel::OnOff {
                mean_burst: 10,
                mean_gap: 20,
            },
            RATE,
            SimTime::ZERO,
            7,
        );
        let arrivals: Vec<SimTime> = (0..500).map(|_| s.next_arrival()).collect();
        let cell = SimDuration::from_ps(53 * 8 * 1_000_000_000_000u64 / RATE);
        let mut back_to_back = 0;
        let mut gaps = 0;
        for w in arrivals.windows(2) {
            let d = w[1].since(w[0]);
            assert!(w[1] > w[0], "arrivals must advance");
            if d == cell {
                back_to_back += 1;
            } else {
                gaps += 1;
            }
        }
        assert!(back_to_back > 300, "bursts dominate: {back_to_back}");
        assert!(gaps > 10, "idle gaps exist: {gaps}");
        // Long-run load ≈ burst/(burst+gap) = 1/3 of line rate.
        let span = arrivals.last().unwrap().since(arrivals[0]);
        let load = 500.0 * cell.as_us_f64() / span.as_us_f64();
        assert!((0.15..0.6).contains(&load), "load {load}");
    }

    #[test]
    fn sources_are_deterministic_per_seed() {
        let mk = || {
            TrafficSource::new(
                TrafficModel::OnOff {
                    mean_burst: 5,
                    mean_gap: 5,
                },
                RATE,
                SimTime::ZERO,
                42,
            )
        };
        let a: Vec<SimTime> = {
            let mut s = mk();
            (0..100).map(|_| s.next_arrival()).collect()
        };
        let b: Vec<SimTime> = {
            let mut s = mk();
            (0..100).map(|_| s.next_arrival()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn arrivals_until_respects_bound() {
        let mut s = TrafficSource::new(
            TrafficModel::Cbr {
                load_permille: 1000,
            },
            RATE,
            SimTime::ZERO,
            3,
        );
        let until = SimTime::from_us(100);
        let arrivals = s.arrivals_until(until);
        assert!(!arrivals.is_empty());
        assert!(arrivals.iter().all(|&t| t < until));
    }
}
