//! Cell-level striping over four lanes, with skew and fault injection.
//!
//! §2.6: four 155 Mbps channels are "grouped together and treated as a
//! single logical channel, with data striped at the cell level". Cell `i`
//! of a PDU travels on lane `i mod 4`. Striping introduces *skew* — a
//! bounded class of misordering in which each lane stays FIFO but lanes
//! shift relative to each other — from three sources:
//!
//! 1. different physical path lengths (eliminated in AURORA by wavelength
//!    multiplexing onto one fibre → our `lane_offsets` default to zero),
//! 2. delays in multiplexing equipment (→ fixed per-lane `lane_offsets`),
//! 3. queueing in switch ports (→ random per-cell `queue_jitter`).
//!
//! The striper also injects cell loss and corruption for the fault-
//! handling tests (CRC detection, lazy cache invalidation recovery).

use osiris_sim::obs::{Counter, Probe};
use osiris_sim::{SimDuration, SimRng, SimTime};

use crate::cell::Cell;
use crate::link::{LinkLane, LinkSpec};

/// Skew and fault configuration for a striped link.
#[derive(Debug, Clone)]
pub struct SkewConfig {
    /// Fixed extra delay per lane (multiplexing equipment).
    pub lane_offsets: Vec<SimDuration>,
    /// Maximum random per-cell queueing delay (switch ports); uniform in
    /// `[0, max]`.
    pub queue_jitter_max: SimDuration,
    /// Probability a cell is silently dropped.
    pub drop_prob: f64,
    /// Probability one payload bit of a cell is flipped.
    pub corrupt_prob: f64,
    /// RNG seed for jitter and faults.
    pub seed: u64,
}

impl SkewConfig {
    /// Perfectly aligned lanes: no skew, no faults (back-to-back boards on
    /// one fibre — the paper's measurement setup).
    pub fn none() -> Self {
        SkewConfig {
            lane_offsets: vec![SimDuration::ZERO; 4],
            queue_jitter_max: SimDuration::ZERO,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            seed: 1,
        }
    }

    /// Mux-equipment skew: lanes shifted by a few cell times each — the
    /// surprise the authors "were not within our power to eliminate".
    pub fn mux_skew(seed: u64) -> Self {
        SkewConfig {
            lane_offsets: vec![
                SimDuration::ZERO,
                SimDuration::from_us(3),
                SimDuration::from_us(6),
                SimDuration::from_us(9),
            ],
            queue_jitter_max: SimDuration::ZERO,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            seed,
        }
    }

    /// Switch-queueing skew: random per-cell delays up to several cell
    /// times (essentially unbounded in the paper's analysis).
    pub fn switch_queueing(seed: u64, max_jitter: SimDuration) -> Self {
        SkewConfig {
            lane_offsets: vec![SimDuration::ZERO; 4],
            queue_jitter_max: max_jitter,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            seed,
        }
    }

    /// Whether any skew source is active.
    pub fn has_skew(&self) -> bool {
        !self.queue_jitter_max.is_zero() || self.lane_offsets.iter().any(|o| !o.is_zero())
    }
}

/// The 4 × 155 Mbps striped channel between two boards.
#[derive(Debug)]
pub struct StripedLink {
    lanes: Vec<LinkLane>,
    rng: SimRng,
    queue_jitter_max: SimDuration,
    drop_prob: f64,
    corrupt_prob: f64,
    cells_dropped: Counter,
    cells_corrupted: Counter,
}

impl StripedLink {
    /// A striped link with `skew.lane_offsets.len()` lanes of `spec` each
    /// and detached counters (standalone use).
    pub fn new(spec: LinkSpec, skew: SkewConfig) -> Self {
        StripedLink::with_probe(spec, skew, &Probe::detached())
    }

    /// A striped link publishing per-lane `lane<i>.cells_sent` plus
    /// `cells_dropped` / `cells_corrupted` under `<scope>.link`.
    pub fn with_probe(spec: LinkSpec, skew: SkewConfig, probe: &Probe) -> Self {
        assert!(!skew.lane_offsets.is_empty(), "need at least one lane");
        let p = probe.scoped("link");
        let lanes = skew
            .lane_offsets
            .iter()
            .enumerate()
            .map(|(i, &off)| LinkLane::with_probe(spec, off, &p.scoped(&format!("lane{i}"))))
            .collect::<Vec<_>>();
        StripedLink {
            lanes,
            rng: SimRng::new(skew.seed),
            queue_jitter_max: skew.queue_jitter_max,
            drop_prob: skew.drop_prob,
            corrupt_prob: skew.corrupt_prob,
            cells_dropped: p.counter("cells_dropped"),
            cells_corrupted: p.counter("cells_corrupted"),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Aggregate wire rate in bits per second.
    pub fn aggregate_rate_bps(&self) -> u64 {
        self.lanes.iter().map(|l| l.spec().rate_bps).sum()
    }

    /// Sends cell `index_in_pdu` of a PDU at `now`, possibly corrupting it
    /// in place. Returns `(lane, arrival_time)`, or `None` if the cell was
    /// dropped.
    pub fn send_cell(
        &mut self,
        now: SimTime,
        index_in_pdu: u32,
        cell: &mut Cell,
    ) -> Option<(usize, SimTime)> {
        if self.drop_prob > 0.0 && self.rng.gen_bool(self.drop_prob) {
            self.cells_dropped.incr();
            return None;
        }
        if self.corrupt_prob > 0.0 && self.rng.gen_bool(self.corrupt_prob) {
            let byte = self.rng.gen_range(44) as usize;
            let bit = self.rng.gen_range(8) as u8;
            cell.corrupt_bit(byte, bit);
            self.cells_corrupted.incr();
        }
        let lane = (index_in_pdu as usize) % self.lanes.len();
        let jitter = if self.queue_jitter_max.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(self.rng.gen_range(self.queue_jitter_max.as_ps() + 1))
        };
        let arrival = self.lanes[lane].send(now, jitter);
        Some((lane, arrival))
    }

    /// Cells dropped by fault injection.
    pub fn cells_dropped(&self) -> u64 {
        self.cells_dropped.get()
    }

    /// Cells corrupted by fault injection.
    pub fn cells_corrupted(&self) -> u64 {
        self.cells_corrupted.get()
    }

    /// Total cells carried (all lanes).
    pub fn cells_sent(&self) -> u64 {
        self.lanes.iter().map(|l| l.cells_sent()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vci::Vci;

    fn mk_cell(i: u16) -> Cell {
        Cell::data(Vci(1), i, &[i as u8; 44])
    }

    #[test]
    fn round_robin_lane_assignment() {
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), SkewConfig::none());
        for i in 0..8u32 {
            let mut c = mk_cell(i as u16);
            let (lane, _) = link.send_cell(SimTime::ZERO, i, &mut c).unwrap();
            assert_eq!(lane, (i % 4) as usize);
        }
        assert_eq!(link.cells_sent(), 8);
    }

    #[test]
    fn aggregate_rate_is_622() {
        let link = StripedLink::new(LinkSpec::sts3c_back_to_back(), SkewConfig::none());
        assert_eq!(link.aggregate_rate_bps(), 4 * 155_520_000);
    }

    #[test]
    fn no_skew_preserves_global_order() {
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), SkewConfig::none());
        let mut arrivals = Vec::new();
        for i in 0..16u32 {
            let mut c = mk_cell(i as u16);
            arrivals.push(link.send_cell(SimTime::ZERO, i, &mut c).unwrap().1);
        }
        let mut sorted = arrivals.clone();
        sorted.sort();
        assert_eq!(arrivals, sorted, "aligned lanes must not reorder");
    }

    #[test]
    fn mux_skew_reorders_across_lanes_only() {
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), SkewConfig::mux_skew(7));
        let mut by_lane: Vec<Vec<SimTime>> = vec![vec![]; 4];
        let mut all: Vec<(u32, SimTime)> = Vec::new();
        for i in 0..32u32 {
            let mut c = mk_cell(i as u16);
            let (lane, t) = link.send_cell(SimTime::ZERO, i, &mut c).unwrap();
            by_lane[lane].push(t);
            all.push((i, t));
        }
        // Per-lane FIFO must hold.
        for lane in &by_lane {
            assert!(lane.windows(2).all(|w| w[0] <= w[1]));
        }
        // Global order must be violated (cell 1 on the +3us lane arrives
        // after cell 4 on the +0us lane, etc.).
        let globally_ordered = all.windows(2).all(|w| w[0].1 <= w[1].1);
        assert!(!globally_ordered, "mux skew should reorder across lanes");
    }

    #[test]
    fn switch_queueing_jitter_is_deterministic_per_seed() {
        let cfg = SkewConfig::switch_queueing(9, SimDuration::from_us(20));
        let mut a = StripedLink::new(LinkSpec::sts3c_back_to_back(), cfg.clone());
        let mut b = StripedLink::new(LinkSpec::sts3c_back_to_back(), cfg);
        for i in 0..64u32 {
            let mut ca = mk_cell(i as u16);
            let mut cb = mk_cell(i as u16);
            assert_eq!(
                a.send_cell(SimTime::ZERO, i, &mut ca),
                b.send_cell(SimTime::ZERO, i, &mut cb)
            );
        }
    }

    #[test]
    fn drop_injection_counts() {
        let mut cfg = SkewConfig::none();
        cfg.drop_prob = 1.0;
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), cfg);
        let mut c = mk_cell(0);
        assert!(link.send_cell(SimTime::ZERO, 0, &mut c).is_none());
        assert_eq!(link.cells_dropped(), 1);
        assert_eq!(link.cells_sent(), 0);
    }

    #[test]
    fn corruption_flips_payload() {
        let mut cfg = SkewConfig::none();
        cfg.corrupt_prob = 1.0;
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), cfg);
        let mut c = mk_cell(3);
        let before = c.payload;
        link.send_cell(SimTime::ZERO, 0, &mut c).unwrap();
        assert_ne!(c.payload, before);
        assert_eq!(link.cells_corrupted(), 1);
    }

    #[test]
    fn has_skew_classifier() {
        assert!(!SkewConfig::none().has_skew());
        assert!(SkewConfig::mux_skew(1).has_skew());
        assert!(SkewConfig::switch_queueing(1, SimDuration::from_us(5)).has_skew());
    }
}
