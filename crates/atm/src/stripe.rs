//! Cell-level striping over four lanes, with skew and fault injection.
//!
//! §2.6: four 155 Mbps channels are "grouped together and treated as a
//! single logical channel, with data striped at the cell level". Cell `i`
//! of a PDU travels on lane `i mod 4`. Striping introduces *skew* — a
//! bounded class of misordering in which each lane stays FIFO but lanes
//! shift relative to each other — from three sources:
//!
//! 1. different physical path lengths (eliminated in AURORA by wavelength
//!    multiplexing onto one fibre → our `lane_offsets` default to zero),
//! 2. delays in multiplexing equipment (→ fixed per-lane `lane_offsets`),
//! 3. queueing in switch ports (→ random per-cell `queue_jitter`).
//!
//! The striper also injects cell loss and corruption for the fault-
//! handling tests (CRC detection, lazy cache invalidation recovery).

use osiris_sim::faults::{CellFate, FaultInjector, FaultPlan};
use osiris_sim::obs::{Counter, Probe};
use osiris_sim::{SimDuration, SimRng, SimTime};

use crate::cell::Cell;
use crate::link::{LinkLane, LinkSpec};
use crate::slab::{CellRef, CellSlab};

/// Skew and fault configuration for a striped link.
#[derive(Debug, Clone)]
pub struct SkewConfig {
    /// Fixed extra delay per lane (multiplexing equipment).
    pub lane_offsets: Vec<SimDuration>,
    /// Maximum random per-cell queueing delay (switch ports); uniform in
    /// `[0, max]`.
    pub queue_jitter_max: SimDuration,
    /// Probability a cell is silently dropped.
    pub drop_prob: f64,
    /// Probability one payload bit of a cell is flipped.
    pub corrupt_prob: f64,
    /// RNG seed for jitter and faults.
    pub seed: u64,
}

impl SkewConfig {
    /// Perfectly aligned lanes: no skew, no faults (back-to-back boards on
    /// one fibre — the paper's measurement setup).
    pub fn none() -> Self {
        SkewConfig {
            lane_offsets: vec![SimDuration::ZERO; 4],
            queue_jitter_max: SimDuration::ZERO,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            seed: 1,
        }
    }

    /// Mux-equipment skew: lanes shifted by a few cell times each — the
    /// surprise the authors "were not within our power to eliminate".
    pub fn mux_skew(seed: u64) -> Self {
        SkewConfig {
            lane_offsets: vec![
                SimDuration::ZERO,
                SimDuration::from_us(3),
                SimDuration::from_us(6),
                SimDuration::from_us(9),
            ],
            queue_jitter_max: SimDuration::ZERO,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            seed,
        }
    }

    /// Switch-queueing skew: random per-cell delays up to several cell
    /// times (essentially unbounded in the paper's analysis).
    pub fn switch_queueing(seed: u64, max_jitter: SimDuration) -> Self {
        SkewConfig {
            lane_offsets: vec![SimDuration::ZERO; 4],
            queue_jitter_max: max_jitter,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            seed,
        }
    }

    /// Whether any skew source is active.
    pub fn has_skew(&self) -> bool {
        !self.queue_jitter_max.is_zero() || self.lane_offsets.iter().any(|o| !o.is_zero())
    }
}

/// The 4 × 155 Mbps striped channel between two boards.
#[derive(Debug)]
pub struct StripedLink {
    lanes: Vec<LinkLane>,
    rng: SimRng,
    queue_jitter_max: SimDuration,
    drop_prob: f64,
    corrupt_prob: f64,
    /// Structured fault injection on top of the legacy uniform
    /// probabilities (`None` when the run's `FaultPlan` is empty).
    injector: Option<FaultInjector>,
    cells_dropped: Counter,
    cells_corrupted: Counter,
    cells_remapped: Counter,
}

impl StripedLink {
    /// A striped link with `skew.lane_offsets.len()` lanes of `spec` each
    /// and detached counters (standalone use). The config is borrowed —
    /// the link copies out the few scalars it needs, so callers never
    /// clone a `SkewConfig` just to build a link.
    pub fn new(spec: LinkSpec, skew: &SkewConfig) -> Self {
        StripedLink::with_probe(spec, skew, &Probe::detached())
    }

    /// A striped link publishing per-lane `lane<i>.cells_sent` plus
    /// `cells_dropped` / `cells_corrupted` under `<scope>.link`.
    pub fn with_probe(spec: LinkSpec, skew: &SkewConfig, probe: &Probe) -> Self {
        assert!(!skew.lane_offsets.is_empty(), "need at least one lane");
        let p = probe.scoped("link");
        let lanes = skew
            .lane_offsets
            .iter()
            .enumerate()
            .map(|(i, &off)| LinkLane::with_probe(spec, off, &p.scoped(&format!("lane{i}"))))
            .collect::<Vec<_>>();
        StripedLink {
            lanes,
            rng: SimRng::new(skew.seed),
            queue_jitter_max: skew.queue_jitter_max,
            drop_prob: skew.drop_prob,
            corrupt_prob: skew.corrupt_prob,
            injector: None,
            cells_dropped: p.counter("cells_dropped"),
            cells_corrupted: p.counter("cells_corrupted"),
            cells_remapped: p.counter("cells_remapped"),
        }
    }

    /// Replaces the jitter/fault RNG stream with one seeded by `seed`.
    /// Lets a harness derive per-node seeds from one shared, borrowed
    /// [`SkewConfig`] instead of cloning the config per node just to
    /// rewrite its `seed` field.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed);
    }

    /// Arms the structured fault plan on this link. `component_seed`
    /// (typically the per-node link seed) keeps fault streams independent
    /// across links while staying deterministic. An empty plan is a
    /// no-op, so unconditional wiring is safe.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, component_seed: u64) {
        if plan.affects_lanes() {
            self.injector = Some(FaultInjector::new(plan, component_seed));
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Aggregate wire rate in bits per second.
    pub fn aggregate_rate_bps(&self) -> u64 {
        self.lanes.iter().map(|l| l.spec().rate_bps).sum()
    }

    /// Sends cell `index_in_pdu` of a PDU at `now`, possibly corrupting it
    /// in place. Returns `(lane, arrival_time)`, or `None` if the cell was
    /// dropped.
    ///
    /// The returned lane is always the *logical* stripe lane
    /// (`index mod lanes`): under a lane outage with graceful degradation
    /// the cell serialises through a live lane's transmitter but still
    /// belongs to its logical lane — four-way framing bakes the lane into
    /// the cell trailers at segmentation, so the receiver's reassembler
    /// must keep seeing the logical lane. Only the physical timing moves.
    pub fn send_cell(
        &mut self,
        now: SimTime,
        index_in_pdu: u32,
        cell: &mut Cell,
    ) -> Option<(usize, SimTime)> {
        if self.drop_prob > 0.0 && self.rng.gen_bool(self.drop_prob) {
            self.cells_dropped.incr();
            return None;
        }
        if self.corrupt_prob > 0.0 && self.rng.gen_bool(self.corrupt_prob) {
            let byte = self.rng.gen_range(44) as usize;
            let bit = self.rng.gen_range(8) as u8;
            cell.corrupt_bit(byte, bit);
            self.cells_corrupted.incr();
        }
        let lane = (index_in_pdu as usize) % self.lanes.len();
        let mut physical = lane;
        if let Some(inj) = &mut self.injector {
            match inj.offer(lane, cell.payload.len()) {
                CellFate::Drop => {
                    self.cells_dropped.incr();
                    return None;
                }
                CellFate::Corrupt { byte, bit } => {
                    cell.corrupt_bit(byte, bit);
                    self.cells_corrupted.incr();
                }
                CellFate::Deliver => {}
            }
            match inj.physical_lane(lane, now, self.lanes.len()) {
                Some(p) => {
                    if p != lane {
                        self.cells_remapped.incr();
                    }
                    physical = p;
                }
                None => {
                    // The lane is dark and nothing can carry its cells.
                    self.cells_dropped.incr();
                    return None;
                }
            }
        }
        let jitter = if self.queue_jitter_max.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_ps(self.rng.gen_range(self.queue_jitter_max.as_ps() + 1))
        };
        let arrival = self.lanes[physical].send(now, jitter);
        Some((lane, arrival))
    }

    /// Slab-handle form of [`send_cell`](Self::send_cell): the cell stays
    /// parked in `slab` and is corrupted in place if a fault fires; a
    /// dropped cell's slot is freed immediately so the slab recycles it.
    pub fn send_cell_ref(
        &mut self,
        now: SimTime,
        index_in_pdu: u32,
        r: CellRef,
        slab: &mut CellSlab,
    ) -> Option<(usize, SimTime)> {
        let sent = self.send_cell(now, index_in_pdu, slab.get_mut(r));
        if sent.is_none() {
            slab.free(r);
        }
        sent
    }

    /// Cells dropped by fault injection.
    pub fn cells_dropped(&self) -> u64 {
        self.cells_dropped.get()
    }

    /// Cells corrupted by fault injection.
    pub fn cells_corrupted(&self) -> u64 {
        self.cells_corrupted.get()
    }

    /// Cells carried over a live lane while their logical lane was in an
    /// outage window (graceful stripe degradation).
    pub fn cells_remapped(&self) -> u64 {
        self.cells_remapped.get()
    }

    /// Total cells carried (all lanes).
    pub fn cells_sent(&self) -> u64 {
        self.lanes.iter().map(|l| l.cells_sent()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vci::Vci;

    fn mk_cell(i: u16) -> Cell {
        Cell::data(Vci(1), i, &[i as u8; 44])
    }

    #[test]
    fn round_robin_lane_assignment() {
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
        for i in 0..8u32 {
            let mut c = mk_cell(i as u16);
            let (lane, _) = link.send_cell(SimTime::ZERO, i, &mut c).unwrap();
            assert_eq!(lane, (i % 4) as usize);
        }
        assert_eq!(link.cells_sent(), 8);
    }

    #[test]
    fn aggregate_rate_is_622() {
        let link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
        assert_eq!(link.aggregate_rate_bps(), 4 * 155_520_000);
    }

    #[test]
    fn no_skew_preserves_global_order() {
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
        let mut arrivals = Vec::new();
        for i in 0..16u32 {
            let mut c = mk_cell(i as u16);
            arrivals.push(link.send_cell(SimTime::ZERO, i, &mut c).unwrap().1);
        }
        let mut sorted = arrivals.clone();
        sorted.sort();
        assert_eq!(arrivals, sorted, "aligned lanes must not reorder");
    }

    #[test]
    fn mux_skew_reorders_across_lanes_only() {
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::mux_skew(7));
        let mut by_lane: Vec<Vec<SimTime>> = vec![vec![]; 4];
        let mut all: Vec<(u32, SimTime)> = Vec::new();
        for i in 0..32u32 {
            let mut c = mk_cell(i as u16);
            let (lane, t) = link.send_cell(SimTime::ZERO, i, &mut c).unwrap();
            by_lane[lane].push(t);
            all.push((i, t));
        }
        // Per-lane FIFO must hold.
        for lane in &by_lane {
            assert!(lane.windows(2).all(|w| w[0] <= w[1]));
        }
        // Global order must be violated (cell 1 on the +3us lane arrives
        // after cell 4 on the +0us lane, etc.).
        let globally_ordered = all.windows(2).all(|w| w[0].1 <= w[1].1);
        assert!(!globally_ordered, "mux skew should reorder across lanes");
    }

    #[test]
    fn switch_queueing_jitter_is_deterministic_per_seed() {
        let cfg = SkewConfig::switch_queueing(9, SimDuration::from_us(20));
        let mut a = StripedLink::new(LinkSpec::sts3c_back_to_back(), &cfg);
        let mut b = StripedLink::new(LinkSpec::sts3c_back_to_back(), &cfg);
        for i in 0..64u32 {
            let mut ca = mk_cell(i as u16);
            let mut cb = mk_cell(i as u16);
            assert_eq!(
                a.send_cell(SimTime::ZERO, i, &mut ca),
                b.send_cell(SimTime::ZERO, i, &mut cb)
            );
        }
    }

    #[test]
    fn drop_injection_counts() {
        let mut cfg = SkewConfig::none();
        cfg.drop_prob = 1.0;
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &cfg);
        let mut c = mk_cell(0);
        assert!(link.send_cell(SimTime::ZERO, 0, &mut c).is_none());
        assert_eq!(link.cells_dropped(), 1);
        assert_eq!(link.cells_sent(), 0);
    }

    #[test]
    fn corruption_flips_payload() {
        let mut cfg = SkewConfig::none();
        cfg.corrupt_prob = 1.0;
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &cfg);
        let mut c = mk_cell(3);
        let before = c.payload;
        link.send_cell(SimTime::ZERO, 0, &mut c).unwrap();
        assert_ne!(c.payload, before);
        assert_eq!(link.cells_corrupted(), 1);
    }

    #[test]
    fn has_skew_classifier() {
        assert!(!SkewConfig::none().has_skew());
        assert!(SkewConfig::mux_skew(1).has_skew());
        assert!(SkewConfig::switch_queueing(1, SimDuration::from_us(5)).has_skew());
    }

    #[test]
    fn fault_plan_point_drop_kills_exactly_one_cell() {
        use osiris_sim::faults::{PointFault, PointFaultKind};
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
        link.set_fault_plan(
            &FaultPlan {
                // The 2nd cell offered to lane 1 (= global cell index 5).
                point_faults: vec![PointFault {
                    lane: 1,
                    nth: 1,
                    kind: PointFaultKind::Drop,
                }],
                ..FaultPlan::default()
            },
            0,
        );
        let mut outcomes = Vec::new();
        for i in 0..8u32 {
            let mut c = mk_cell(i as u16);
            outcomes.push(link.send_cell(SimTime::ZERO, i, &mut c).is_some());
        }
        let expected: Vec<bool> = (0..8).map(|i| i != 5).collect();
        assert_eq!(outcomes, expected);
        assert_eq!(link.cells_dropped(), 1);
    }

    #[test]
    fn outage_without_remap_drops_the_lane() {
        use osiris_sim::faults::LaneOutage;
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
        link.set_fault_plan(
            &FaultPlan {
                outages: vec![LaneOutage {
                    lane: 2,
                    from: SimTime::ZERO,
                    until: SimTime::from_secs(1),
                }],
                ..FaultPlan::default()
            },
            0,
        );
        for i in 0..8u32 {
            let mut c = mk_cell(i as u16);
            let sent = link.send_cell(SimTime::ZERO, i, &mut c);
            assert_eq!(sent.is_none(), i % 4 == 2, "only lane 2 goes dark");
        }
        assert_eq!(link.cells_dropped(), 2);
        assert_eq!(link.cells_remapped(), 0);
    }

    #[test]
    fn outage_with_remap_keeps_the_logical_lane_and_loses_nothing() {
        use osiris_sim::faults::LaneOutage;
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
        link.set_fault_plan(
            &FaultPlan {
                outages: vec![LaneOutage {
                    lane: 0,
                    from: SimTime::ZERO,
                    until: SimTime::from_secs(1),
                }],
                remap_on_outage: true,
                ..FaultPlan::default()
            },
            0,
        );
        let mut lane0_arrivals = Vec::new();
        for i in 0..16u32 {
            let mut c = mk_cell(i as u16);
            let (lane, at) = link
                .send_cell(SimTime::ZERO, i, &mut c)
                .expect("remap carries every cell");
            assert_eq!(lane, (i % 4) as usize, "logical lane is preserved");
            if lane == 0 {
                lane0_arrivals.push(at);
            }
        }
        assert_eq!(link.cells_dropped(), 0);
        assert_eq!(link.cells_remapped(), 4);
        // Remapped cells still arrive in order (they share one live
        // transmitter for the whole window).
        assert!(lane0_arrivals.windows(2).all(|w| w[0] <= w[1]));
    }
}
