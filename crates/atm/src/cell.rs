//! ATM cells as OSIRIS uses them.
//!
//! A cell occupies 53 bytes on the wire (5-byte ATM header + 48-byte
//! payload). Of the 48 payload bytes, 4 are AAL overhead, leaving the
//! paper's **44 bytes of data per cell** (§2.5: "44 bytes, because of AAL
//! overhead") — which is also why the 622 Mbps SONET link delivers only
//! 516 Mbps of data bandwidth.
//!
//! Model-level layout:
//!
//! * The ATM header carries the VCI and the extra "very last cell of the
//!   PDU" framing bit §2.6 proposes for PDUs shorter than the stripe width.
//! * The AAL header carries a 16-bit cell sequence number (strategy 1 of
//!   §2.6) and an end-of-(sub)stream framing bit (AAL5-style, used per
//!   stripe lane by strategy 2).
//! * The AAL5-style trailer (PDU/sub-stream length + real CRC-32) is carried
//!   out-of-band in the `Trailer` field of the end-of-stream cell rather
//!   than inside the 44 data bytes. This keeps the paper's throughput
//!   arithmetic (44 data bytes per 53 wire bytes) exact while the CRC is
//!   still genuinely computed and checked; documented in DESIGN.md.

use crate::vci::Vci;
use osiris_sim::TraceCtx;

/// Data bytes carried per cell.
pub const CELL_PAYLOAD: usize = 44;
/// Bytes a cell occupies on the wire (ATM header + 48-byte payload).
pub const CELL_BYTES_ON_WIRE: u64 = 53;

/// The ATM cell header fields the OSIRIS firmware looks at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellHeader {
    /// Virtual circuit identifier — the early-demultiplexing key (§3.1).
    pub vci: Vci,
    /// §2.6's extra framing bit: set on the very last cell of a PDU so
    /// reassembly completes even when the PDU has fewer cells than lanes.
    pub last_cell: bool,
}

/// AAL (adaptation layer) per-cell header — the 4 bytes of overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AalHeader {
    /// Cell index within the PDU (mod 2^16). Strategy 1 of §2.6 uses this
    /// to place out-of-order cells.
    pub seq: u16,
    /// End-of-stream framing bit. With [`FramingMode::EndOfPdu`] it marks
    /// the last cell of the PDU; with [`FramingMode::FourWay`] it marks the
    /// last cell of this *lane's* sub-stream.
    ///
    /// [`FramingMode::EndOfPdu`]: crate::sar::FramingMode::EndOfPdu
    /// [`FramingMode::FourWay`]: crate::sar::FramingMode::FourWay
    pub eom: bool,
    /// Number of valid data bytes, `1..=44`. Less than 44 mid-PDU only in
    /// the "partially filled cells" mode §2.5.2 criticises.
    pub fill: u8,
}

/// AAL5-style trailer carried by end-of-stream cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trailer {
    /// Total data length of the protected stream (PDU or lane sub-stream).
    pub len: u32,
    /// CRC-32 over the protected stream's data bytes, in order.
    pub crc: u32,
}

/// A cell in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// ATM header.
    pub header: CellHeader,
    /// AAL per-cell header.
    pub aal: AalHeader,
    /// The 44-byte data payload (only `aal.fill` bytes valid).
    pub payload: [u8; CELL_PAYLOAD],
    /// Present on cells with `aal.eom` set.
    pub trailer: Option<Trailer>,
    /// Simulation-side causal identity of the PDU this cell carries a
    /// piece of — metadata for per-PDU tracing, **not** wire bytes (it
    /// does not survive `wire::encode`/`decode` and costs nothing in the
    /// 44/53 throughput arithmetic).
    pub ctx: Option<TraceCtx>,
}

impl Cell {
    /// A data cell with the given sequence number and payload bytes.
    ///
    /// # Panics
    /// Panics if `data` is empty or longer than 44 bytes.
    pub fn data(vci: Vci, seq: u16, data: &[u8]) -> Self {
        assert!(
            !data.is_empty() && data.len() <= CELL_PAYLOAD,
            "bad cell fill {}",
            data.len()
        );
        let mut payload = [0u8; CELL_PAYLOAD];
        payload[..data.len()].copy_from_slice(data);
        Cell {
            header: CellHeader {
                vci,
                last_cell: false,
            },
            aal: AalHeader {
                seq,
                eom: false,
                fill: data.len() as u8,
            },
            payload,
            trailer: None,
            ctx: None,
        }
    }

    /// The valid data bytes.
    pub fn data_bytes(&self) -> &[u8] {
        &self.payload[..self.aal.fill as usize]
    }

    /// Flips one payload bit (fault injection for CRC tests).
    pub fn corrupt_bit(&mut self, byte: usize, bit: u8) {
        self.payload[byte % CELL_PAYLOAD] ^= 1 << (bit % 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_sets_fill() {
        let c = Cell::data(Vci(5), 3, b"hello");
        assert_eq!(c.aal.fill, 5);
        assert_eq!(c.data_bytes(), b"hello");
        assert_eq!(c.aal.seq, 3);
        assert!(!c.aal.eom);
        assert!(!c.header.last_cell);
        assert_eq!(c.header.vci, Vci(5));
    }

    #[test]
    fn full_cell() {
        let data = [7u8; CELL_PAYLOAD];
        let c = Cell::data(Vci(1), 0, &data);
        assert_eq!(c.aal.fill as usize, CELL_PAYLOAD);
        assert_eq!(c.data_bytes(), &data);
    }

    #[test]
    #[should_panic(expected = "bad cell fill")]
    fn empty_cell_panics() {
        Cell::data(Vci(1), 0, b"");
    }

    #[test]
    #[should_panic(expected = "bad cell fill")]
    fn oversize_cell_panics() {
        Cell::data(Vci(1), 0, &[0u8; CELL_PAYLOAD + 1]);
    }

    #[test]
    fn corrupt_bit_flips_payload() {
        let mut c = Cell::data(Vci(1), 0, &[0u8; 44]);
        c.corrupt_bit(10, 3);
        assert_eq!(c.payload[10], 0b1000);
        c.corrupt_bit(10, 3);
        assert_eq!(c.payload[10], 0);
    }

    #[test]
    fn wire_size_constants() {
        // 44/53 payload efficiency on a 622 Mbps link ⇒ ~516 Mbps of data,
        // the paper's figure for usable bandwidth.
        let payload_rate: f64 = 622.0 * CELL_PAYLOAD as f64 / CELL_BYTES_ON_WIRE as f64;
        assert!((payload_rate - 516.4).abs() < 0.1);
    }
}
