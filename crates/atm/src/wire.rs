//! Cell wire format: 53-byte images with a real HEC.
//!
//! The simulation mostly moves [`Cell`] structs, but interoperability and
//! fault-injection realism want actual octets: a 5-byte ATM header
//! protected by the standard HEC (CRC-8, polynomial x⁸+x²+x+1, XORed with
//! 0x55 per I.432), a 4-byte AAL header (sequence number, framing bits,
//! fill), and the 44-byte payload. Trailers of EOM cells are carried in a
//! 9-byte extension record (see DESIGN.md: trailers are out-of-band in
//! the model so the 44-data-bytes-per-cell arithmetic stays exact).
//!
//! `encode`/`decode` round-trip every cell, and `decode` rejects any
//! header corruption via the HEC — the property the fault-injection
//! tests lean on.

use crate::cell::{AalHeader, Cell, CellHeader, Trailer, CELL_PAYLOAD};
use crate::vci::Vci;

/// Bytes in an encoded cell without a trailer extension.
pub const WIRE_BASE: usize = 5 + 4 + CELL_PAYLOAD;
/// Extra bytes when a trailer extension is present.
pub const WIRE_TRAILER: usize = 9;

/// CRC-8 with polynomial x⁸ + x² + x + 1 (0x07), as used by the ATM HEC.
pub fn hec(bytes: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    // I.432 recommends XORing the HEC with 0x55 for better delineation.
    crc ^ 0x55
}

/// Wire-format decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a base cell.
    Truncated,
    /// The header checksum did not match.
    BadHec,
    /// The fill field was 0 or exceeded 44.
    BadFill,
    /// An EOM cell without its trailer extension (or length mismatch).
    MissingTrailer,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "truncated cell",
            WireError::BadHec => "header checksum mismatch",
            WireError::BadFill => "invalid fill",
            WireError::MissingTrailer => "missing trailer extension",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// Encodes a cell to its wire image.
pub fn encode(cell: &Cell) -> Vec<u8> {
    let has_trailer = cell.trailer.is_some();
    let mut out = Vec::with_capacity(WIRE_BASE + if has_trailer { WIRE_TRAILER } else { 0 });
    // ── ATM header (5 bytes): flags, VCI, spare, HEC ──
    let mut flags = 0u8;
    if cell.header.last_cell {
        flags |= 0b01;
    }
    if has_trailer {
        flags |= 0b10;
    }
    out.push(flags);
    out.extend_from_slice(&cell.header.vci.0.to_be_bytes());
    out.push(0); // spare (GFC/PT/CLP territory in real ATM)
    out.push(hec(&out[0..4]));
    // ── AAL header (4 bytes): seq, eom|fill ──
    out.extend_from_slice(&cell.aal.seq.to_be_bytes());
    out.push(if cell.aal.eom { 1 } else { 0 });
    out.push(cell.aal.fill);
    // ── payload ──
    out.extend_from_slice(&cell.payload);
    // ── trailer extension ──
    if let Some(t) = cell.trailer {
        out.push(0xA1); // trailer-extension marker
        out.extend_from_slice(&t.len.to_be_bytes());
        out.extend_from_slice(&t.crc.to_be_bytes());
    }
    out
}

/// Decodes a wire image back into a cell, verifying the HEC.
pub fn decode(bytes: &[u8]) -> Result<Cell, WireError> {
    if bytes.len() < WIRE_BASE {
        return Err(WireError::Truncated);
    }
    if hec(&bytes[0..4]) != bytes[4] {
        return Err(WireError::BadHec);
    }
    let flags = bytes[0];
    let last_cell = flags & 0b01 != 0;
    let has_trailer = flags & 0b10 != 0;
    let vci = Vci(u16::from_be_bytes([bytes[1], bytes[2]]));
    let seq = u16::from_be_bytes([bytes[5], bytes[6]]);
    let eom = bytes[7] != 0;
    let fill = bytes[8];
    if fill == 0 || fill as usize > CELL_PAYLOAD {
        return Err(WireError::BadFill);
    }
    let mut payload = [0u8; CELL_PAYLOAD];
    payload.copy_from_slice(&bytes[9..9 + CELL_PAYLOAD]);
    let trailer = if has_trailer {
        if bytes.len() < WIRE_BASE + WIRE_TRAILER {
            return Err(WireError::MissingTrailer);
        }
        let t = &bytes[WIRE_BASE..];
        Some(Trailer {
            len: u32::from_be_bytes([t[1], t[2], t[3], t[4]]),
            crc: u32::from_be_bytes([t[5], t[6], t[7], t[8]]),
        })
    } else {
        None
    };
    Ok(Cell {
        header: CellHeader { vci, last_cell },
        aal: AalHeader { seq, eom, fill },
        payload,
        trailer,
        // Trace identity is sim-side metadata, never encoded.
        ctx: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(with_trailer: bool) -> Cell {
        let mut c = Cell::data(Vci(0x1234), 77, &[0xAB; 30]);
        c.header.last_cell = true;
        if with_trailer {
            c.aal.eom = true;
            c.trailer = Some(Trailer {
                len: 1234,
                crc: 0xDEADBEEF,
            });
        }
        c
    }

    #[test]
    fn roundtrip_plain_and_trailer() {
        for t in [false, true] {
            let c = sample(t);
            let bytes = encode(&c);
            assert_eq!(bytes.len(), WIRE_BASE + if t { WIRE_TRAILER } else { 0 });
            assert_eq!(decode(&bytes).unwrap(), c);
        }
    }

    #[test]
    fn hec_catches_every_header_bit_flip() {
        let bytes = encode(&sample(false));
        for bit in 0..(5 * 8) {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(decode(&bad).unwrap_err(), WireError::BadHec, "bit {bit}");
        }
    }

    #[test]
    fn payload_corruption_is_not_hecs_job() {
        // The HEC protects the header only; payload errors are the AAL
        // CRC-32's job (checked at reassembly).
        let c = sample(false);
        let mut bytes = encode(&c);
        bytes[20] ^= 0xFF;
        let decoded = decode(&bytes).unwrap();
        assert_ne!(decoded.payload, c.payload);
    }

    #[test]
    fn truncation_and_bad_fill_rejected() {
        let bytes = encode(&sample(false));
        assert_eq!(decode(&bytes[..10]).unwrap_err(), WireError::Truncated);
        let mut bad = bytes.clone();
        bad[8] = 0;
        assert_eq!(decode(&bad).unwrap_err(), WireError::BadFill);
        let mut bad = bytes;
        bad[8] = 45;
        assert_eq!(decode(&bad).unwrap_err(), WireError::BadFill);
    }

    #[test]
    fn missing_trailer_detected() {
        let bytes = encode(&sample(true));
        assert_eq!(
            decode(&bytes[..WIRE_BASE]).unwrap_err(),
            WireError::MissingTrailer
        );
    }

    #[test]
    fn hec_distributes() {
        let mut seen = std::collections::HashSet::new();
        for v in 0..256u16 {
            seen.insert(hec(&v.to_be_bytes()));
        }
        assert!(seen.len() > 200, "HEC should spread: {}", seen.len());
    }
}
