//! # osiris-atm — ATM substrate
//!
//! Everything between the two OSIRIS boards: 53-byte cells with a 44-byte
//! AAL payload (§2.5: "44 bytes, because of AAL overhead"), CRC-protected
//! framing, segmentation-and-reassembly algorithms — including the two
//! skew-tolerant reassembly strategies of §2.6 — and the striped physical
//! link (4 × 155 Mbps lanes treated as one 622 Mbps channel) with the three
//! skew sources the paper identifies.
//!
//! The SAR code here is "the software running on the two 80960s": it is
//! deliberately written as plain, allocation-light state machines, because
//! in the paper this logic had to fit a tight on-board instruction budget.

pub mod cell;
pub mod crc;
pub mod link;
pub mod sar;
pub mod slab;
pub mod stripe;
pub mod switch;
pub mod traffic;
pub mod vci;
pub mod wire;

pub use cell::{AalHeader, Cell, CellHeader, Trailer, CELL_BYTES_ON_WIRE, CELL_PAYLOAD};
pub use crc::{crc10, crc32, Crc32};
pub use link::{LinkLane, LinkSpec};
pub use sar::{
    CellDisposition, FramingMode, PduComplete, Reassembler, ReassemblyMode, RxError, SegmentUnit,
    Segmenter,
};
pub use slab::{CellRef, CellSlab};
pub use stripe::{SkewConfig, StripedLink};
pub use switch::{Switch, SwitchSpec};
pub use traffic::{TrafficModel, TrafficSource};
pub use vci::{Vci, VciTable};
