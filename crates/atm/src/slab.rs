//! Slab arena for in-flight cells.
//!
//! The paper's central software lesson (§2.5, §4) is that per-cell work —
//! copies, allocations, bookkeeping — caps delivered bandwidth long before
//! the link does. The simulator used to embody the same pathology: every
//! 53-byte cell travelled the stripe → switch → rx path as an owned
//! [`Cell`] that was cloned at each hand-off. [`CellSlab`] replaces that
//! with arena semantics: cells live in slab slots and move through the
//! pipeline as copyable 4-byte [`CellRef`] handles. Freed slots go on a
//! free list and are recycled for subsequent inserts, so a steady-state
//! run allocates a bounded working set no matter how many cells it pushes.
//!
//! The slab is observability-friendly: `cells.slab_recycled` counts every
//! insert satisfied from the free list (proof that recycling, not fresh
//! allocation, is carrying the steady state), and `cells.slab_high_water`
//! records the peak number of live slots.

use crate::cell::Cell;
use osiris_sim::obs::{Counter, Gauge};
use osiris_sim::Probe;

/// A copyable handle to a cell parked in a [`CellSlab`].
///
/// Handles are move tokens, not borrows: whoever holds the `CellRef` owns
/// the slot, and the slot stays live until [`CellSlab::remove`] (or
/// [`CellSlab::free`]) consumes the handle. The type is deliberately tiny
/// (4 bytes) so events that carry cells — e.g. the testbed's
/// `CellArrival` — stay small and cheap to shuffle through the event
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellRef(u32);

impl CellRef {
    /// The raw slot index (diagnostics only).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A free-list slab of [`Cell`]s addressed by [`CellRef`] handles.
///
/// Not a general-purpose allocator: it is single-threaded like the rest of
/// the simulator, panics on use-after-free (that is always a model bug,
/// exactly like the kernel's causality assert), and never shrinks — the
/// working set of a run is its high-water mark.
#[derive(Debug, Default)]
pub struct CellSlab {
    slots: Vec<Option<Cell>>,
    free: Vec<u32>,
    recycled: Counter,
    high_water: Gauge,
}

impl CellSlab {
    /// An empty slab with detached (unregistered) instrumentation.
    pub fn new() -> CellSlab {
        CellSlab::default()
    }

    /// Registers the slab's counters under `probe` (conventionally the
    /// registry's `cells` scope): `slab_recycled` and `slab_high_water`.
    /// Existing totals carry over.
    pub fn attach_probe(&mut self, probe: &Probe) {
        let recycled = probe.counter("slab_recycled");
        recycled.add(self.recycled.get());
        self.recycled = recycled;
        let high_water = probe.gauge("slab_high_water");
        high_water.set(self.high_water.get());
        self.high_water = high_water;
    }

    /// Parks a cell, preferring a recycled slot off the free list.
    pub fn insert(&mut self, cell: Cell) -> CellRef {
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.slots[idx as usize].is_none());
            self.slots[idx as usize] = Some(cell);
            self.recycled.incr();
            CellRef(idx)
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Some(cell));
            self.high_water.set(self.slots.len() as f64);
            CellRef(idx)
        }
    }

    /// Takes the cell out, freeing the slot for recycling.
    ///
    /// # Panics
    /// Panics on a stale handle (double-remove) — a model bug.
    pub fn remove(&mut self, r: CellRef) -> Cell {
        let cell = self.slots[r.0 as usize]
            .take()
            .expect("CellRef used after free");
        self.free.push(r.0);
        cell
    }

    /// Drops the cell without reading it (e.g. a dropped/unroutable cell).
    pub fn free(&mut self, r: CellRef) {
        self.remove(r);
    }

    /// Borrows the cell behind a live handle.
    ///
    /// # Panics
    /// Panics on a stale handle.
    pub fn get(&self, r: CellRef) -> &Cell {
        self.slots[r.0 as usize]
            .as_ref()
            .expect("CellRef used after free")
    }

    /// Mutably borrows the cell behind a live handle.
    ///
    /// # Panics
    /// Panics on a stale handle.
    pub fn get_mut(&mut self, r: CellRef) -> &mut Cell {
        self.slots[r.0 as usize]
            .as_mut()
            .expect("CellRef used after free")
    }

    /// Number of live (parked) cells.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no cells are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (the high-water working set).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts from the free list so far (the recycling counter's value).
    pub fn recycled(&self) -> u64 {
        self.recycled.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vci::Vci;
    use osiris_sim::Registry;

    fn cell(seq: u16) -> Cell {
        Cell::data(Vci(5), seq, &[seq as u8; 4])
    }

    #[test]
    fn insert_get_remove_round_trips() {
        let mut slab = CellSlab::new();
        let a = slab.insert(cell(1));
        let b = slab.insert(cell(2));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).aal.seq, 1);
        assert_eq!(slab.get(b).aal.seq, 2);
        let out = slab.remove(a);
        assert_eq!(out.aal.seq, 1);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(b).aal.seq, 2);
    }

    #[test]
    fn freed_slots_are_recycled_and_counted() {
        let reg = Registry::new();
        let mut slab = CellSlab::new();
        slab.attach_probe(&reg.probe("cells"));
        let a = slab.insert(cell(1));
        slab.free(a);
        let b = slab.insert(cell(2));
        // Same physical slot, fresh contents.
        assert_eq!(a.index(), b.index());
        assert_eq!(slab.get(b).aal.seq, 2);
        assert_eq!(slab.recycled(), 1);
        assert_eq!(slab.capacity(), 1, "steady state must not grow the slab");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cells.slab_recycled"), 1);
        assert_eq!(snap.gauge("cells.slab_high_water"), 1.0);
    }

    #[test]
    fn steady_state_traffic_reuses_a_bounded_working_set() {
        let mut slab = CellSlab::new();
        // 32 in flight at a time, 100 generations.
        let mut live = Vec::new();
        for gen in 0..100u16 {
            for i in 0..32u16 {
                live.push(slab.insert(cell(gen * 32 + i)));
            }
            for r in live.drain(..) {
                slab.remove(r);
            }
        }
        assert_eq!(slab.capacity(), 32);
        assert_eq!(slab.recycled(), 99 * 32);
        assert!(slab.is_empty());
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut slab = CellSlab::new();
        let r = slab.insert(cell(9));
        slab.get_mut(r).header.last_cell = true;
        assert!(slab.get(r).header.last_cell);
    }

    #[test]
    #[should_panic(expected = "CellRef used after free")]
    fn use_after_free_panics() {
        let mut slab = CellSlab::new();
        let r = slab.insert(cell(1));
        slab.remove(r);
        let _ = slab.get(r);
    }
}
