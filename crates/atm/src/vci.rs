//! Virtual circuit identifiers, treated as an abundant resource.
//!
//! §3.1: "we treat VCIs as a fairly abundant resource; each of the
//! potentially hundreds of paths (connections) on a given host is bound to
//! a VCI for the duration of the path". The table below is the board-side
//! structure the receive processor consults to make its early
//! demultiplexing decision: VCI → path identifier.

use std::collections::HashMap;

/// A virtual circuit identifier (16 bits on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vci(pub u16);

/// Board-resident VCI → path binding table with free-VCI allocation.
#[derive(Debug, Clone)]
pub struct VciTable {
    bindings: HashMap<Vci, u32>,
    next: u16,
    limit: u16,
}

impl VciTable {
    /// A table that allocates VCIs from `[first, limit)`. VCIs below
    /// `first` are reserved (VCI 0 is never used, mirroring ATM practice).
    pub fn new(first: u16, limit: u16) -> Self {
        assert!(first > 0 && first < limit);
        VciTable {
            bindings: HashMap::new(),
            next: first,
            limit,
        }
    }

    /// Binds a fresh VCI to `path`. Returns `None` when the space is
    /// exhausted (which the abundant-resource regime assumes never happens
    /// in practice).
    pub fn bind_fresh(&mut self, path: u32) -> Option<Vci> {
        // Linear probe from `next`, skipping bound VCIs freed out of order.
        let span = self.limit - self.next;
        let _ = span;
        let mut probe = self.next;
        loop {
            if probe >= self.limit {
                return None;
            }
            let vci = Vci(probe);
            probe += 1;
            if !self.bindings.contains_key(&vci) {
                self.next = probe;
                self.bindings.insert(vci, path);
                return Some(vci);
            }
        }
    }

    /// Binds a specific VCI (used by the passive side of a connection).
    ///
    /// Returns `false` if the VCI was already bound to a different path.
    pub fn bind(&mut self, vci: Vci, path: u32) -> bool {
        match self.bindings.get(&vci) {
            Some(&p) if p != path => false,
            _ => {
                self.bindings.insert(vci, path);
                true
            }
        }
    }

    /// The early-demultiplexing lookup: which path owns this VCI?
    pub fn lookup(&self, vci: Vci) -> Option<u32> {
        self.bindings.get(&vci).copied()
    }

    /// Releases a binding (connection teardown).
    pub fn unbind(&mut self, vci: Vci) {
        self.bindings.remove(&vci);
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vcis_are_distinct() {
        let mut t = VciTable::new(32, 1024);
        let a = t.bind_fresh(1).unwrap();
        let b = t.bind_fresh(2).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.lookup(a), Some(1));
        assert_eq!(t.lookup(b), Some(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn hundreds_of_paths_fit() {
        // The paper's regime: hundreds of connections, each with a VCI.
        let mut t = VciTable::new(32, 1024);
        for path in 0..500 {
            assert!(t.bind_fresh(path).is_some(), "path {path} failed");
        }
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut t = VciTable::new(1, 4);
        assert!(t.bind_fresh(0).is_some());
        assert!(t.bind_fresh(1).is_some());
        assert!(t.bind_fresh(2).is_some());
        assert!(t.bind_fresh(3).is_none());
    }

    #[test]
    fn unbind_frees_for_explicit_bind() {
        let mut t = VciTable::new(1, 4);
        let v = t.bind_fresh(7).unwrap();
        t.unbind(v);
        assert_eq!(t.lookup(v), None);
        assert!(t.bind(v, 8));
        assert_eq!(t.lookup(v), Some(8));
    }

    #[test]
    fn bind_conflict_rejected() {
        let mut t = VciTable::new(1, 100);
        assert!(t.bind(Vci(50), 1));
        assert!(
            !t.bind(Vci(50), 2),
            "rebinding to a different path must fail"
        );
        assert!(t.bind(Vci(50), 1), "idempotent rebind is fine");
    }

    #[test]
    fn lookup_unknown_is_none() {
        let t = VciTable::new(1, 100);
        assert_eq!(t.lookup(Vci(99)), None);
        assert!(t.is_empty());
    }
}
