//! A single physical link lane.
//!
//! OSIRIS reaches 622 Mbps by grouping four 155 Mbps channels (§2.6). Each
//! lane serialises cells at line rate, adds a propagation delay, a fixed
//! per-lane offset (the "multiplexing equipment" skew source the authors
//! could not remove), and a per-cell queueing jitter (the switch-port skew
//! source). Cells on one lane **never reorder relative to each other** —
//! the delivery-time clamp below is the model's statement of the per-link
//! FIFO property that §2.6's skew-handling strategies depend on.

use osiris_sim::obs::{Counter, Probe};
use osiris_sim::{FifoResource, SimDuration, SimTime};

use crate::cell::CELL_BYTES_ON_WIRE;

/// Physical parameters of one lane.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Line rate in bits per second (SONET STS-3c: 155.52 Mbps).
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
}

impl LinkSpec {
    /// The paper's per-lane channel: 155.52 Mbps, back-to-back boards
    /// (negligible propagation — 100 ns of fibre).
    pub fn sts3c_back_to_back() -> Self {
        LinkSpec {
            rate_bps: 155_520_000,
            propagation: SimDuration::from_ns(100),
        }
    }

    /// Time to serialise one 53-byte cell at line rate.
    pub fn cell_time(&self) -> SimDuration {
        // bits * 1e12 / rate, with 128-bit intermediate for exactness.
        let bits = CELL_BYTES_ON_WIRE as u128 * 8;
        SimDuration::from_ps((bits * 1_000_000_000_000u128 / self.rate_bps as u128) as u64)
    }
}

/// One lane: serialisation + delays + per-lane FIFO guarantee.
#[derive(Debug)]
pub struct LinkLane {
    spec: LinkSpec,
    tx: FifoResource,
    /// Fixed extra delay (multiplexing-equipment skew).
    pub offset: SimDuration,
    last_arrival: SimTime,
    cells_sent: Counter,
}

impl LinkLane {
    /// A lane with the given fixed skew offset and a detached counter.
    pub fn new(spec: LinkSpec, offset: SimDuration) -> Self {
        LinkLane::with_probe(spec, offset, &Probe::detached())
    }

    /// A lane publishing `<scope>.cells_sent` through `probe`.
    pub fn with_probe(spec: LinkSpec, offset: SimDuration, probe: &Probe) -> Self {
        LinkLane {
            spec,
            tx: FifoResource::new("link-lane"),
            offset,
            last_arrival: SimTime::ZERO,
            cells_sent: probe.counter("cells_sent"),
        }
    }

    /// Sends one cell at `now` with additional queueing `jitter`; returns
    /// its arrival time at the far end. Arrivals are clamped to be
    /// non-decreasing: a lane is a FIFO, whatever the jitter.
    pub fn send(&mut self, now: SimTime, jitter: SimDuration) -> SimTime {
        let g = self.tx.acquire(now, self.spec.cell_time());
        let mut arrival = g.finish + self.spec.propagation + self.offset + jitter;
        if arrival < self.last_arrival {
            arrival = self.last_arrival;
        }
        self.last_arrival = arrival;
        self.cells_sent.incr();
        arrival
    }

    /// Cells sent over this lane's lifetime.
    pub fn cells_sent(&self) -> u64 {
        self.cells_sent.get()
    }

    /// When the lane's transmitter next goes idle.
    pub fn tx_free_at(&self) -> SimTime {
        self.tx.free_at()
    }

    /// The lane's physical parameters.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_time_matches_line_rate() {
        let spec = LinkSpec::sts3c_back_to_back();
        // 53 B * 8 / 155.52 Mbps = 2.7263 us.
        let t = spec.cell_time();
        assert!((t.as_us_f64() - 2.7263).abs() < 0.001, "{t}");
    }

    #[test]
    fn back_to_back_cells_serialise() {
        let spec = LinkSpec::sts3c_back_to_back();
        let mut lane = LinkLane::new(spec, SimDuration::ZERO);
        let a1 = lane.send(SimTime::ZERO, SimDuration::ZERO);
        let a2 = lane.send(SimTime::ZERO, SimDuration::ZERO);
        assert_eq!(a2.since(a1), spec.cell_time());
        assert_eq!(lane.cells_sent(), 2);
    }

    #[test]
    fn offset_delays_every_cell() {
        let spec = LinkSpec::sts3c_back_to_back();
        let mut a = LinkLane::new(spec, SimDuration::ZERO);
        let mut b = LinkLane::new(spec, SimDuration::from_us(10));
        let ta = a.send(SimTime::ZERO, SimDuration::ZERO);
        let tb = b.send(SimTime::ZERO, SimDuration::ZERO);
        assert_eq!(tb.since(ta), SimDuration::from_us(10));
    }

    #[test]
    fn jitter_never_reorders_a_lane() {
        let spec = LinkSpec::sts3c_back_to_back();
        let mut lane = LinkLane::new(spec, SimDuration::ZERO);
        // First cell gets huge jitter; second gets none. The second must
        // NOT overtake (per-link FIFO — the property §2.6 relies on).
        let a1 = lane.send(SimTime::ZERO, SimDuration::from_ms(1));
        let a2 = lane.send(SimTime::ZERO, SimDuration::ZERO);
        assert!(a2 >= a1, "lane must be FIFO: {a2} < {a1}");
    }

    #[test]
    fn idle_lane_resumes_at_now() {
        let spec = LinkSpec::sts3c_back_to_back();
        let mut lane = LinkLane::new(spec, SimDuration::ZERO);
        lane.send(SimTime::ZERO, SimDuration::ZERO);
        let late = SimTime::from_ms(5);
        let a = lane.send(late, SimDuration::ZERO);
        assert_eq!(a, late + spec.cell_time() + spec.propagation);
    }
}
