//! Cross-module memory scenarios: allocator fragmentation feeding VM
//! translation feeding DMA planning inputs — the §2.2 pipeline end to end
//! — plus cache/sg-map interactions.

use osiris_mem::{
    AddressSpace, AllocPolicy, BusAddr, CacheSpec, DataCache, FrameAllocator, PhysAddr, PhysBuffer,
    PhysMemory, SgMap,
};

#[test]
fn fragmented_message_buffer_counts_match_the_paper() {
    // §2.2: "a PDU with a data portion of length n pages usually occupies
    // n + 2 physical buffers" — n+1 data buffers (unaligned start) plus
    // one header buffer.
    let mem = PhysMemory::new(512 * 4096, 4096);
    let mut alloc = FrameAllocator::new(&mem, AllocPolicy::Scattered, 77);
    let mut asp = AddressSpace::new(4096);

    // A 16 KB data portion starting mid-page (the typical case).
    let region = asp.alloc_and_map(5 * 4096, &mut alloc).unwrap();
    let data_start = region.base.offset(2048);
    let data_bufs = asp.translate(data_start, 16 * 1024).unwrap();
    // 16 KB from offset 2048 touches 5 pages; scattered frames almost
    // never coalesce, so 5 buffers (n + 1 with n = 4).
    assert_eq!(data_bufs.len(), 5, "{data_bufs:?}");

    // The header lives in its own (kernel slab) page: +1 buffer = n + 2.
    let header = asp.alloc_and_map(64, &mut alloc).unwrap();
    let header_bufs = asp.translate(header.base, 24).unwrap();
    assert_eq!(header_bufs.len(), 1);
    assert_eq!(data_bufs.len() + header_bufs.len(), 4 + 2);
}

#[test]
fn sequential_boot_time_allocation_would_coalesce() {
    // The contrast case: a fresh machine hands out contiguous frames and
    // the same message is one buffer.
    let mem = PhysMemory::new(512 * 4096, 4096);
    let mut alloc = FrameAllocator::new(&mem, AllocPolicy::Sequential, 0);
    let mut asp = AddressSpace::new(4096);
    let region = asp.alloc_and_map(5 * 4096, &mut alloc).unwrap();
    let bufs = asp.translate(region.base.offset(2048), 16 * 1024).unwrap();
    assert_eq!(bufs.len(), 1);
}

#[test]
fn sgmap_makes_a_scattered_message_bus_contiguous() {
    let mem = PhysMemory::new(512 * 4096, 4096);
    let mut alloc = FrameAllocator::new(&mem, AllocPolicy::Scattered, 13);
    let mut asp = AddressSpace::new(4096);
    let region = asp.alloc_and_map(4 * 4096, &mut alloc).unwrap();
    let bufs = asp.translate(region.base, 4 * 4096).unwrap();
    assert!(bufs.len() > 1, "need fragmentation for this test");

    let mut map = SgMap::new(64, 4096);
    let bus = map.map_fragments(&bufs).unwrap();
    // The DMA engine sees one contiguous run even though physical pages
    // are scattered: each fragment's bus range follows the previous.
    let mut expect = bus[0].0;
    for (ba, pb) in bus.iter().zip(&bufs) {
        assert_eq!(ba.0, expect);
        expect += pb.len as u64;
        // And translation inverts back to the true physical address.
        assert_eq!(map.translate(*ba).unwrap(), pb.addr);
    }
    // Entry loads = pages covered (the §2.2 cost that does not go away).
    let pages: u64 = bufs
        .iter()
        .map(|b| (b.addr.0 + b.len as u64 - 1) / 4096 - b.addr.0 / 4096 + 1)
        .sum();
    assert_eq!(map.loads(), pages);
}

#[test]
fn dma_through_the_map_lands_in_the_right_frames() {
    // Simulate the receive path with virtual DMA: the board writes at bus
    // addresses, the data shows up in the scattered physical frames.
    let mut mem = PhysMemory::new(64 * 4096, 4096);
    let mut cache = DataCache::new(CacheSpec::dec_3000_600());
    let mut map = SgMap::new(16, 4096);
    let frags = [
        PhysBuffer::new(PhysAddr(9 * 4096), 4096),
        PhysBuffer::new(PhysAddr(3 * 4096), 4096),
    ];
    let bus = map.map_fragments(&frags).unwrap();

    // 8 KB arrives as one bus-contiguous stream, cell by cell — and each
    // transaction stops at page boundaries, exactly the §2.5.2 rule (a
    // straddling write would land the tail in the wrong frame, which is
    // why the hardware rule exists).
    let payload: Vec<u8> = (0..8192).map(|i| (i % 249) as u8).collect();
    let mut off = 0usize;
    while off < payload.len() {
        let cell_end = (off + 44).min(payload.len());
        let mut pos = off;
        while pos < cell_end {
            let bus_addr = bus[0].0 + pos as u64;
            let to_page_end = 4096 - (bus_addr % 4096) as usize;
            let take = (cell_end - pos).min(to_page_end);
            let pa = map.translate(BusAddr(bus_addr)).unwrap();
            cache.dma_write(&mut mem, pa, &payload[pos..pos + take]);
            pos += take;
        }
        off = cell_end;
    }
    assert_eq!(mem.read(frags[0].addr, 4096), &payload[..4096]);
    assert_eq!(mem.read(frags[1].addr, 4096), &payload[4096..]);
}

#[test]
fn cache_aliasing_with_buffer_recycling_is_how_staleness_happens() {
    // The §2.3 risk spelled out in memory terms: a small cache plus a
    // large buffer rotation means recycled buffers alias old lines only
    // after the whole rotation — which normal traffic evicts first.
    let spec = CacheSpec {
        size: 8 * 1024,
        line_size: 16,
        coherent_dma: false,
    };
    let mut cache = DataCache::new(spec);
    let mut mem = PhysMemory::new(64 * 4096, 4096);

    // Read buffer 0 (cached), then stream enough other buffers through
    // the CPU to exceed the cache.
    mem.fill(PhysAddr(0), 4096, 0xAA);
    let mut buf = vec![0u8; 4096];
    cache.read(&mem, PhysAddr(0), &mut buf);
    for i in 1..4u64 {
        cache.read(&mem, PhysAddr(i * 4096), &mut buf); // 12 KB > 8 KB cache
    }
    // DMA recycles buffer 0 with new contents.
    cache.dma_write(&mut mem, PhysAddr(0), &vec![0xBBu8; 4096]);
    // The old lines were evicted by the rotation: the read is fresh
    // without any invalidation — the paper's argument for laziness.
    let acc = cache.read(&mem, PhysAddr(0), &mut buf);
    assert_eq!(
        acc.stale_bytes, 0,
        "rotation must have evicted the stale lines"
    );
    assert_eq!(buf, vec![0xBBu8; 4096]);
}

#[test]
fn too_small_a_rotation_does_go_stale() {
    // The converse: if the driver rotated buffers inside the cache's
    // footprint, staleness would be routine — why §2.3 needs the 64-buffer
    // rotation (and why lazy invalidation is not a free lunch in general).
    let spec = CacheSpec {
        size: 64 * 1024,
        line_size: 16,
        coherent_dma: false,
    };
    let mut cache = DataCache::new(spec);
    let mut mem = PhysMemory::new(64 * 4096, 4096);
    mem.fill(PhysAddr(0), 4096, 0x11);
    let mut buf = vec![0u8; 4096];
    cache.read(&mem, PhysAddr(0), &mut buf);
    // Tiny rotation: only one other buffer touched; cache keeps buffer 0.
    cache.read(&mem, PhysAddr(4096), &mut buf);
    cache.dma_write(&mut mem, PhysAddr(0), &vec![0x22u8; 4096]);
    let acc = cache.read(&mem, PhysAddr(0), &mut buf);
    assert_eq!(acc.stale_bytes, 4096, "small rotation leaves stale lines");
    assert_eq!(buf, vec![0x11u8; 4096], "and the CPU sees the old message");
}
