//! # osiris-mem — host memory substrate
//!
//! Models the parts of a 1994 DEC workstation that the OSIRIS paper's
//! software fights with:
//!
//! * [`phys`] — physical memory with **real byte contents** and a frame
//!   allocator whose fragmentation policy reproduces §2.2 (contiguous
//!   virtual pages are generally *not* contiguous physically).
//! * [`buffer`] — physical buffer descriptors (`{addr, len}`), the unit of
//!   data exchanged between the host driver and the on-board processors.
//! * [`cache`] — a direct-mapped data cache with per-line data copies. On a
//!   machine without DMA coherence (DECstation 5000/200) a CPU read after a
//!   DMA write returns the **actually stale** bytes, which is what makes the
//!   lazy-invalidation scheme of §2.3 testable end to end.
//! * [`bus`] — the TURBOchannel cost model: 40 ns cycles, 32-bit words,
//!   13-cycle DMA-read / 8-cycle DMA-write overheads (§2.5.1), plus the two
//!   memory topologies the paper contrasts: everything-on-the-bus
//!   (5000/200) versus a crossbar with coherent DMA (3000/600).
//! * [`vm`] — per-domain virtual address spaces, page tables, translation
//!   of virtual ranges into physical buffer lists, and page wiring state
//!   (§2.4).
//! * [`sgmap`] — the virtual-address-DMA alternative §2.2 closes on: a
//!   hardware scatter/gather map whose per-page entry loads carry the
//!   fragmentation cost instead of the descriptor list.

pub mod buffer;
pub mod bus;
pub mod cache;
pub mod phys;
pub mod sgmap;
pub mod vm;

pub use buffer::PhysBuffer;
pub use bus::{BusSpec, MemTopology, MemorySystem};
pub use cache::{CacheAccess, CacheSpec, DataCache};
pub use phys::{AllocPolicy, FrameAllocator, PhysAddr, PhysMemory};
pub use sgmap::{BusAddr, SgError, SgMap};
pub use vm::{AddressSpace, MapError, VirtAddr, VirtRegion};
