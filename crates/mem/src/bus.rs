//! TURBOchannel and memory-system cost model.
//!
//! §2.5.1 gives the constants this module is built from: the TURBOchannel
//! moves one 32-bit word per 40 ns cycle (800 Mbps peak) and a DMA
//! transaction pays a fixed overhead of **13 cycles for reads** (board ←
//! host memory, the transmit direction) and **8 cycles for writes** (board
//! → host memory, the receive direction). Hence the paper's ceilings:
//!
//! * 44-byte (11-word) transfers: tx 11/(11+13)·800 = 367 Mbps,
//!   rx 11/(11+8)·800 = 463 Mbps;
//! * 88-byte (22-word) transfers: tx 503 Mbps, rx 587 Mbps.
//!
//! The module also models the *topology* difference that separates
//! Figures 2 and 3:
//!
//! * [`MemTopology::SharedBus`] (DECstation 5000/200): every memory
//!   transaction — DMA, cache fill, write-through — occupies the one bus,
//!   so CPU activity steals DMA bandwidth and vice versa.
//! * [`MemTopology::Crossbar`] (DEC 3000/600): DMA and CPU/memory traffic
//!   proceed concurrently; CPU fills run on a separate memory port.

use osiris_sim::obs::{Counter, Probe};
use osiris_sim::resource::Grant;
use osiris_sim::{Clock, FifoResource, SimDuration, SimTime};

/// How the CPU, memory and I/O bus are interconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemTopology {
    /// One shared path: CPU memory traffic and DMA serialise (5000/200).
    SharedBus,
    /// Buffered crossbar: CPU memory traffic bypasses the I/O bus (3000/600).
    Crossbar,
}

/// Cost constants for one machine's bus and memory system.
#[derive(Debug, Clone, Copy)]
pub struct BusSpec {
    /// I/O bus clock (TURBOchannel: 25 MHz, 40 ns cycles).
    pub clock: Clock,
    /// Bus word size in bytes (TURBOchannel: 4).
    pub word_bytes: u64,
    /// Fixed cycles before a DMA read (board reads host memory; transmit).
    pub dma_read_overhead_cycles: u64,
    /// Fixed cycles before a DMA write (board writes host memory; receive).
    pub dma_write_overhead_cycles: u64,
    /// Cycles per word for programmed-I/O reads from board memory
    /// ("accesses to the dual-port memory across the TURBOchannel are
    /// expensive" — single-word reads stall the CPU for the full round trip).
    pub pio_read_cycles_per_word: u64,
    /// Cycles per word for programmed-I/O writes (write buffers help).
    pub pio_write_cycles_per_word: u64,
    /// Interconnect topology.
    pub topology: MemTopology,
    /// Fixed nanoseconds to start a CPU↔memory transaction (row access,
    /// arbitration).
    pub mem_access_overhead_ns: u64,
    /// Nanoseconds per 32-bit word of CPU↔memory data movement.
    pub mem_ns_per_word: u64,
}

impl BusSpec {
    /// DECstation 5000/200 constants (§2.5.1, §2.7, reference \[15\]).
    pub fn ds5000_200() -> Self {
        BusSpec {
            clock: Clock::from_mhz(25),
            word_bytes: 4,
            dma_read_overhead_cycles: 13,
            dma_write_overhead_cycles: 8,
            pio_read_cycles_per_word: 15,
            pio_write_cycles_per_word: 3,
            topology: MemTopology::SharedBus,
            // One-word cache lines: every miss is its own transaction.
            // ~280 ns/word ⇒ ≈ 80–110 Mbps CPU read bandwidth once the
            // checksum loop's own cycles are added (§4: "80 Mbps").
            mem_access_overhead_ns: 160,
            mem_ns_per_word: 120,
        }
    }

    /// DEC 3000/600 constants: same TURBOchannel, crossbar memory.
    pub fn dec3000_600() -> Self {
        BusSpec {
            clock: Clock::from_mhz(25),
            word_bytes: 4,
            dma_read_overhead_cycles: 13,
            dma_write_overhead_cycles: 8,
            pio_read_cycles_per_word: 15,
            pio_write_cycles_per_word: 3,
            topology: MemTopology::Crossbar,
            // 32-byte lines amortise the overhead across 8 words.
            mem_access_overhead_ns: 120,
            mem_ns_per_word: 25,
        }
    }

    /// Words needed for `bytes` (rounded up).
    pub fn words(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.word_bytes)
    }

    /// Duration of a DMA read moving `bytes` (overhead + data).
    pub fn dma_read_time(&self, bytes: u64) -> SimDuration {
        self.clock
            .cycles(self.dma_read_overhead_cycles + self.words(bytes))
    }

    /// Duration of a DMA write moving `bytes` (overhead + data).
    pub fn dma_write_time(&self, bytes: u64) -> SimDuration {
        self.clock
            .cycles(self.dma_write_overhead_cycles + self.words(bytes))
    }

    /// Duration of one CPU↔memory transaction of `bytes`.
    pub fn mem_access_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns(self.mem_access_overhead_ns + self.mem_ns_per_word * self.words(bytes))
    }

    /// Peak DMA throughput in Mbps for fixed-size transfers of `bytes` in
    /// the given direction — the paper's ceiling formula.
    pub fn dma_ceiling_mbps(&self, bytes: u64, write_to_host: bool) -> f64 {
        let t = if write_to_host {
            self.dma_write_time(bytes)
        } else {
            self.dma_read_time(bytes)
        };
        t.mbps_for_bytes(bytes)
    }
}

/// The arbitrated bus plus (on crossbar machines) a separate memory port.
///
/// Word traffic is published through `osiris-sim::obs` under the probe's
/// `bus` scope: `words` (every word moved), split exhaustively into
/// `dma_words` (board-mastered transfers) and `cpu_words` (CPU-driven
/// fills, write-backs and PIO) — the §2.5 accounting that report
/// consumers and the cross-layer consistency tests rely on.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    /// Cost constants.
    pub spec: BusSpec,
    bus: FifoResource,
    mem_port: FifoResource,
    c_words: Counter,
    c_dma_words: Counter,
    c_cpu_words: Counter,
    c_dma_transactions: Counter,
}

impl MemorySystem {
    /// A new, idle memory system with a detached probe (standalone use).
    pub fn new(spec: BusSpec) -> Self {
        MemorySystem::with_probe(spec, &Probe::detached())
    }

    /// A memory system publishing its counters under `<scope>.bus`.
    pub fn with_probe(spec: BusSpec, probe: &Probe) -> Self {
        let p = probe.scoped("bus");
        MemorySystem {
            spec,
            bus: FifoResource::new("turbochannel"),
            mem_port: FifoResource::new("mem-port"),
            c_words: p.counter("words"),
            c_dma_words: p.counter("dma_words"),
            c_cpu_words: p.counter("cpu_words"),
            c_dma_transactions: p.counter("dma_transactions"),
        }
    }

    #[inline]
    fn count_dma(&self, words: u64) {
        self.c_words.add(words);
        self.c_dma_words.add(words);
        self.c_dma_transactions.incr();
    }

    #[inline]
    fn count_cpu(&self, words: u64) {
        self.c_words.add(words);
        self.c_cpu_words.add(words);
    }

    /// DMA read of `bytes` from host memory (transmit direction).
    pub fn dma_read(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.count_dma(self.spec.words(bytes));
        self.bus.acquire(now, self.spec.dma_read_time(bytes))
    }

    /// DMA write of `bytes` to host memory (receive direction).
    pub fn dma_write(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.count_dma(self.spec.words(bytes));
        self.bus.acquire(now, self.spec.dma_write_time(bytes))
    }

    /// One CPU↔memory transaction (cache-line fill or write-back) of
    /// `bytes`. Routed over the bus on [`MemTopology::SharedBus`] machines,
    /// over the private memory port on crossbar machines.
    pub fn cpu_mem_access(&mut self, now: SimTime, bytes: u64) -> Grant {
        self.count_cpu(self.spec.words(bytes));
        let d = self.spec.mem_access_time(bytes);
        match self.spec.topology {
            MemTopology::SharedBus => self.bus.acquire(now, d),
            MemTopology::Crossbar => self.mem_port.acquire(now, d),
        }
    }

    /// `n` back-to-back CPU↔memory transactions of `bytes` each, reserved
    /// as one block (used for bulk fills where per-line events would be
    /// wasteful).
    pub fn cpu_mem_burst(&mut self, now: SimTime, n: u64, bytes: u64) -> Grant {
        self.count_cpu(n * self.spec.words(bytes));
        let d = self.spec.mem_access_time(bytes);
        let total = SimDuration::from_ps(d.as_ps() * n);
        match self.spec.topology {
            MemTopology::SharedBus => self.bus.acquire(now, total),
            MemTopology::Crossbar => self.mem_port.acquire(now, total),
        }
    }

    /// Programmed-I/O read of `words` words across the bus.
    pub fn pio_read(&mut self, now: SimTime, words: u64) -> Grant {
        self.count_cpu(words);
        let d = self
            .spec
            .clock
            .cycles(self.spec.pio_read_cycles_per_word * words);
        self.bus.acquire(now, d)
    }

    /// Programmed-I/O write of `words` words across the bus.
    pub fn pio_write(&mut self, now: SimTime, words: u64) -> Grant {
        self.count_cpu(words);
        let d = self
            .spec
            .clock
            .cycles(self.spec.pio_write_cycles_per_word * words);
        self.bus.acquire(now, d)
    }

    /// Reserves an arbitrary duration of bus time (software-generated
    /// memory traffic folded into fixed CPU costs; see
    /// `osiris-host::HostMachine::run_software`).
    pub fn pio_like_mem(&mut self, now: SimTime, d: SimDuration) -> Grant {
        self.bus.acquire(now, d)
    }

    /// Total 32-bit words moved (`dma_words + cpu_words`, always).
    pub fn words(&self) -> u64 {
        self.c_words.get()
    }

    /// Words moved by board-mastered DMA.
    pub fn dma_words(&self) -> u64 {
        self.c_dma_words.get()
    }

    /// Words moved by CPU-driven traffic (fills, write-backs, PIO).
    pub fn cpu_words(&self) -> u64 {
        self.c_cpu_words.get()
    }

    /// Number of DMA transactions (each pays the fixed overhead).
    pub fn dma_transactions(&self) -> u64 {
        self.c_dma_transactions.get()
    }

    /// The underlying bus resource (utilisation diagnostics).
    pub fn bus(&self) -> &FifoResource {
        &self.bus
    }

    /// The memory-port resource (crossbar machines; idle otherwise).
    pub fn mem_port(&self) -> &FifoResource {
        &self.mem_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dma_ceilings() {
        let spec = BusSpec::ds5000_200();
        // Single-cell (44 B): tx 367, rx 463 Mbps.
        assert!((spec.dma_ceiling_mbps(44, false) - 366.7).abs() < 1.0);
        assert!((spec.dma_ceiling_mbps(44, true) - 463.2).abs() < 1.0);
        // Double-cell (88 B): tx 503, rx 587 Mbps.
        assert!((spec.dma_ceiling_mbps(88, false) - 502.9).abs() < 1.0);
        assert!((spec.dma_ceiling_mbps(88, true) - 586.7).abs() < 1.0);
    }

    #[test]
    fn words_round_up() {
        let spec = BusSpec::ds5000_200();
        assert_eq!(spec.words(1), 1);
        assert_eq!(spec.words(4), 1);
        assert_eq!(spec.words(5), 2);
        assert_eq!(spec.words(44), 11);
    }

    #[test]
    fn shared_bus_serialises_dma_and_cpu() {
        let mut ms = MemorySystem::new(BusSpec::ds5000_200());
        let t0 = SimTime::ZERO;
        let g1 = ms.dma_write(t0, 44); // (8 + 11) * 40 ns = 760 ns
        assert_eq!(g1.finish, SimTime::from_ns(760));
        let g2 = ms.cpu_mem_access(t0, 4); // queues behind the DMA
        assert_eq!(g2.start, SimTime::from_ns(760));
        assert_eq!(g2.finish, SimTime::from_ns(760 + 160 + 120));
    }

    #[test]
    fn crossbar_lets_dma_and_cpu_overlap() {
        let mut ms = MemorySystem::new(BusSpec::dec3000_600());
        let t0 = SimTime::ZERO;
        let g1 = ms.dma_write(t0, 44);
        let g2 = ms.cpu_mem_access(t0, 32);
        // Both start immediately: independent resources.
        assert_eq!(g1.start, t0);
        assert_eq!(g2.start, t0);
    }

    #[test]
    fn pio_reads_are_expensive() {
        let mut ms = MemorySystem::new(BusSpec::ds5000_200());
        // 11 words at 15 cycles/word = 165 cycles = 6.6 us per 44 bytes:
        // ~53 Mbps, the paper's reason to prefer DMA on this machine.
        let g = ms.pio_read(SimTime::ZERO, 11);
        let mbps = g.finish.since(g.start).mbps_for_bytes(44);
        assert!(mbps < 60.0, "PIO should be slow, got {mbps}");
    }

    #[test]
    fn burst_reserves_n_transactions() {
        let mut ms = MemorySystem::new(BusSpec::ds5000_200());
        let one = ms.spec.mem_access_time(4);
        let g = ms.cpu_mem_burst(SimTime::ZERO, 10, 4);
        assert_eq!(g.finish.since(g.start).as_ps(), one.as_ps() * 10);
    }

    #[test]
    fn word_counters_split_exhaustively() {
        use osiris_sim::Registry;
        let reg = Registry::new();
        let mut ms = MemorySystem::with_probe(BusSpec::ds5000_200(), &reg.probe("node0"));
        let t0 = SimTime::ZERO;
        ms.dma_write(t0, 44); // 11 words
        ms.dma_read(t0, 88); // 22 words
        ms.cpu_mem_access(t0, 4); // 1 word
        ms.cpu_mem_burst(t0, 3, 4); // 3 words
        ms.pio_read(t0, 5);
        ms.pio_write(t0, 7);
        ms.pio_like_mem(t0, SimDuration::from_ns(100)); // duration only: no words
        assert_eq!(ms.dma_words(), 33);
        assert_eq!(ms.cpu_words(), 16);
        assert_eq!(ms.words(), ms.dma_words() + ms.cpu_words());
        assert_eq!(ms.dma_transactions(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("node0.bus.words"), 49);
        assert_eq!(snap.counter("node0.bus.dma_words"), 33);
        assert_eq!(snap.counter("node0.bus.cpu_words"), 16);
    }

    #[test]
    fn utilisation_tracks_busy_time() {
        let mut ms = MemorySystem::new(BusSpec::ds5000_200());
        ms.dma_write(SimTime::ZERO, 44);
        assert_eq!(ms.bus().total_busy(), SimDuration::from_ns(760));
        assert_eq!(ms.mem_port().total_busy(), SimDuration::ZERO);
    }
}
