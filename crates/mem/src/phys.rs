//! Physical memory and frame allocation.
//!
//! Memory holds real bytes: payloads, headers and checksums flow through it
//! end to end, so the test suite can verify data integrity through every
//! datapath (DMA, PIO, stale-cache recovery).
//!
//! The frame allocator is where §2.2 of the paper lives: on a long-running
//! system, physically contiguous frames are the exception, so a virtually
//! contiguous message usually maps to one physical buffer *per page*. The
//! allocator supports three policies so experiments can compare:
//!
//! * [`AllocPolicy::Scattered`] — steady-state fragmentation (default);
//!   frames come from a deterministically shuffled free list.
//! * [`AllocPolicy::Sequential`] — a freshly booted machine; frames are
//!   handed out in address order (adjacent allocations coalesce).
//! * [`AllocPolicy::BestEffortContiguous`] — the OS support the authors say
//!   they were "currently experimenting with": try to find a contiguous
//!   run, fall back to scattered frames.

use osiris_sim::SimRng;

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Byte offset addition.
    pub fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

/// Physical memory with real contents.
#[derive(Clone)]
pub struct PhysMemory {
    bytes: Vec<u8>,
    page_size: usize,
}

impl std::fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysMemory")
            .field("size", &self.bytes.len())
            .field("page_size", &self.page_size)
            .finish()
    }
}

impl PhysMemory {
    /// `size` bytes of zeroed memory with the given page size.
    ///
    /// # Panics
    /// Panics unless `page_size` is a power of two dividing `size`.
    pub fn new(size: usize, page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(
            size.is_multiple_of(page_size),
            "memory size must be page-aligned"
        );
        PhysMemory {
            bytes: vec![0; size],
            page_size,
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of page frames.
    pub fn frames(&self) -> usize {
        self.bytes.len() / self.page_size
    }

    /// Base address of frame `f`.
    pub fn frame_addr(&self, f: usize) -> PhysAddr {
        assert!(f < self.frames(), "frame {f} out of range");
        PhysAddr((f * self.page_size) as u64)
    }

    /// Frame containing `addr`.
    pub fn frame_of(&self, addr: PhysAddr) -> usize {
        (addr.0 as usize) / self.page_size
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Panics
    /// Panics on out-of-range access (a model bug, analogous to a bus error).
    pub fn read(&self, addr: PhysAddr, len: usize) -> &[u8] {
        let start = addr.0 as usize;
        &self.bytes[start..start + len]
    }

    /// Writes `data` at `addr`.
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        let start = addr.0 as usize;
        self.bytes[start..start + data.len()].copy_from_slice(data);
    }

    /// Fills `len` bytes at `addr` with `value`.
    pub fn fill(&mut self, addr: PhysAddr, len: usize, value: u8) {
        let start = addr.0 as usize;
        self.bytes[start..start + len].fill(value);
    }
}

/// Frame allocation policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Hand out frames in ascending address order (fresh machine).
    Sequential,
    /// Hand out frames from a shuffled free list (steady-state
    /// fragmentation — the common case the paper describes).
    Scattered,
    /// Search for a physically contiguous run first; fall back to scattered.
    BestEffortContiguous,
}

/// Allocates page frames from a [`PhysMemory`].
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    free: Vec<usize>,
    in_use: Vec<bool>,
    policy: AllocPolicy,
    page_size: usize,
    total_frames: usize,
    allocations: u64,
    contiguous_hits: u64,
}

impl FrameAllocator {
    /// An allocator over all frames of `mem` using `policy`. `seed` drives
    /// the deterministic shuffle used by [`AllocPolicy::Scattered`].
    pub fn new(mem: &PhysMemory, policy: AllocPolicy, seed: u64) -> Self {
        let n = mem.frames();
        let mut free: Vec<usize> = (0..n).collect();
        if matches!(
            policy,
            AllocPolicy::Scattered | AllocPolicy::BestEffortContiguous
        ) {
            let mut rng = SimRng::new(seed);
            rng.shuffle(&mut free);
        }
        // Pop from the back; reverse so Sequential pops ascending.
        free.reverse();
        FrameAllocator {
            free,
            in_use: vec![false; n],
            policy,
            page_size: mem.page_size(),
            total_frames: n,
            allocations: 0,
            contiguous_hits: 0,
        }
    }

    /// Current policy.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Number of free frames.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Allocates `n` frames. Returns frame indices in mapping order, or
    /// `None` if memory is exhausted.
    pub fn alloc(&mut self, n: usize) -> Option<Vec<usize>> {
        if n == 0 {
            return Some(Vec::new());
        }
        if self.free.len() < n {
            return None;
        }
        self.allocations += 1;
        if self.policy == AllocPolicy::BestEffortContiguous {
            if let Some(run) = self.find_contiguous_run(n) {
                self.contiguous_hits += 1;
                for &f in &run {
                    self.take(f);
                }
                return Some(run);
            }
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let f = self.free.pop().expect("checked above");
            self.in_use[f] = true;
            out.push(f);
        }
        Some(out)
    }

    /// Allocates `n` *physically contiguous* frames regardless of policy,
    /// or `None` if no run exists. Used for the driver's receive-buffer
    /// pool (the paper's 16 KB buffers), which traditional systems carve
    /// out of a statically allocated contiguous region (§2.2).
    pub fn alloc_contiguous(&mut self, n: usize) -> Option<Vec<usize>> {
        if n == 0 {
            return Some(Vec::new());
        }
        let run = self.find_contiguous_run(n)?;
        self.allocations += 1;
        self.contiguous_hits += 1;
        for &f in &run {
            self.take(f);
        }
        Some(run)
    }

    /// Returns frames to the free pool.
    ///
    /// # Panics
    /// Panics on double free.
    pub fn free(&mut self, frames: &[usize]) {
        for &f in frames {
            assert!(self.in_use[f], "double free of frame {f}");
            self.in_use[f] = false;
            self.free.push(f);
        }
    }

    /// Fraction of allocations that found a contiguous run (diagnostics for
    /// the best-effort policy).
    pub fn contiguous_hit_rate(&self) -> f64 {
        if self.allocations == 0 {
            0.0
        } else {
            self.contiguous_hits as f64 / self.allocations as f64
        }
    }

    /// Page size the allocator was built with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    fn take(&mut self, frame: usize) {
        let pos = self
            .free
            .iter()
            .position(|&f| f == frame)
            .expect("frame not free");
        self.free.swap_remove(pos);
        self.in_use[frame] = true;
    }

    fn find_contiguous_run(&self, n: usize) -> Option<Vec<usize>> {
        // O(frames) scan over an in-use bitmap; fine at simulation scale.
        let mut run_start = 0;
        let mut run_len = 0;
        for f in 0..self.total_frames {
            if self.in_use[f] {
                run_len = 0;
            } else {
                if run_len == 0 {
                    run_start = f;
                }
                run_len += 1;
                if run_len == n {
                    return Some((run_start..run_start + n).collect());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMemory {
        PhysMemory::new(64 * 4096, 4096)
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = mem();
        m.write(PhysAddr(100), b"osiris");
        assert_eq!(m.read(PhysAddr(100), 6), b"osiris");
        m.fill(PhysAddr(200), 4, 0xAB);
        assert_eq!(m.read(PhysAddr(200), 4), &[0xAB; 4]);
    }

    #[test]
    fn frame_geometry() {
        let m = mem();
        assert_eq!(m.frames(), 64);
        assert_eq!(m.frame_addr(3), PhysAddr(3 * 4096));
        assert_eq!(m.frame_of(PhysAddr(3 * 4096 + 17)), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let m = mem();
        let _ = m.read(PhysAddr((64 * 4096) as u64 - 2), 4);
    }

    #[test]
    fn sequential_alloc_is_contiguous() {
        let m = mem();
        let mut a = FrameAllocator::new(&m, AllocPolicy::Sequential, 0);
        let frames = a.alloc(4).unwrap();
        assert_eq!(frames, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scattered_alloc_is_noncontiguous() {
        let m = mem();
        let mut a = FrameAllocator::new(&m, AllocPolicy::Scattered, 42);
        let frames = a.alloc(8).unwrap();
        // With 64 shuffled frames the odds of 8 sequential ones are nil.
        let contiguous = frames.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(
            !contiguous,
            "scattered policy produced a contiguous run: {frames:?}"
        );
    }

    #[test]
    fn scattered_is_deterministic_per_seed() {
        let m = mem();
        let mut a = FrameAllocator::new(&m, AllocPolicy::Scattered, 7);
        let mut b = FrameAllocator::new(&m, AllocPolicy::Scattered, 7);
        assert_eq!(a.alloc(16), b.alloc(16));
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let m = mem();
        let mut a = FrameAllocator::new(&m, AllocPolicy::Sequential, 0);
        assert!(a.alloc(64).is_some());
        assert_eq!(a.alloc(1), None);
    }

    #[test]
    fn free_recycles_frames() {
        let m = mem();
        let mut a = FrameAllocator::new(&m, AllocPolicy::Sequential, 0);
        let f = a.alloc(64).unwrap();
        a.free(&f[..10]);
        assert_eq!(a.free_frames(), 10);
        assert!(a.alloc(10).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let m = mem();
        let mut a = FrameAllocator::new(&m, AllocPolicy::Sequential, 0);
        let f = a.alloc(2).unwrap();
        a.free(&f);
        a.free(&f);
    }

    #[test]
    fn best_effort_finds_contiguous_when_available() {
        let m = mem();
        let mut a = FrameAllocator::new(&m, AllocPolicy::BestEffortContiguous, 3);
        let frames = a.alloc(4).unwrap();
        assert!(frames.windows(2).all(|w| w[1] == w[0] + 1), "{frames:?}");
        assert_eq!(a.contiguous_hit_rate(), 1.0);
    }

    #[test]
    fn best_effort_falls_back_when_fragmented() {
        let m = mem();
        let mut a = FrameAllocator::new(&m, AllocPolicy::BestEffortContiguous, 3);
        // Chessboard the memory: allocate everything, free every other frame.
        let all = a.alloc(64).unwrap();
        let evens: Vec<usize> = (0..64).filter(|f| f % 2 == 0).collect();
        // `all` is a permutation of 0..64; free exactly the even frames.
        let to_free: Vec<usize> = all.iter().copied().filter(|f| evens.contains(f)).collect();
        a.free(&to_free);
        // No 2-frame contiguous run exists, but allocation still succeeds.
        let frames = a.alloc(2).unwrap();
        assert!(frames.windows(2).any(|w| w[1] != w[0] + 1) || frames.len() < 2);
    }

    #[test]
    fn alloc_zero_is_empty() {
        let m = mem();
        let mut a = FrameAllocator::new(&m, AllocPolicy::Sequential, 0);
        assert_eq!(a.alloc(0), Some(vec![]));
    }
}
