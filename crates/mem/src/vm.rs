//! Virtual memory: per-domain address spaces, translation, wiring.
//!
//! §2.2: "contiguous virtual memory pages used to store a PDU are generally
//! not contiguous in the physical address space" — this module is where
//! that fact is manufactured (via the frame allocator's policy) and
//! observed (via [`AddressSpace::translate`], which turns a virtual range
//! into the physical buffer list the driver must hand the board).
//!
//! §2.4: pages handed to the board for DMA must be **wired** (pinned).
//! Wiring state lives here; the *cost* of the two wiring services the
//! paper compares (Mach's heavyweight `vm_wire` vs. the low-level pmap
//! path) is modelled in `osiris-host`.

use std::collections::BTreeMap;

use crate::buffer::{coalesce, PhysBuffer};
use crate::phys::{FrameAllocator, PhysAddr};

/// A virtual byte address (per address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Byte offset addition.
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

/// A mapped virtual range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtRegion {
    /// First byte (always page-aligned as returned by `alloc_and_map`).
    pub base: VirtAddr,
    /// Length in bytes.
    pub len: u64,
}

/// Errors from mapping and translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// Frame allocator exhausted.
    OutOfMemory,
    /// A page in the requested range is not mapped.
    Unmapped,
    /// Zero-length or overflowing range.
    BadRange,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::OutOfMemory => write!(f, "out of physical memory"),
            MapError::Unmapped => write!(f, "address not mapped"),
            MapError::BadRange => write!(f, "bad virtual range"),
        }
    }
}

impl std::error::Error for MapError {}

#[derive(Debug, Clone, Copy)]
struct PageEntry {
    frame: usize,
    wired: bool,
}

/// One protection domain's address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    page_size: u64,
    table: BTreeMap<u64, PageEntry>,
    next_vpn: u64,
}

impl AddressSpace {
    /// An empty address space over pages of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size.is_power_of_two());
        // Start mappings above page 16 so null-ish addresses stay unmapped.
        AddressSpace {
            page_size: page_size as u64,
            table: BTreeMap::new(),
            next_vpn: 16,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Allocates frames for `len` bytes and maps them at a fresh
    /// page-aligned virtual base.
    pub fn alloc_and_map(
        &mut self,
        len: u64,
        alloc: &mut FrameAllocator,
    ) -> Result<VirtRegion, MapError> {
        if len == 0 {
            return Err(MapError::BadRange);
        }
        let pages = len.div_ceil(self.page_size);
        let frames = alloc.alloc(pages as usize).ok_or(MapError::OutOfMemory)?;
        Ok(self.map_frames(&frames, len))
    }

    /// Maps the given frames (in order) at a fresh virtual base; the region
    /// reports `len` bytes (the final page may be partially used).
    pub fn map_frames(&mut self, frames: &[usize], len: u64) -> VirtRegion {
        let base_vpn = self.next_vpn;
        for (i, &f) in frames.iter().enumerate() {
            self.table.insert(
                base_vpn + i as u64,
                PageEntry {
                    frame: f,
                    wired: false,
                },
            );
        }
        // Leave a one-page guard gap between regions.
        self.next_vpn = base_vpn + frames.len() as u64 + 1;
        VirtRegion {
            base: VirtAddr(base_vpn * self.page_size),
            len,
        }
    }

    /// Unmaps a region and returns its frames to `alloc`.
    pub fn unmap(&mut self, region: VirtRegion, alloc: &mut FrameAllocator) {
        let frames = self.frames_of(region).expect("unmap of unmapped region");
        let first = region.base.0 / self.page_size;
        let pages = region.len.div_ceil(self.page_size);
        for vpn in first..first + pages {
            self.table.remove(&vpn);
        }
        alloc.free(&frames);
    }

    /// The frames backing a region, in virtual order.
    pub fn frames_of(&self, region: VirtRegion) -> Result<Vec<usize>, MapError> {
        if region.len == 0 {
            return Err(MapError::BadRange);
        }
        let first = region.base.0 / self.page_size;
        let pages = region.len.div_ceil(self.page_size);
        let mut out = Vec::with_capacity(pages as usize);
        for vpn in first..first + pages {
            out.push(self.table.get(&vpn).ok_or(MapError::Unmapped)?.frame);
        }
        Ok(out)
    }

    /// Translates a single virtual address.
    pub fn translate_addr(&self, va: VirtAddr) -> Result<PhysAddr, MapError> {
        let vpn = va.0 / self.page_size;
        let off = va.0 % self.page_size;
        let e = self.table.get(&vpn).ok_or(MapError::Unmapped)?;
        Ok(PhysAddr(e.frame as u64 * self.page_size + off))
    }

    /// Translates `[va, va+len)` into a list of physical buffers, merging
    /// physically adjacent pages. The length of the returned list is the
    /// §2.2 "physical buffer count" that drives per-PDU driver cost.
    pub fn translate(&self, va: VirtAddr, len: u64) -> Result<Vec<PhysBuffer>, MapError> {
        if len == 0 {
            return Err(MapError::BadRange);
        }
        let mut bufs = Vec::new();
        let mut cur = va.0;
        let end = va.0.checked_add(len).ok_or(MapError::BadRange)?;
        while cur < end {
            let page_end = (cur / self.page_size + 1) * self.page_size;
            let take = page_end.min(end) - cur;
            let pa = self.translate_addr(VirtAddr(cur))?;
            bufs.push(PhysBuffer::new(pa, take as u32));
            cur += take;
        }
        Ok(coalesce(&bufs))
    }

    /// Wires all pages overlapping the range; returns how many pages
    /// changed state (the wiring service is charged per page).
    pub fn wire(&mut self, va: VirtAddr, len: u64) -> Result<u64, MapError> {
        self.set_wired(va, len, true)
    }

    /// Unwires all pages overlapping the range; returns pages changed.
    pub fn unwire(&mut self, va: VirtAddr, len: u64) -> Result<u64, MapError> {
        self.set_wired(va, len, false)
    }

    /// True if every page of the range is wired.
    pub fn is_wired(&self, va: VirtAddr, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let first = va.0 / self.page_size;
        let last = (va.0 + len - 1) / self.page_size;
        (first..=last).all(|vpn| self.table.get(&vpn).is_some_and(|e| e.wired))
    }

    /// Number of mapped pages (diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    fn set_wired(&mut self, va: VirtAddr, len: u64, wired: bool) -> Result<u64, MapError> {
        if len == 0 {
            return Err(MapError::BadRange);
        }
        let first = va.0 / self.page_size;
        let last = (va.0 + len - 1) / self.page_size;
        let mut changed = 0;
        for vpn in first..=last {
            let e = self.table.get_mut(&vpn).ok_or(MapError::Unmapped)?;
            if e.wired != wired {
                e.wired = wired;
                changed += 1;
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::{AllocPolicy, PhysMemory};

    fn setup(policy: AllocPolicy) -> (AddressSpace, FrameAllocator, PhysMemory) {
        let mem = PhysMemory::new(256 * 4096, 4096);
        let alloc = FrameAllocator::new(&mem, policy, 42);
        (AddressSpace::new(4096), alloc, mem)
    }

    #[test]
    fn map_translate_roundtrip() {
        let (mut asp, mut alloc, _m) = setup(AllocPolicy::Sequential);
        let r = asp.alloc_and_map(10_000, &mut alloc).unwrap();
        assert_eq!(r.len, 10_000);
        let pa = asp.translate_addr(r.base.offset(5000)).unwrap();
        // Sequential frames 0..3 mapped in order: offset is preserved.
        assert_eq!(pa, PhysAddr(5000));
    }

    #[test]
    fn sequential_frames_coalesce_to_one_buffer() {
        let (mut asp, mut alloc, _m) = setup(AllocPolicy::Sequential);
        let r = asp.alloc_and_map(16 * 1024, &mut alloc).unwrap();
        let bufs = asp.translate(r.base, r.len).unwrap();
        assert_eq!(bufs.len(), 1, "contiguous frames must merge: {bufs:?}");
        assert_eq!(bufs[0].len, 16 * 1024);
    }

    #[test]
    fn scattered_frames_yield_one_buffer_per_page() {
        let (mut asp, mut alloc, _m) = setup(AllocPolicy::Scattered);
        let r = asp.alloc_and_map(16 * 1024, &mut alloc).unwrap();
        let bufs = asp.translate(r.base, r.len).unwrap();
        // §2.2: a PDU of n pages usually occupies n physical buffers.
        assert_eq!(bufs.len(), 4, "{bufs:?}");
        assert_eq!(bufs.iter().map(|b| b.len as u64).sum::<u64>(), 16 * 1024);
    }

    #[test]
    fn unaligned_range_spans_extra_page() {
        let (mut asp, mut alloc, _m) = setup(AllocPolicy::Scattered);
        let r = asp.alloc_and_map(3 * 4096, &mut alloc).unwrap();
        // 4096 bytes starting 100 bytes into a page touch two pages.
        let bufs = asp.translate(r.base.offset(100), 4096).unwrap();
        assert_eq!(bufs.len(), 2);
        assert_eq!(bufs[0].len, 4096 - 100);
        assert_eq!(bufs[1].len, 100);
    }

    #[test]
    fn translate_unmapped_fails() {
        let (asp, _alloc, _m) = setup(AllocPolicy::Sequential);
        assert_eq!(
            asp.translate(VirtAddr(0), 10).unwrap_err(),
            MapError::Unmapped
        );
    }

    #[test]
    fn zero_len_is_bad_range() {
        let (asp, _alloc, _m) = setup(AllocPolicy::Sequential);
        assert_eq!(
            asp.translate(VirtAddr(0), 0).unwrap_err(),
            MapError::BadRange
        );
    }

    #[test]
    fn unmap_frees_frames() {
        let (mut asp, mut alloc, _m) = setup(AllocPolicy::Scattered);
        let before = alloc.free_frames();
        let r = asp.alloc_and_map(8 * 4096, &mut alloc).unwrap();
        assert_eq!(alloc.free_frames(), before - 8);
        asp.unmap(r, &mut alloc);
        assert_eq!(alloc.free_frames(), before);
        assert!(asp.translate(r.base, 1).is_err());
    }

    #[test]
    fn wiring_state_machine() {
        let (mut asp, mut alloc, _m) = setup(AllocPolicy::Sequential);
        let r = asp.alloc_and_map(2 * 4096, &mut alloc).unwrap();
        assert!(!asp.is_wired(r.base, r.len));
        assert_eq!(asp.wire(r.base, r.len).unwrap(), 2);
        assert!(asp.is_wired(r.base, r.len));
        // Re-wiring is idempotent: zero pages change.
        assert_eq!(asp.wire(r.base, r.len).unwrap(), 0);
        assert_eq!(asp.unwire(r.base, 4096).unwrap(), 1);
        assert!(!asp.is_wired(r.base, r.len));
        assert!(asp.is_wired(r.base.offset(4096), 4096));
    }

    #[test]
    fn regions_are_separated_by_guard_pages() {
        let (mut asp, mut alloc, _m) = setup(AllocPolicy::Sequential);
        let a = asp.alloc_and_map(4096, &mut alloc).unwrap();
        let b = asp.alloc_and_map(4096, &mut alloc).unwrap();
        assert!(b.base.0 >= a.base.0 + 2 * 4096, "guard gap expected");
        // The guard page itself is unmapped.
        assert!(asp.translate_addr(VirtAddr(a.base.0 + 4096)).is_err());
    }

    #[test]
    fn frames_of_matches_mapping_order() {
        let (mut asp, mut alloc, _m) = setup(AllocPolicy::Scattered);
        let r = asp.alloc_and_map(3 * 4096, &mut alloc).unwrap();
        let frames = asp.frames_of(r).unwrap();
        assert_eq!(frames.len(), 3);
        for (i, f) in frames.iter().enumerate() {
            let pa = asp.translate_addr(r.base.offset(i as u64 * 4096)).unwrap();
            assert_eq!(pa.0 / 4096, *f as u64);
        }
    }
}
