//! Physical buffers — the unit of host/board data exchange.
//!
//! §2.2: "The unit of data exchanged between host driver software and
//! on-board processors is a physical buffer — a set of memory locations
//! with contiguous physical addresses." Per-PDU driver cost grows with the
//! number of physical buffers, so the library tracks and minimises them.

use crate::phys::PhysAddr;

/// A physically contiguous region `[addr, addr + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysBuffer {
    /// First byte.
    pub addr: PhysAddr,
    /// Length in bytes (never zero in a well-formed buffer list).
    pub len: u32,
}

impl PhysBuffer {
    /// Constructs a buffer.
    pub fn new(addr: PhysAddr, len: u32) -> Self {
        PhysBuffer { addr, len }
    }

    /// One past the last byte.
    pub fn end(&self) -> PhysAddr {
        self.addr.offset(self.len as u64)
    }

    /// True if `other` begins exactly where `self` ends.
    pub fn abuts(&self, other: &PhysBuffer) -> bool {
        self.end() == other.addr
    }

    /// Splits at `at` bytes, returning `(head, tail)`.
    ///
    /// # Panics
    /// Panics unless `0 < at < len` (degenerate splits are caller bugs).
    pub fn split_at(&self, at: u32) -> (PhysBuffer, PhysBuffer) {
        assert!(
            at > 0 && at < self.len,
            "split point {at} outside (0, {})",
            self.len
        );
        (
            PhysBuffer::new(self.addr, at),
            PhysBuffer::new(self.addr.offset(at as u64), self.len - at),
        )
    }
}

/// Merges physically adjacent buffers, preserving order.
///
/// The driver applies this before handing buffer lists to the board: with a
/// fragmented frame allocator it rarely helps (the §2.2 problem); with
/// contiguous allocation it collapses a message to one descriptor.
pub fn coalesce(buffers: &[PhysBuffer]) -> Vec<PhysBuffer> {
    let mut out: Vec<PhysBuffer> = Vec::with_capacity(buffers.len());
    for b in buffers {
        if b.len == 0 {
            continue;
        }
        match out.last_mut() {
            Some(last) if last.abuts(b) => last.len += b.len,
            _ => out.push(*b),
        }
    }
    out
}

/// Total byte length of a buffer list.
pub fn total_len(buffers: &[PhysBuffer]) -> u64 {
    buffers.iter().map(|b| b.len as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(addr: u64, len: u32) -> PhysBuffer {
        PhysBuffer::new(PhysAddr(addr), len)
    }

    #[test]
    fn end_and_abuts() {
        let x = b(0, 100);
        let y = b(100, 50);
        let z = b(151, 50);
        assert_eq!(x.end(), PhysAddr(100));
        assert!(x.abuts(&y));
        assert!(!y.abuts(&z));
    }

    #[test]
    fn split_preserves_bytes() {
        let x = b(4096, 1000);
        let (h, t) = x.split_at(300);
        assert_eq!(h, b(4096, 300));
        assert_eq!(t, b(4396, 700));
        assert_eq!(h.len + t.len, x.len);
        assert!(h.abuts(&t));
    }

    #[test]
    #[should_panic]
    fn split_at_zero_panics() {
        b(0, 10).split_at(0);
    }

    #[test]
    #[should_panic]
    fn split_at_len_panics() {
        b(0, 10).split_at(10);
    }

    #[test]
    fn coalesce_merges_adjacent() {
        let list = vec![b(0, 4096), b(4096, 4096), b(16384, 100)];
        let merged = coalesce(&list);
        assert_eq!(merged, vec![b(0, 8192), b(16384, 100)]);
        assert_eq!(total_len(&merged), total_len(&list));
    }

    #[test]
    fn coalesce_keeps_order_and_gaps() {
        // Adjacent in address space but out of order must NOT merge:
        // buffer order is wire order.
        let list = vec![b(4096, 4096), b(0, 4096)];
        assert_eq!(coalesce(&list).len(), 2);
    }

    #[test]
    fn coalesce_drops_empty_buffers() {
        let list = vec![b(0, 0), b(0, 10), b(10, 0), b(10, 5)];
        assert_eq!(coalesce(&list), vec![b(0, 15)]);
    }

    #[test]
    fn coalesce_chain_of_many() {
        let list: Vec<PhysBuffer> = (0..16).map(|i| b(i * 256, 256)).collect();
        assert_eq!(coalesce(&list), vec![b(0, 4096)]);
    }
}
