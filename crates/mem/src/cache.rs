//! Direct-mapped data cache with real per-line data copies.
//!
//! §2.3: the DECstation 5000/200 "does not guarantee a coherent view of
//! memory contents after a DMA transfer into main memory", so CPU reads may
//! return stale data unless the OS explicitly invalidates, at ~1 cycle per
//! 32-bit word. The DEC 3000/600 updates the cache during DMA.
//!
//! This model keeps an actual copy of each cached line's bytes. After an
//! incoherent DMA write, a hit on an un-invalidated line returns the **old**
//! bytes — exactly the failure the paper's lazy-invalidation scheme detects
//! via checksums and repairs by invalidating and re-reading.
//!
//! # Example
//!
//! ```
//! use osiris_mem::{CacheSpec, DataCache, PhysAddr, PhysMemory};
//!
//! let mut cache = DataCache::new(CacheSpec::decstation_5000_200());
//! let mut mem = PhysMemory::new(1 << 16, 4096);
//! mem.write(PhysAddr(0), &[1u8; 8]);
//! let mut buf = [0u8; 8];
//! cache.read(&mem, PhysAddr(0), &mut buf); // now cached
//!
//! // DMA overwrites memory behind the (incoherent) cache's back...
//! cache.dma_write(&mut mem, PhysAddr(0), &[2u8; 8]);
//! let acc = cache.read(&mem, PhysAddr(0), &mut buf);
//! assert_eq!(buf, [1u8; 8]);       // genuinely stale bytes!
//! assert_eq!(acc.stale_bytes, 8);
//!
//! // ...until the driver invalidates (§2.3).
//! cache.invalidate(PhysAddr(0), 8);
//! cache.read(&mem, PhysAddr(0), &mut buf);
//! assert_eq!(buf, [2u8; 8]);
//! ```

use crate::phys::{PhysAddr, PhysMemory};

/// Cache geometry and cost constants.
#[derive(Debug, Clone, Copy)]
pub struct CacheSpec {
    /// Total data capacity in bytes (DECstation 5000/200: 64 KB).
    pub size: usize,
    /// Line size in bytes (R3000 D-cache: 4; Alpha: 32).
    pub line_size: usize,
    /// True if DMA writes update cached lines (DEC 3000/600), false if DMA
    /// bypasses the cache leaving stale lines (DECstation 5000/200).
    pub coherent_dma: bool,
}

impl CacheSpec {
    /// DECstation 5000/200: 64 KB direct-mapped, one-word lines,
    /// no DMA coherence.
    pub fn decstation_5000_200() -> Self {
        CacheSpec {
            size: 64 * 1024,
            line_size: 4,
            coherent_dma: false,
        }
    }

    /// DEC 3000/600: 2 MB board cache modelled as the coherence-relevant
    /// level — 32-byte lines, updated by DMA.
    pub fn dec_3000_600() -> Self {
        CacheSpec {
            size: 2 * 1024 * 1024,
            line_size: 32,
            coherent_dma: true,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.size / self.line_size
    }

    /// 32-bit words per line.
    pub fn words_per_line(&self) -> usize {
        self.line_size / 4
    }
}

/// Result of a CPU read through the cache; the host converts these counts
/// into CPU cycles and bus transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheAccess {
    /// Bytes served from already-resident lines.
    pub hit_bytes: u64,
    /// Lines filled from memory (each fill is a bus transaction on the
    /// 5000/200, a crossbar memory access on the 3000/600).
    pub missed_lines: u64,
    /// Bytes served from resident lines whose contents no longer match
    /// memory (stale after incoherent DMA). Diagnostic only — the returned
    /// data really is the stale copy.
    pub stale_bytes: u64,
}

impl CacheAccess {
    /// Accumulates another access.
    pub fn merge(&mut self, other: CacheAccess) {
        self.hit_bytes += other.hit_bytes;
        self.missed_lines += other.missed_lines;
        self.stale_bytes += other.stale_bytes;
    }
}

/// A direct-mapped, write-through, no-write-allocate data cache.
#[derive(Clone)]
pub struct DataCache {
    spec: CacheSpec,
    /// Per-line tag: the line number (`addr / line_size`) resident in that
    /// slot, or `None` for an invalid line.
    tags: Vec<Option<u64>>,
    /// Per-line data copies, `spec.size` bytes.
    data: Vec<u8>,
}

impl std::fmt::Debug for DataCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataCache")
            .field("size", &self.spec.size)
            .field("line_size", &self.spec.line_size)
            .field("coherent_dma", &self.spec.coherent_dma)
            .finish()
    }
}

impl DataCache {
    /// An empty (all-invalid) cache.
    pub fn new(spec: CacheSpec) -> Self {
        assert!(spec.line_size.is_power_of_two() && spec.line_size >= 4);
        assert!(spec.size.is_multiple_of(spec.line_size));
        DataCache {
            tags: vec![None; spec.lines()],
            data: vec![0; spec.size],
            spec,
        }
    }

    /// The cache's geometry.
    pub fn spec(&self) -> &CacheSpec {
        &self.spec
    }

    fn line_no(&self, addr: PhysAddr) -> u64 {
        addr.0 / self.spec.line_size as u64
    }

    fn slot_of_line(&self, line_no: u64) -> usize {
        (line_no % self.spec.lines() as u64) as usize
    }

    /// True if the line containing `addr` is resident.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let ln = self.line_no(addr);
        self.tags[self.slot_of_line(ln)] == Some(ln)
    }

    /// CPU read of `buf.len()` bytes at `addr` through the cache.
    ///
    /// Hit bytes come from the cache's own copy (possibly stale); misses
    /// fill whole lines from `mem`. Returns hit/miss/stale accounting.
    pub fn read(&mut self, mem: &PhysMemory, addr: PhysAddr, buf: &mut [u8]) -> CacheAccess {
        let mut acc = CacheAccess::default();
        let ls = self.spec.line_size as u64;
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr.0 + pos as u64;
            let ln = self.line_no(PhysAddr(a));
            let line_base = ln * ls;
            let off_in_line = (a - line_base) as usize;
            let take = ((ls as usize) - off_in_line).min(buf.len() - pos);
            let slot = self.slot_of_line(ln);
            let slot_base = slot * self.spec.line_size;

            if self.tags[slot] == Some(ln) {
                // Hit: serve from the cache copy.
                let src = &self.data[slot_base + off_in_line..slot_base + off_in_line + take];
                buf[pos..pos + take].copy_from_slice(src);
                acc.hit_bytes += take as u64;
                let truth = mem.read(PhysAddr(line_base + off_in_line as u64), take);
                if truth != src {
                    acc.stale_bytes += take as u64;
                }
            } else {
                // Miss: fill the whole line from memory, evicting the
                // previous occupant of the slot.
                let line_bytes = mem.read(PhysAddr(line_base), self.spec.line_size);
                self.data[slot_base..slot_base + self.spec.line_size].copy_from_slice(line_bytes);
                self.tags[slot] = Some(ln);
                buf[pos..pos + take].copy_from_slice(
                    &self.data[slot_base + off_in_line..slot_base + off_in_line + take],
                );
                acc.missed_lines += 1;
            }
            pos += take;
        }
        acc
    }

    /// CPU write of `data` at `addr`: write-through (memory always updated),
    /// no-write-allocate (only resident lines are refreshed).
    pub fn write(&mut self, mem: &mut PhysMemory, addr: PhysAddr, data: &[u8]) {
        mem.write(addr, data);
        self.refresh_resident(addr, data);
    }

    /// A DMA write to main memory. On a coherent machine resident lines are
    /// updated; on an incoherent one they are left stale — subsequent reads
    /// return the old bytes until [`DataCache::invalidate`] runs.
    pub fn dma_write(&mut self, mem: &mut PhysMemory, addr: PhysAddr, data: &[u8]) {
        mem.write(addr, data);
        if self.spec.coherent_dma {
            self.refresh_resident(addr, data);
        }
    }

    /// Invalidates all lines overlapping `[addr, addr+len)`. Returns the
    /// number of 32-bit words invalidated — the paper's cost metric
    /// (~1 CPU cycle per word on the 5000/200).
    pub fn invalidate(&mut self, addr: PhysAddr, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let ls = self.spec.line_size as u64;
        let first = addr.0 / ls;
        let last = (addr.0 + len as u64 - 1) / ls;
        let mut words = 0;
        for ln in first..=last {
            let slot = self.slot_of_line(ln);
            if self.tags[slot] == Some(ln) {
                self.tags[slot] = None;
            }
            // The invalidate instruction pays per word regardless of
            // whether the line was resident.
            words += self.spec.words_per_line() as u64;
        }
        words
    }

    /// Invalidates the entire cache (the DECstation's cache-swap trick).
    pub fn invalidate_all(&mut self) {
        self.tags.fill(None);
    }

    /// Number of currently resident lines (diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|t| t.is_some()).count()
    }

    fn refresh_resident(&mut self, addr: PhysAddr, data: &[u8]) {
        let ls = self.spec.line_size as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let a = addr.0 + pos as u64;
            let ln = a / ls;
            let line_base = ln * ls;
            let off = (a - line_base) as usize;
            let take = (self.spec.line_size - off).min(data.len() - pos);
            let slot = self.slot_of_line(ln);
            if self.tags[slot] == Some(ln) {
                let base = slot * self.spec.line_size;
                self.data[base + off..base + off + take].copy_from_slice(&data[pos..pos + take]);
            }
            pos += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(coherent: bool) -> (DataCache, PhysMemory) {
        let spec = CacheSpec {
            size: 1024,
            line_size: 16,
            coherent_dma: coherent,
        };
        (DataCache::new(spec), PhysMemory::new(16 * 4096, 4096))
    }

    #[test]
    fn miss_then_hit() {
        let (mut c, mut m) = setup(false);
        m.write(PhysAddr(64), b"hello world!!!!!");
        let mut buf = [0u8; 16];
        let a1 = c.read(&m, PhysAddr(64), &mut buf);
        assert_eq!(a1.missed_lines, 1);
        assert_eq!(a1.hit_bytes, 0);
        assert_eq!(&buf, b"hello world!!!!!");
        let a2 = c.read(&m, PhysAddr(64), &mut buf);
        assert_eq!(a2.missed_lines, 0);
        assert_eq!(a2.hit_bytes, 16);
        assert_eq!(a2.stale_bytes, 0);
    }

    #[test]
    fn unaligned_read_spans_lines() {
        let (mut c, mut m) = setup(false);
        m.write(PhysAddr(0), &(0u8..64).collect::<Vec<_>>());
        let mut buf = [0u8; 20];
        let a = c.read(&m, PhysAddr(10), &mut buf);
        // Bytes 10..30 span lines [0,16) and [16,32).
        assert_eq!(a.missed_lines, 2);
        assert_eq!(buf.to_vec(), (10u8..30).collect::<Vec<_>>());
    }

    #[test]
    fn incoherent_dma_leaves_stale_data() {
        let (mut c, mut m) = setup(false);
        m.write(PhysAddr(128), &[1u8; 16]);
        let mut buf = [0u8; 16];
        c.read(&m, PhysAddr(128), &mut buf); // cache the old contents
        c.dma_write(&mut m, PhysAddr(128), &[2u8; 16]);
        let a = c.read(&m, PhysAddr(128), &mut buf);
        // The read *hits* and returns the OLD bytes — genuine staleness.
        assert_eq!(buf, [1u8; 16]);
        assert_eq!(a.stale_bytes, 16);
        // After invalidation the fresh data is fetched.
        let words = c.invalidate(PhysAddr(128), 16);
        assert_eq!(words, 4);
        let a = c.read(&m, PhysAddr(128), &mut buf);
        assert_eq!(buf, [2u8; 16]);
        assert_eq!(a.missed_lines, 1);
        assert_eq!(a.stale_bytes, 0);
    }

    #[test]
    fn coherent_dma_updates_cache() {
        let (mut c, mut m) = setup(true);
        m.write(PhysAddr(128), &[1u8; 16]);
        let mut buf = [0u8; 16];
        c.read(&m, PhysAddr(128), &mut buf);
        c.dma_write(&mut m, PhysAddr(128), &[2u8; 16]);
        let a = c.read(&m, PhysAddr(128), &mut buf);
        assert_eq!(buf, [2u8; 16]);
        assert_eq!(a.stale_bytes, 0);
        assert_eq!(a.hit_bytes, 16);
    }

    #[test]
    fn write_through_updates_memory_immediately() {
        let (mut c, mut m) = setup(false);
        c.write(&mut m, PhysAddr(500), b"data");
        assert_eq!(m.read(PhysAddr(500), 4), b"data");
    }

    #[test]
    fn write_refreshes_resident_line_only() {
        let (mut c, mut m) = setup(false);
        m.write(PhysAddr(0), &[7u8; 16]);
        let mut buf = [0u8; 16];
        c.read(&m, PhysAddr(0), &mut buf); // line resident
        c.write(&mut m, PhysAddr(4), &[9u8; 4]);
        let a = c.read(&m, PhysAddr(0), &mut buf);
        assert_eq!(a.hit_bytes, 16);
        assert_eq!(a.stale_bytes, 0, "write-through must keep cache in sync");
        assert_eq!(&buf[4..8], &[9u8; 4]);
    }

    #[test]
    fn eviction_by_aliasing_address() {
        // Cache is 1024 B with 16 B lines → addresses 1024 apart alias.
        let (mut c, mut m) = setup(false);
        m.write(PhysAddr(0), &[1u8; 16]);
        m.write(PhysAddr(1024), &[2u8; 16]);
        let mut buf = [0u8; 16];
        c.read(&m, PhysAddr(0), &mut buf);
        assert!(c.probe(PhysAddr(0)));
        c.read(&m, PhysAddr(1024), &mut buf);
        assert!(!c.probe(PhysAddr(0)), "aliasing read must evict");
        assert!(c.probe(PhysAddr(1024)));
        assert_eq!(buf, [2u8; 16]);
    }

    #[test]
    fn invalidate_cost_covers_nonresident_lines_too() {
        let (mut c, _m) = setup(false);
        // 64 bytes = 4 lines of 16 B = 16 words, resident or not.
        assert_eq!(c.invalidate(PhysAddr(0), 64), 16);
        assert_eq!(c.invalidate(PhysAddr(0), 0), 0);
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let (mut c, mut m) = setup(false);
        m.write(PhysAddr(0), &[3u8; 64]);
        let mut buf = [0u8; 64];
        c.read(&m, PhysAddr(0), &mut buf);
        assert!(c.resident_lines() > 0);
        c.invalidate_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn paper_spec_geometries() {
        let ds = CacheSpec::decstation_5000_200();
        assert_eq!(ds.lines(), 16384);
        assert_eq!(ds.words_per_line(), 1);
        assert!(!ds.coherent_dma);
        let alpha = CacheSpec::dec_3000_600();
        assert!(alpha.coherent_dma);
    }
}
