//! Virtual-address DMA via a scatter/gather map (§2.2, last paragraph).
//!
//! "Several modern workstations, such as the IBM RISC System/6000 and DEC
//! 3000 AXP Systems provide support for virtual address DMA through the
//! use of a hardware virtual-to-physical translation buffer
//! (scatter/gather map). Host driver software must set up the map to
//! contain appropriate mappings for all the fragments of a buffer before
//! a DMA transfer. When data is transferred directly from and to
//! application buffers, it may be necessary to update the map for each
//! individual message. As a result, physical buffer fragmentation is a
//! potential performance concern even when virtual DMA is available."
//!
//! The model: a bounded table of page-granular entries mapping *bus*
//! pages to physical frames. Loading an entry costs an I/O-register write
//! (charged by the caller per [`SgMap::PIO_WORDS_PER_ENTRY`]); a DMA
//! through the map needs every covered bus page resident. The punchline
//! the paper draws survives intact: scattered physical pages cost one map
//! update each, so §2.2's buffer-count arithmetic becomes map-update
//! arithmetic instead of descriptor arithmetic — it does not disappear.

use std::collections::HashMap;

use crate::buffer::PhysBuffer;
use crate::phys::PhysAddr;

/// A bus-visible DMA address produced by the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusAddr(pub u64);

/// Errors from map operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SgError {
    /// The map's entry table is full.
    MapFull,
    /// A translation touched an unmapped bus page.
    NotMapped,
}

impl std::fmt::Display for SgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgError::MapFull => write!(f, "scatter/gather map full"),
            SgError::NotMapped => write!(f, "bus page not mapped"),
        }
    }
}

impl std::error::Error for SgError {}

/// The hardware translation buffer.
#[derive(Debug)]
pub struct SgMap {
    page_size: u64,
    entries: usize,
    table: HashMap<u64, usize>, // bus page -> physical frame
    next_bus_page: u64,
    loads: u64,
    invalidations: u64,
}

impl SgMap {
    /// I/O-register words written per entry load (address + frame + valid
    /// bit packed into two words on the machines the paper cites).
    pub const PIO_WORDS_PER_ENTRY: u64 = 2;

    /// A map with `entries` slots over `page_size` pages.
    pub fn new(entries: usize, page_size: u64) -> Self {
        assert!(page_size.is_power_of_two());
        SgMap {
            page_size,
            entries,
            table: HashMap::new(),
            next_bus_page: 1, // bus page 0 stays invalid (catches null DMA)
            loads: 0,
            invalidations: 0,
        }
    }

    /// Free entry slots.
    pub fn free_entries(&self) -> usize {
        self.entries - self.table.len()
    }

    /// Entry loads performed (each costs [`Self::PIO_WORDS_PER_ENTRY`]
    /// I/O writes — the per-message map-update traffic the paper warns
    /// about).
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Entries invalidated.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Maps a buffer's physical pages into consecutive bus pages,
    /// returning the buffer's bus-contiguous base address. One entry load
    /// per covered physical page.
    pub fn map_buffer(&mut self, buf: PhysBuffer) -> Result<BusAddr, SgError> {
        let first = buf.addr.0 / self.page_size;
        let last = (buf.addr.0 + buf.len as u64 - 1) / self.page_size;
        let pages = (last - first + 1) as usize;
        if self.table.len() + pages > self.entries {
            return Err(SgError::MapFull);
        }
        let base_bus_page = self.next_bus_page;
        for (i, ppage) in (first..=last).enumerate() {
            self.table.insert(base_bus_page + i as u64, ppage as usize);
            self.loads += 1;
        }
        self.next_bus_page += pages as u64;
        Ok(BusAddr(
            base_bus_page * self.page_size + buf.addr.0 % self.page_size,
        ))
    }

    /// Maps a whole fragment list (one call per §2.2 "fragment of a
    /// buffer"), returning per-fragment bus addresses. Entry loads equal
    /// the total covered pages: the fragmentation cost in map currency.
    pub fn map_fragments(&mut self, bufs: &[PhysBuffer]) -> Result<Vec<BusAddr>, SgError> {
        bufs.iter().map(|&b| self.map_buffer(b)).collect()
    }

    /// Translates a bus address back to physical (what the DMA engine does
    /// per transaction).
    pub fn translate(&self, bus: BusAddr) -> Result<PhysAddr, SgError> {
        let page = bus.0 / self.page_size;
        let off = bus.0 % self.page_size;
        let frame = *self.table.get(&page).ok_or(SgError::NotMapped)?;
        Ok(PhysAddr(frame as u64 * self.page_size + off))
    }

    /// Invalidates every entry (the per-message teardown when application
    /// buffers change under a copy-free path).
    pub fn invalidate_all(&mut self) {
        self.invalidations += self.table.len() as u64;
        self.table.clear();
        self.next_bus_page = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(addr: u64, len: u32) -> PhysBuffer {
        PhysBuffer::new(PhysAddr(addr), len)
    }

    #[test]
    fn contiguous_buffer_maps_with_offset_preserved() {
        let mut m = SgMap::new(32, 4096);
        let bus = m.map_buffer(b(3 * 4096 + 100, 5000)).unwrap();
        assert_eq!(bus.0 % 4096, 100);
        // 100..5100 covers two physical pages → two entry loads.
        assert_eq!(m.loads(), 2);
        // Translation round-trips at both ends of the buffer.
        assert_eq!(m.translate(bus).unwrap(), PhysAddr(3 * 4096 + 100));
        let end = BusAddr(bus.0 + 4999);
        assert_eq!(m.translate(end).unwrap(), PhysAddr(3 * 4096 + 100 + 4999));
    }

    #[test]
    fn scattered_fragments_cost_one_load_per_page() {
        let mut m = SgMap::new(64, 4096);
        // A §2.2-style fragmented message: 4 scattered pages + a header.
        let frags = [
            b(9 * 4096, 64),
            b(2 * 4096, 4096),
            b(7 * 4096, 4096),
            b(4096, 4096),
            b(5 * 4096, 4096),
        ];
        let bus = m.map_fragments(&frags).unwrap();
        assert_eq!(bus.len(), 5);
        assert_eq!(
            m.loads(),
            5,
            "one map update per page: fragmentation persists"
        );
        for (addr, frag) in bus.iter().zip(&frags) {
            assert_eq!(m.translate(*addr).unwrap(), frag.addr);
        }
    }

    #[test]
    fn map_exhaustion_is_reported() {
        let mut m = SgMap::new(2, 4096);
        m.map_buffer(b(0, 4096)).unwrap();
        m.map_buffer(b(4096, 4096)).unwrap();
        assert_eq!(m.map_buffer(b(8192, 1)).unwrap_err(), SgError::MapFull);
        assert_eq!(m.free_entries(), 0);
    }

    #[test]
    fn unmapped_bus_page_faults() {
        let m = SgMap::new(8, 4096);
        assert_eq!(m.translate(BusAddr(0)).unwrap_err(), SgError::NotMapped);
        assert_eq!(
            m.translate(BusAddr(5 * 4096)).unwrap_err(),
            SgError::NotMapped
        );
    }

    #[test]
    fn invalidate_recycles_entries() {
        let mut m = SgMap::new(4, 4096);
        for i in 0..4u64 {
            m.map_buffer(b(i * 4096, 4096)).unwrap();
        }
        assert_eq!(m.free_entries(), 0);
        m.invalidate_all();
        assert_eq!(m.free_entries(), 4);
        assert_eq!(m.invalidations(), 4);
        assert!(m.map_buffer(b(0, 4096)).is_ok());
    }

    #[test]
    fn bus_space_is_contiguous_across_a_scattered_buffer() {
        // The whole point of the map: a physically scattered region looks
        // contiguous to the DMA engine.
        let mut m = SgMap::new(8, 4096);
        // Map three scattered pages as one "buffer list" of page pieces.
        let bus = m
            .map_fragments(&[b(6 * 4096, 4096), b(4096, 4096), b(3 * 4096, 4096)])
            .unwrap();
        // Consecutive fragments land on consecutive bus pages.
        assert_eq!(bus[1].0, bus[0].0 + 4096);
        assert_eq!(bus[2].0, bus[1].0 + 4096);
    }
}
