//! Virtual time.
//!
//! Time is tracked in integer **picoseconds** so that both clocks the paper
//! measures on divide without cumulative drift:
//!
//! * TURBOchannel / DECstation 5000/200 R3000 @ 25 MHz → 40 000 ps/cycle
//! * DEC 3000/600 Alpha @ 175 MHz → 5 714.28 ps/cycle (cycle *counts* are
//!   converted with 128-bit intermediate math, so n-cycle durations are
//!   exact to ±1 ps regardless of n)
//!
//! A `u64` of picoseconds covers ~213 days of virtual time; experiments run
//! for simulated milliseconds to seconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
const PS_PER_S: u64 = 1_000_000_000_000;

/// An instant in virtual time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant `ns` nanoseconds after the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Instant `us` microseconds after the epoch.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Instant `ms` milliseconds after the epoch.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    /// Instant `s` seconds after the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_S)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Time since the epoch in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Time since the epoch in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: negative duration"),
        )
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// `ps` picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    /// `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    /// `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    /// `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_S)
    }
    /// Fractional microseconds, rounded to the nearest picosecond.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(
            us >= 0.0 && us.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Throughput in megabits per second for `bytes` moved in this duration.
    ///
    /// Returns `f64::INFINITY` for a zero duration, matching the convention
    /// that an unmeasured instantaneous transfer has no meaningful rate.
    pub fn mbps_for_bytes(self, bytes: u64) -> f64 {
        if self.0 == 0 {
            return f64::INFINITY;
        }
        (bytes as f64 * 8.0) / self.as_secs_f64() / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

/// A fixed-frequency clock used to convert cycle counts to durations.
///
/// Conversion uses 128-bit intermediates: the duration of `n` cycles is
/// `n * 10^12 / hz` picoseconds rounded to nearest, so long cycle counts do
/// not accumulate per-cycle rounding error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    hz: u64,
}

impl Clock {
    /// A clock ticking `hz` times per second.
    ///
    /// # Panics
    /// Panics if `hz` is zero.
    pub const fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be non-zero");
        Clock { hz }
    }

    /// A clock ticking `mhz` million times per second.
    pub const fn from_mhz(mhz: u64) -> Self {
        Clock::from_hz(mhz * 1_000_000)
    }

    /// The clock frequency in hertz.
    pub const fn hz(self) -> u64 {
        self.hz
    }

    /// Duration of `n` clock cycles (rounded to the nearest picosecond).
    pub fn cycles(self, n: u64) -> SimDuration {
        let ps = (n as u128 * PS_PER_S as u128 + self.hz as u128 / 2) / self.hz as u128;
        SimDuration(u64::try_from(ps).expect("cycle count overflows SimDuration"))
    }

    /// Number of whole cycles that fit in `d` (rounded down).
    pub fn cycles_in(self, d: SimDuration) -> u64 {
        u64::try_from(d.0 as u128 * self.hz as u128 / PS_PER_S as u128).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(SimDuration::from_us(3).as_us_f64(), 3.0);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_ns(500);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_us(1);
        let b = SimTime::from_us(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_us(1));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn since_panics_on_negative() {
        let _ = SimTime::from_us(1).since(SimTime::from_us(2));
    }

    #[test]
    fn turbochannel_cycle_is_exact() {
        // 25 MHz: the paper's TURBOchannel cycle is exactly 40 ns.
        let tc = Clock::from_mhz(25);
        assert_eq!(tc.cycles(1), SimDuration::from_ns(40));
        assert_eq!(tc.cycles(1_000_000), SimDuration::from_ms(40));
    }

    #[test]
    fn alpha_cycles_do_not_drift() {
        // 175 MHz does not divide 10^12 evenly; verify bulk conversion is
        // exact to the picosecond rather than accumulating rounding error.
        let alpha = Clock::from_mhz(175);
        let d = alpha.cycles(175_000_000);
        assert_eq!(d, SimDuration::from_secs(1));
        // One cycle rounds to 5714 ps.
        assert_eq!(alpha.cycles(1).as_ps(), 5714);
        // And 7 cycles is exactly 40 ns (7/175MHz = 40ns).
        assert_eq!(alpha.cycles(7), SimDuration::from_ns(40));
    }

    #[test]
    fn cycles_in_inverts_cycles() {
        let c = Clock::from_mhz(25);
        for n in [0u64, 1, 13, 1000, 123_456] {
            assert_eq!(c.cycles_in(c.cycles(n)), n);
        }
    }

    #[test]
    fn mbps_for_bytes_matches_paper_arithmetic() {
        // The paper: 44-byte transfers with 13-cycle overhead on an
        // 800 Mbps bus yield 11/(11+13)*800 = 366.67 Mbps.
        let tc = Clock::from_mhz(25);
        let per_cell = tc.cycles(11 + 13);
        let mbps = per_cell.mbps_for_bytes(44);
        assert!((mbps - 366.67).abs() < 0.5, "got {mbps}");
    }

    #[test]
    fn zero_duration_rate_is_infinite() {
        assert!(SimDuration::ZERO.mbps_for_bytes(100).is_infinite());
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_us(75)), "75.000us");
        assert_eq!(format!("{}", SimDuration::from_ns(1500)), "1.500us");
    }
}
