//! A small, dependency-free JSON value type with a writer and a parser.
//!
//! The offline build cannot fetch `serde`, and the workspace only needs
//! JSON in two narrow places: emitting machine-readable experiment
//! results / Chrome trace files, and parsing them back in round-trip
//! tests. This module covers exactly that: a [`Json`] tree, a pretty
//! printer compatible with the common 2-space style, and a strict
//! recursive-descent parser.
//!
//! Numbers distinguish integers from floats so counters render as
//! `1234` while measured values render as `72.5` — the distinction
//! Chrome's trace viewer and diff-friendly result files both want.

use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no decimal point on the wire).
    Int(i64),
    /// A floating-point literal (always rendered with `.` or exponent).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a key to an object (panics on non-objects) and returns `self`
    /// for chaining.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => entries.push((key.to_string(), value.into())),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The elements of an array (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// Numeric value of `Int` or `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer value (exact `Int` only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Unsigned integer value.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(f) => out.push_str(&render_f64(*f)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. The whole input must be one value plus
    /// optional surrounding whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        // Counters fit i64 in practice; saturate rather than wrap.
        Json::Int(i64::try_from(u).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::from(u as u64)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Num(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// Renders an `f64` so it always parses back as a float (keeps a `.0`
/// suffix for integral values), with NaN/infinity mapped to `null` —
/// JSON has no representation for them.
fn render_f64(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Fall back to f64 for integers beyond i64 range.
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_round_trip() {
        let doc = Json::obj()
            .with("id", "fig2")
            .with("count", 42u64)
            .with("mean", 72.5)
            .with("flag", true)
            .with("nothing", Json::Null)
            .with(
                "series",
                Json::Arr(vec![Json::Int(1), Json::Num(2.25), Json::Str("x".into())]),
            );
        for text in [doc.render_compact(), doc.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn pretty_layout_is_stable() {
        let doc = Json::obj()
            .with("a", 1i64)
            .with("b", Json::Arr(vec![Json::Int(2)]));
        assert_eq!(
            doc.render_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}"
        );
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        assert_eq!(Json::Int(7).render_compact(), "7");
        assert_eq!(Json::Num(7.0).render_compact(), "7.0");
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Num(7.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}é☃".to_string());
        let text = s.render_compact();
        assert_eq!(Json::parse(&text).unwrap(), s);
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_navigate() {
        let doc = Json::parse("{\"a\": [1, {\"b\": \"x\"}]}").unwrap();
        assert_eq!(doc.get("a").unwrap().idx(0).unwrap().as_i64(), Some(1));
        assert_eq!(
            doc.get("a")
                .unwrap()
                .idx(1)
                .unwrap()
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(doc.get("missing"), None);
    }
}
