//! Observability: probes, a hierarchical metric registry, and a typed
//! timeline of simulated-time spans.
//!
//! The paper's conclusions all rest on counting things — interrupts per
//! PDU (§2.1.2), cache words invalidated (§2.3), DMA transactions and
//! bus words (§2.5), cells per reassembly lane (§2.6). Every component
//! in the workspace publishes those tallies through this module instead
//! of hand-rolling its own stat structs:
//!
//! * [`Registry`] — one shared, hierarchical store of counters, gauges,
//!   and time-weighted histograms, keyed by dotted paths such as
//!   `node0.board.rx.cells` or `node1.host.bus.dma_words`.
//! * [`Probe`] — a cheap handle scoped to one component (`board.rx`,
//!   `host.intr`, `bus`); components request their instruments from it
//!   at construction and then increment [`Counter`] handles directly —
//!   an `Rc<Cell<u64>>` bump, no lookup on the hot path.
//! * [`Timeline`] — typed spans/instants in simulated picosecond time,
//!   exportable as Chrome trace-event JSON for `chrome://tracing` /
//!   Perfetto.
//! * [`Snapshot`] — a deterministic (BTreeMap-ordered) read-out of the
//!   whole registry, the unit the report layer and the bench binaries
//!   consume.
//!
//! Components constructed standalone (unit tests, micro-experiments)
//! use [`Probe::detached`], which owns a private registry; the
//! `Testbed` builder threads one shared registry through every layer.
//! The simulation is single-threaded by design, so handles are
//! `Rc`-based and this module is deliberately `!Send`.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json::Json;
use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event count.
///
/// Cloning shares the underlying cell: the component keeps one clone for
/// hot-path increments while the registry keeps another for snapshots.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// A counter not registered anywhere (placeholder/testing).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Resets to zero (used when a harness clears its trace/timeline).
    pub fn reset(&self) {
        self.0.set(0);
    }
}

/// A last-value-wins measurement (queue depth, free buffers, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// A time-weighted histogram: tracks a piecewise-constant signal over
/// simulated time (queue length, outstanding DMA transactions) and
/// reports its time-weighted mean plus extrema.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<HistInner>>);

#[derive(Debug, Default)]
struct HistInner {
    started: bool,
    last_value: f64,
    last_at: SimTime,
    /// ∫ value dt, in value·picoseconds.
    weighted_sum: f64,
    total_ps: u128,
    min: f64,
    max: f64,
    samples: u64,
}

impl Histogram {
    /// Records that the signal takes `value` from `now` onwards.
    pub fn record(&self, now: SimTime, value: f64) {
        let mut h = self.0.borrow_mut();
        if h.started {
            let dt = now.saturating_since(h.last_at).as_ps();
            h.weighted_sum += h.last_value * dt as f64;
            h.total_ps += dt as u128;
            h.min = h.min.min(value);
            h.max = h.max.max(value);
        } else {
            h.started = true;
            h.min = value;
            h.max = value;
        }
        h.last_value = value;
        h.last_at = now;
        h.samples += 1;
    }

    /// Summary of everything recorded so far.
    pub fn summary(&self) -> HistSummary {
        let h = self.0.borrow();
        let mean = if h.total_ps > 0 {
            h.weighted_sum / h.total_ps as f64
        } else if h.started {
            h.last_value
        } else {
            0.0
        };
        HistSummary {
            time_weighted_mean: mean,
            min: if h.started { h.min } else { 0.0 },
            max: if h.started { h.max } else { 0.0 },
            samples: h.samples,
        }
    }
}

/// Read-out of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Mean of the signal weighted by how long each value was held.
    pub time_weighted_mean: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Number of `record` calls.
    pub samples: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Histogram>,
}

/// The shared metric store. Cloning is cheap (one `Rc`); all clones view
/// the same instruments.
#[derive(Debug, Clone, Default)]
pub struct Registry(Rc<RefCell<RegistryInner>>);

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A probe rooted at `scope` (empty string for the registry root).
    pub fn probe(&self, scope: &str) -> Probe {
        Probe {
            reg: self.clone(),
            scope: scope.to_string(),
        }
    }

    /// The counter at exactly `path`, registering it at zero if absent.
    pub fn counter(&self, path: &str) -> Counter {
        self.0
            .borrow_mut()
            .counters
            .entry(path.to_string())
            .or_default()
            .clone()
    }

    /// The gauge at exactly `path`, registering it if absent.
    pub fn gauge(&self, path: &str) -> Gauge {
        self.0
            .borrow_mut()
            .gauges
            .entry(path.to_string())
            .or_default()
            .clone()
    }

    /// The histogram at exactly `path`, registering it if absent.
    pub fn histogram(&self, path: &str) -> Histogram {
        self.0
            .borrow_mut()
            .hists
            .entry(path.to_string())
            .or_default()
            .clone()
    }

    /// A deterministic point-in-time read-out of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.0.borrow();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

/// A handle scoped to one component's corner of the registry.
#[derive(Debug, Clone)]
pub struct Probe {
    reg: Registry,
    scope: String,
}

impl Probe {
    /// A probe over a fresh private registry — for components built
    /// standalone (unit tests, micro-experiments).
    pub fn detached() -> Probe {
        Registry::new().probe("")
    }

    /// This probe's dotted scope path (may be empty at the root).
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// The registry this probe feeds.
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// A child probe: `probe("board").scoped("rx")` → scope `board.rx`.
    pub fn scoped(&self, sub: &str) -> Probe {
        Probe {
            reg: self.reg.clone(),
            scope: self.join(sub),
        }
    }

    fn join(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scope, name)
        }
    }

    /// The counter `scope.name`, registering it at zero if absent.
    pub fn counter(&self, name: &str) -> Counter {
        self.reg.counter(&self.join(name))
    }

    /// The gauge `scope.name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.reg.gauge(&self.join(name))
    }

    /// The histogram `scope.name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.reg.histogram(&self.join(name))
    }

    /// Snapshot of the **whole** registry this probe feeds.
    pub fn snapshot(&self) -> Snapshot {
        self.reg.snapshot()
    }
}

/// A deterministic read-out of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by full dotted path.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by full dotted path.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by full dotted path.
    pub hists: BTreeMap<String, HistSummary>,
}

impl Snapshot {
    /// The counter at `path`, zero if it was never registered.
    pub fn counter(&self, path: &str) -> u64 {
        self.counters.get(path).copied().unwrap_or(0)
    }

    /// The gauge at `path`, zero if absent.
    pub fn gauge(&self, path: &str) -> f64 {
        self.gauges.get(path).copied().unwrap_or(0.0)
    }

    /// Sum of every counter whose path starts with `prefix` followed by
    /// `.` (or equals `prefix`) — e.g. `sum_counters("node0.board")`.
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| {
                k.as_str() == prefix
                    || (k.starts_with(prefix) && k[prefix.len()..].starts_with('.'))
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// Counters whose path ends with `.suffix`, in path order.
    pub fn counters_with_suffix<'a>(
        &'a self,
        suffix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters.iter().filter_map(move |(k, &v)| {
            let stripped = k.strip_suffix(suffix)?;
            if stripped.ends_with('.') || stripped.is_empty() {
                Some((k.as_str(), v))
            } else {
                None
            }
        })
    }

    /// Renders the snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .fold(Json::obj(), |j, (k, &v)| j.with(k, v));
        let gauges = self
            .gauges
            .iter()
            .fold(Json::obj(), |j, (k, &v)| j.with(k, v));
        let hists = self.hists.iter().fold(Json::obj(), |j, (k, h)| {
            j.with(
                k,
                Json::obj()
                    .with("time_weighted_mean", h.time_weighted_mean)
                    .with("min", h.min)
                    .with("max", h.max)
                    .with("samples", h.samples),
            )
        });
        Json::obj()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", hists)
    }
}

/// One recorded timeline event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Track (maps to a Chrome trace thread): `host0.cpu`, `board1.rx`, `bus0`.
    pub track: String,
    /// Event name shown in the viewer.
    pub name: String,
    /// Start time.
    pub at: SimTime,
    /// Span length; `None` marks an instant event.
    pub dur: Option<SimDuration>,
}

/// Typed spans and instants in simulated time, bounded like the trace
/// ring: when full, the **oldest** events are evicted and counted in a
/// registry-visible `dropped` counter so truncation is never silent.
#[derive(Debug)]
pub struct Timeline {
    enabled: bool,
    capacity: usize,
    events: std::collections::VecDeque<TimelineEvent>,
    dropped: Counter,
}

impl Timeline {
    /// A disabled timeline with the given capacity and a detached
    /// dropped-events counter.
    pub fn new(capacity: usize) -> Timeline {
        Timeline {
            enabled: false,
            capacity,
            events: std::collections::VecDeque::new(),
            dropped: Counter::detached(),
        }
    }

    /// A timeline whose `dropped` counter is registered on `probe` as
    /// `<scope>.timeline.dropped`.
    pub fn with_probe(capacity: usize, probe: &Probe) -> Timeline {
        let mut t = Timeline::new(capacity);
        t.dropped = probe.scoped("timeline").counter("dropped");
        t
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a span on `track` from `start` to `end`.
    pub fn span(&mut self, track: &str, name: impl Into<String>, start: SimTime, end: SimTime) {
        self.push(TimelineEvent {
            track: track.to_string(),
            name: name.into(),
            at: start,
            dur: Some(end.saturating_since(start)),
        });
    }

    /// Records an instant on `track` at `at`.
    pub fn instant(&mut self, track: &str, name: impl Into<String>, at: SimTime) {
        self.push(TimelineEvent {
            track: track.to_string(),
            name: name.into(),
            at,
            dur: None,
        });
    }

    fn push(&mut self, ev: TimelineEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped.incr();
        }
        self.events.push_back(ev);
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimelineEvent> {
        self.events.iter()
    }

    /// Events evicted because the timeline was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Clears recorded events (keeps the enabled flag and capacity).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// All spans on `track` whose name equals `name`, oldest first.
    pub fn spans_named<'a>(
        &'a self,
        track: &'a str,
        name: &'a str,
    ) -> impl Iterator<Item = &'a TimelineEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.track == track && e.name == name)
    }

    /// Exports the Chrome trace-event JSON document (the format
    /// `chrome://tracing` and Perfetto load): complete (`"X"`) events
    /// for spans, instant (`"i"`) events for instants, one trace "thread"
    /// per track, timestamps in microseconds of simulated time.
    pub fn to_chrome_json(&self) -> Json {
        let mut tracks: Vec<&str> = Vec::new();
        for ev in &self.events {
            if !tracks.contains(&ev.track.as_str()) {
                tracks.push(&ev.track);
            }
        }
        let mut events = Vec::new();
        for ev in &self.events {
            let tid = tracks.iter().position(|t| *t == ev.track).unwrap() as i64;
            let mut obj = Json::obj()
                .with("name", ev.name.as_str())
                .with("cat", "sim")
                .with("ph", if ev.dur.is_some() { "X" } else { "i" })
                .with("ts", ev.at.as_us_f64())
                .with("pid", 0i64)
                .with("tid", tid);
            match ev.dur {
                Some(d) => obj = obj.with("dur", d.as_us_f64()),
                None => obj = obj.with("s", "t"),
            }
            events.push(obj);
        }
        // Thread-name metadata so the viewer labels tracks.
        for (tid, track) in tracks.iter().enumerate() {
            events.push(
                Json::obj()
                    .with("name", "thread_name")
                    .with("ph", "M")
                    .with("pid", 0i64)
                    .with("tid", tid as i64)
                    .with("args", Json::obj().with("name", *track)),
            );
        }
        Json::obj()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_share() {
        let reg = Registry::new();
        let probe = reg.probe("board").scoped("rx");
        let c = probe.counter("cells");
        c.add(3);
        probe.counter("cells").incr(); // same underlying cell
        assert_eq!(c.get(), 4);
        assert_eq!(reg.snapshot().counter("board.rx.cells"), 4);
        assert_eq!(reg.snapshot().counter("board.rx.missing"), 0);
    }

    #[test]
    fn detached_probes_do_not_collide() {
        let a = Probe::detached();
        let b = Probe::detached();
        a.counter("x").add(5);
        assert_eq!(b.counter("x").get(), 0);
    }

    #[test]
    fn snapshot_ordering_is_deterministic() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.counter("m.mid").add(3);
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        assert_eq!(keys, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn sum_counters_respects_path_boundaries() {
        let reg = Registry::new();
        reg.counter("node0.rx.cells").add(2);
        reg.counter("node0.rx.pdus").add(3);
        reg.counter("node0.rxtra.cells").add(100);
        assert_eq!(reg.snapshot().sum_counters("node0.rx"), 5);
    }

    #[test]
    fn suffix_query_finds_per_node_counters() {
        let reg = Registry::new();
        reg.counter("node0.board.rx.cells").add(1);
        reg.counter("node1.board.rx.cells").add(2);
        reg.counter("node1.board.rx.cells_rejected").add(9);
        let snap = reg.snapshot();
        let total: u64 = snap.counters_with_suffix("cells").map(|(_, v)| v).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn gauge_and_histogram_snapshot() {
        let reg = Registry::new();
        reg.gauge("q.depth").set(7.5);
        let h = reg.histogram("q.len");
        h.record(SimTime::ZERO, 0.0);
        h.record(SimTime::from_us(10), 4.0); // 0 held 10 us
        h.record(SimTime::from_us(30), 0.0); // 4 held 20 us
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("q.depth"), 7.5);
        let s = snap.hists["q.len"];
        assert!((s.time_weighted_mean - (4.0 * 20.0 / 30.0)).abs() < 1e-9);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn snapshot_to_json_round_trips() {
        let reg = Registry::new();
        reg.counter("a.b").add(42);
        reg.gauge("g").set(1.5);
        reg.histogram("h").record(SimTime::ZERO, 2.0);
        let text = reg.snapshot().to_json().render_pretty();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(42)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(1.5)
        );
    }

    #[test]
    fn timeline_records_spans_and_exports_chrome_json() {
        let mut tl = Timeline::new(16);
        tl.set_enabled(true);
        tl.span(
            "host0.cpu",
            "intr",
            SimTime::from_us(10),
            SimTime::from_us(85),
        );
        tl.instant("board0.rx", "cell", SimTime::from_us(12));
        let doc = tl.to_chrome_json();
        let evs = doc.get("traceEvents").unwrap().items();
        // 2 events + 2 thread_name metadata records.
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(evs[0].get("dur").unwrap().as_f64(), Some(75.0));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("i"));
        // Round-trip through the parser.
        let text = doc.render_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn timeline_disabled_records_nothing() {
        let mut tl = Timeline::new(4);
        tl.instant("t", "x", SimTime::ZERO);
        assert_eq!(tl.events().count(), 0);
    }

    #[test]
    fn timeline_eviction_feeds_registry_counter() {
        let reg = Registry::new();
        let probe = reg.probe("sim");
        let mut tl = Timeline::with_probe(2, &probe);
        tl.set_enabled(true);
        for i in 0..5u64 {
            tl.instant("t", format!("e{i}"), SimTime::from_us(i));
        }
        assert_eq!(tl.events().count(), 2);
        assert_eq!(tl.dropped(), 3);
        assert_eq!(reg.snapshot().counter("sim.timeline.dropped"), 3);
    }
}
