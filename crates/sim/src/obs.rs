//! Observability: probes, a hierarchical metric registry, a typed
//! timeline of simulated-time spans, and per-PDU critical-path analysis.
//!
//! The paper's conclusions all rest on counting things — interrupts per
//! PDU (§2.1.2), cache words invalidated (§2.3), DMA transactions and
//! bus words (§2.5), cells per reassembly lane (§2.6). Every component
//! in the workspace publishes those tallies through this module instead
//! of hand-rolling its own stat structs:
//!
//! * [`Registry`] — one shared, hierarchical store of counters, gauges,
//!   and time-weighted histograms, keyed by dotted paths such as
//!   `node0.board.rx.cells` or `node1.host.bus.dma_words`.
//! * [`Probe`] — a cheap handle scoped to one component (`board.rx`,
//!   `host.intr`, `bus`); components request their instruments from it
//!   at construction and then increment [`Counter`] handles directly —
//!   an `Rc<Cell<u64>>` bump, no lookup on the hot path.
//! * [`Timeline`] — typed spans/instants in simulated picosecond time,
//!   exportable as Chrome trace-event JSON for `chrome://tracing` /
//!   Perfetto. A timeline is a cheap-clone shared handle, so every
//!   layer of a node (stack, driver, board halves) can hold one and
//!   open its own spans without signature ripple.
//! * [`TraceCtx`] — the causal identity of one PDU (source host +
//!   PDU id), minted at send time and carried through fragmentation,
//!   descriptors, cells, the fabric, reassembly, and delivery. Spans
//!   keyed by a ctx form the PDU's whole-path trace.
//! * [`CriticalPath`] — turns one ctx's span set into a latency
//!   anatomy: every picosecond between first span start and last span
//!   end is attributed to exactly one [`Stage`], so the stages sum to
//!   the observed end-to-end time by construction.
//! * [`Snapshot`] — a deterministic (BTreeMap-ordered) read-out of the
//!   whole registry, the unit the report layer and the bench binaries
//!   consume.
//!
//! Components constructed standalone (unit tests, micro-experiments)
//! use [`Probe::detached`], which owns a private registry; the
//! `Testbed` builder threads one shared registry through every layer.
//! The simulation is single-threaded by design, so handles are
//! `Rc`-based and this module is deliberately `!Send`.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::json::Json;
use crate::time::{SimDuration, SimTime};

pub mod series;

/// A monotonically increasing event count.
///
/// Cloning shares the underlying cell: the component keeps one clone for
/// hot-path increments while the registry keeps another for snapshots.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// A counter not registered anywhere (placeholder/testing).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Resets to zero (used when a harness clears its trace/timeline).
    pub fn reset(&self) {
        self.0.set(0);
    }
}

/// A last-value-wins measurement (queue depth, free buffers, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// Number of log-spaced histogram buckets (√2 growth per bucket, same
/// spacing as `stats::DurationHistogram`): bucket `i` holds values in
/// `(2^((i-1-OFFSET)/2), 2^((i-OFFSET)/2)]`, spanning ~2e-8 .. ~1e7.
const HIST_BUCKETS: usize = 96;
/// Bucket index of value 1.0 (so sub-unit values keep resolution).
const HIST_OFFSET: i64 = 48;

fn bucket_of(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    let idx = (2.0 * v.log2()).ceil() as i64 + HIST_OFFSET;
    idx.clamp(0, HIST_BUCKETS as i64 - 1) as usize
}

fn bucket_upper(idx: usize) -> f64 {
    2f64.powf((idx as i64 - HIST_OFFSET) as f64 / 2.0)
}

/// A histogram with two feeding modes and log-spaced buckets:
///
/// * [`Histogram::record`] tracks a piecewise-constant signal over
///   simulated time (queue length, outstanding DMA transactions) and
///   reports its time-weighted mean plus extrema.
/// * [`Histogram::observe`] adds one plain (non-time-weighted) sample —
///   the mode for duration distributions such as per-stage latencies.
///
/// Both modes feed 96 log-spaced buckets (√2 growth), from which
/// [`HistSummary`] estimates p50/p95/p99 as the matching bucket's upper
/// bound clamped to the observed min/max.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<HistInner>>);

#[derive(Debug, Default)]
struct HistInner {
    started: bool,
    last_value: f64,
    last_at: SimTime,
    /// ∫ value dt, in value·picoseconds.
    weighted_sum: f64,
    total_ps: u128,
    /// Σ value over samples (plain mean for `observe`-fed histograms).
    plain_sum: f64,
    min: f64,
    max: f64,
    samples: u64,
    /// Log-spaced sample-count buckets; allocated on first feed.
    buckets: Vec<u64>,
}

impl HistInner {
    fn feed_bucket(&mut self, value: f64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
        }
        self.buckets[bucket_of(value)] += 1;
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let target = ((p * self.samples as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl Histogram {
    /// Records that the signal takes `value` from `now` onwards.
    pub fn record(&self, now: SimTime, value: f64) {
        let mut h = self.0.borrow_mut();
        if h.started {
            let dt = now.saturating_since(h.last_at).as_ps();
            h.weighted_sum += h.last_value * dt as f64;
            h.total_ps += dt as u128;
            h.min = h.min.min(value);
            h.max = h.max.max(value);
        } else {
            h.started = true;
            h.min = value;
            h.max = value;
        }
        h.last_value = value;
        h.last_at = now;
        h.samples += 1;
        h.plain_sum += value;
        h.feed_bucket(value);
    }

    /// Adds one plain sample (no time weighting) — for distributions of
    /// durations or sizes rather than signals held over time.
    pub fn observe(&self, value: f64) {
        let mut h = self.0.borrow_mut();
        if h.started {
            h.min = h.min.min(value);
            h.max = h.max.max(value);
        } else {
            h.started = true;
            h.min = value;
            h.max = value;
        }
        h.samples += 1;
        h.plain_sum += value;
        h.feed_bucket(value);
    }

    /// Summary of everything recorded so far.
    pub fn summary(&self) -> HistSummary {
        let h = self.0.borrow();
        let mean = if h.total_ps > 0 {
            h.weighted_sum / h.total_ps as f64
        } else if h.samples > 0 {
            h.plain_sum / h.samples as f64
        } else {
            0.0
        };
        HistSummary {
            time_weighted_mean: mean,
            min: if h.started { h.min } else { 0.0 },
            max: if h.started { h.max } else { 0.0 },
            samples: h.samples,
            p50: h.percentile(0.50),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
        }
    }
}

/// Read-out of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Mean of the signal weighted by how long each value was held
    /// (`record` mode), or the plain mean (`observe` mode).
    pub time_weighted_mean: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Number of `record`/`observe` calls.
    pub samples: u64,
    /// Median, estimated from the log-spaced buckets (upper bound of the
    /// bucket holding the median sample, clamped to `[min, max]`).
    pub p50: f64,
    /// 95th percentile, same estimation.
    pub p95: f64,
    /// 99th percentile, same estimation.
    pub p99: f64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Histogram>,
}

/// The shared metric store. Cloning is cheap (one `Rc`); all clones view
/// the same instruments.
#[derive(Debug, Clone, Default)]
pub struct Registry(Rc<RefCell<RegistryInner>>);

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A probe rooted at `scope` (empty string for the registry root).
    pub fn probe(&self, scope: &str) -> Probe {
        Probe {
            reg: self.clone(),
            scope: Rc::from(scope),
        }
    }

    /// The counter at exactly `path`, registering it at zero if absent.
    pub fn counter(&self, path: &str) -> Counter {
        self.0
            .borrow_mut()
            .counters
            .entry(path.to_string())
            .or_default()
            .clone()
    }

    /// The gauge at exactly `path`, registering it if absent.
    pub fn gauge(&self, path: &str) -> Gauge {
        self.0
            .borrow_mut()
            .gauges
            .entry(path.to_string())
            .or_default()
            .clone()
    }

    /// The counter at exactly `path` if it is already registered.
    /// Unlike [`Registry::counter`] this never creates the key — the
    /// read-only form the sampling plane uses, so turning sampling on
    /// can never change a snapshot's key set.
    pub fn find_counter(&self, path: &str) -> Option<Counter> {
        self.0.borrow().counters.get(path).cloned()
    }

    /// The gauge at exactly `path` if already registered (never creates).
    pub fn find_gauge(&self, path: &str) -> Option<Gauge> {
        self.0.borrow().gauges.get(path).cloned()
    }

    /// Registered counter paths starting with `prefix`, in path order —
    /// how the sampler enumerates e.g. every `engine.dispatch.*` key.
    pub fn counter_paths_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.0
            .borrow()
            .counters
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// The histogram at exactly `path`, registering it if absent.
    pub fn histogram(&self, path: &str) -> Histogram {
        self.0
            .borrow_mut()
            .hists
            .entry(path.to_string())
            .or_default()
            .clone()
    }

    /// A deterministic point-in-time read-out of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.0.borrow();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

/// A handle scoped to one component's corner of the registry.
///
/// The scope path is a shared `Rc<str>`: cloning a probe or deriving a
/// child never copies the path bytes, and instruments resolve their
/// dotted key exactly once, at registration — increments afterwards are
/// plain `Rc<Cell>` bumps with no string work at all.
#[derive(Debug, Clone)]
pub struct Probe {
    reg: Registry,
    scope: Rc<str>,
}

impl Probe {
    /// A probe over a fresh private registry — for components built
    /// standalone (unit tests, micro-experiments).
    pub fn detached() -> Probe {
        Registry::new().probe("")
    }

    /// This probe's dotted scope path (may be empty at the root).
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// The registry this probe feeds.
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// A child probe: `probe("board").scoped("rx")` → scope `board.rx`.
    pub fn scoped(&self, sub: &str) -> Probe {
        Probe {
            reg: self.reg.clone(),
            scope: Rc::from(self.join(sub)),
        }
    }

    fn join(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scope, name)
        }
    }

    /// The counter `scope.name`, registering it at zero if absent.
    pub fn counter(&self, name: &str) -> Counter {
        self.reg.counter(&self.join(name))
    }

    /// The gauge `scope.name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.reg.gauge(&self.join(name))
    }

    /// The histogram `scope.name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.reg.histogram(&self.join(name))
    }

    /// Snapshot of the **whole** registry this probe feeds.
    pub fn snapshot(&self) -> Snapshot {
        self.reg.snapshot()
    }
}

/// A deterministic read-out of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by full dotted path.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by full dotted path.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by full dotted path.
    pub hists: BTreeMap<String, HistSummary>,
}

impl Snapshot {
    /// The counter at `path`, zero if it was never registered.
    pub fn counter(&self, path: &str) -> u64 {
        self.counters.get(path).copied().unwrap_or(0)
    }

    /// The gauge at `path`, zero if absent.
    pub fn gauge(&self, path: &str) -> f64 {
        self.gauges.get(path).copied().unwrap_or(0.0)
    }

    /// Sum of every counter whose path starts with `prefix` followed by
    /// `.` (or equals `prefix`) — e.g. `sum_counters("node0.board")`.
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| {
                k.as_str() == prefix
                    || (k.starts_with(prefix) && k[prefix.len()..].starts_with('.'))
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// Counters whose path ends with `.suffix`, in path order.
    pub fn counters_with_suffix<'a>(
        &'a self,
        suffix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters.iter().filter_map(move |(k, &v)| {
            let stripped = k.strip_suffix(suffix)?;
            if stripped.ends_with('.') || stripped.is_empty() {
                Some((k.as_str(), v))
            } else {
                None
            }
        })
    }

    /// Renders the snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .fold(Json::obj(), |j, (k, &v)| j.with(k, v));
        let gauges = self
            .gauges
            .iter()
            .fold(Json::obj(), |j, (k, &v)| j.with(k, v));
        let hists = self.hists.iter().fold(Json::obj(), |j, (k, h)| {
            j.with(
                k,
                Json::obj()
                    .with("time_weighted_mean", h.time_weighted_mean)
                    .with("min", h.min)
                    .with("max", h.max)
                    .with("samples", h.samples)
                    .with("p50", h.p50)
                    .with("p95", h.p95)
                    .with("p99", h.p99),
            )
        });
        Json::obj()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", hists)
    }
}

/// The causal identity of one PDU: the sending host's model-level
/// address and a per-sender PDU number. For the UDP/IP path this is
/// exactly the IP header's `(src, id)` pair, so the receive side can
/// re-mint the same ctx from the wire header; raw-ATM senders mint from
/// a per-node sequence. The ctx rides on descriptors and cells as
/// simulation-side metadata (no bytes on the modelled wire change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceCtx {
    /// Model-level address of the sending host (IP `src`).
    pub host: u16,
    /// Per-sender PDU number (IP `id` for UDP/IP).
    pub pdu: u32,
}

impl std::fmt::Display for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}:p{}", self.host, self.pdu)
    }
}

/// One recorded timeline event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Track (maps to a Chrome trace thread): `host0.cpu`, `board1.rx`, `bus0`.
    pub track: String,
    /// Event name shown in the viewer.
    pub name: String,
    /// Start time.
    pub at: SimTime,
    /// Span length; `None` marks an instant event.
    pub dur: Option<SimDuration>,
    /// The PDU this event belongs to, when the layer knows it.
    pub ctx: Option<TraceCtx>,
}

impl TimelineEvent {
    /// Span end time (equals `at` for instants).
    pub fn end(&self) -> SimTime {
        match self.dur {
            Some(d) => self.at + d,
            None => self.at,
        }
    }
}

/// An interned timeline string (a track or span name): a dense index
/// into the timeline's symbol table. Hot paths cache `SymId`s once (at
/// `set_timeline` / construction time) and emit spans by id — a couple
/// of machine words copied, no `String` allocated per event. The cold
/// export edge ([`Timeline::events`], [`Timeline::to_chrome_json`])
/// resolves ids back to the exact same strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(u32);

/// The timeline's string interner. Ids are assigned in first-intern
/// order, so a deterministic run yields a deterministic table.
#[derive(Debug, Default)]
struct SymTable {
    names: Vec<Rc<str>>,
    lookup: std::collections::HashMap<Rc<str>, SymId>,
}

impl SymTable {
    fn intern(&mut self, s: &str) -> SymId {
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = SymId(self.names.len() as u32);
        let name: Rc<str> = Rc::from(s);
        self.names.push(name.clone());
        self.lookup.insert(name, id);
        id
    }

    /// Lookup without inserting (queries for strings never interned
    /// simply match nothing).
    fn get(&self, s: &str) -> Option<SymId> {
        self.lookup.get(s).copied()
    }

    fn resolve(&self, id: SymId) -> &str {
        &self.names[id.0 as usize]
    }
}

/// Internal storage form of one timeline event: strings as `SymId`s, so
/// a record is a few plain words (`Copy`, no heap).
#[derive(Debug, Clone, Copy)]
struct TimelineRecord {
    track: SymId,
    name: SymId,
    at: SimTime,
    dur: Option<SimDuration>,
    ctx: Option<TraceCtx>,
}

#[derive(Debug, Default)]
struct TimelineInner {
    enabled: bool,
    capacity: usize,
    syms: SymTable,
    events: std::collections::VecDeque<TimelineRecord>,
    dropped: Counter,
}

impl TimelineInner {
    fn push_record(&mut self, r: TimelineRecord) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped.incr();
        }
        self.events.push_back(r);
    }

    fn resolve_event(&self, r: &TimelineRecord) -> TimelineEvent {
        TimelineEvent {
            track: self.syms.resolve(r.track).to_string(),
            name: self.syms.resolve(r.name).to_string(),
            at: r.at,
            dur: r.dur,
            ctx: r.ctx,
        }
    }
}

/// Typed spans and instants in simulated time, bounded like the trace
/// ring: when full, the **oldest** events are evicted and counted in a
/// registry-visible `dropped` counter so truncation is never silent.
///
/// A `Timeline` is a cheap-clone shared handle (like [`Counter`]): the
/// testbed creates one and hands clones to the stack, driver, and board
/// halves, which each open spans on their own tracks. A
/// default-constructed timeline is detached (capacity 0, disabled) so
/// components built standalone pay nothing.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    inner: Rc<RefCell<TimelineInner>>,
}

impl Timeline {
    /// A disabled timeline with the given capacity and a detached
    /// dropped-events counter.
    pub fn new(capacity: usize) -> Timeline {
        let tl = Timeline::default();
        tl.inner.borrow_mut().capacity = capacity;
        tl
    }

    /// A timeline whose `dropped` counter is registered on `probe` as
    /// `<scope>.timeline.dropped`.
    pub fn with_probe(capacity: usize, probe: &Probe) -> Timeline {
        let t = Timeline::new(capacity);
        t.inner.borrow_mut().dropped = probe.scoped("timeline").counter("dropped");
        t
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.borrow_mut().enabled = on;
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Interns `s` into this timeline's symbol table, returning a
    /// [`SymId`] usable with the `*_sym` emission methods. Interning is
    /// idempotent; hot paths call this once at wiring time and keep the
    /// id.
    pub fn intern(&self, s: &str) -> SymId {
        self.inner.borrow_mut().syms.intern(s)
    }

    /// Records a span on `track` from `start` to `end`.
    pub fn span(&self, track: &str, name: impl AsRef<str>, start: SimTime, end: SimTime) {
        let mut t = self.inner.borrow_mut();
        if !t.enabled {
            return;
        }
        let track = t.syms.intern(track);
        let name = t.syms.intern(name.as_ref());
        t.push_record(TimelineRecord {
            track,
            name,
            at: start,
            dur: Some(end.saturating_since(start)),
            ctx: None,
        });
    }

    /// Records a span belonging to PDU `ctx`.
    pub fn span_ctx(
        &self,
        track: &str,
        name: impl AsRef<str>,
        ctx: TraceCtx,
        start: SimTime,
        end: SimTime,
    ) {
        let mut t = self.inner.borrow_mut();
        if !t.enabled {
            return;
        }
        let track = t.syms.intern(track);
        let name = t.syms.intern(name.as_ref());
        t.push_record(TimelineRecord {
            track,
            name,
            at: start,
            dur: Some(end.saturating_since(start)),
            ctx: Some(ctx),
        });
    }

    /// Records an instant on `track` at `at`.
    pub fn instant(&self, track: &str, name: impl AsRef<str>, at: SimTime) {
        let mut t = self.inner.borrow_mut();
        if !t.enabled {
            return;
        }
        let track = t.syms.intern(track);
        let name = t.syms.intern(name.as_ref());
        t.push_record(TimelineRecord {
            track,
            name,
            at,
            dur: None,
            ctx: None,
        });
    }

    /// Records an instant belonging to PDU `ctx`.
    pub fn instant_ctx(&self, track: &str, name: impl AsRef<str>, ctx: TraceCtx, at: SimTime) {
        let mut t = self.inner.borrow_mut();
        if !t.enabled {
            return;
        }
        let track = t.syms.intern(track);
        let name = t.syms.intern(name.as_ref());
        t.push_record(TimelineRecord {
            track,
            name,
            at,
            dur: None,
            ctx: Some(ctx),
        });
    }

    /// [`Timeline::span`] with pre-interned symbols — the hot-path form.
    pub fn span_sym(&self, track: SymId, name: SymId, start: SimTime, end: SimTime) {
        let mut t = self.inner.borrow_mut();
        if !t.enabled {
            return;
        }
        t.push_record(TimelineRecord {
            track,
            name,
            at: start,
            dur: Some(end.saturating_since(start)),
            ctx: None,
        });
    }

    /// [`Timeline::span_ctx`] with pre-interned symbols.
    pub fn span_ctx_sym(
        &self,
        track: SymId,
        name: SymId,
        ctx: TraceCtx,
        start: SimTime,
        end: SimTime,
    ) {
        let mut t = self.inner.borrow_mut();
        if !t.enabled {
            return;
        }
        t.push_record(TimelineRecord {
            track,
            name,
            at: start,
            dur: Some(end.saturating_since(start)),
            ctx: Some(ctx),
        });
    }

    /// [`Timeline::instant`] with pre-interned symbols.
    pub fn instant_sym(&self, track: SymId, name: SymId, at: SimTime) {
        let mut t = self.inner.borrow_mut();
        if !t.enabled {
            return;
        }
        t.push_record(TimelineRecord {
            track,
            name,
            at,
            dur: None,
            ctx: None,
        });
    }

    /// [`Timeline::instant_ctx`] with pre-interned symbols.
    pub fn instant_ctx_sym(&self, track: SymId, name: SymId, ctx: TraceCtx, at: SimTime) {
        let mut t = self.inner.borrow_mut();
        if !t.enabled {
            return;
        }
        t.push_record(TimelineRecord {
            track,
            name,
            at,
            dur: None,
            ctx: Some(ctx),
        });
    }

    /// Recorded events, oldest first (symbols resolved back to strings).
    pub fn events(&self) -> Vec<TimelineEvent> {
        let inner = self.inner.borrow();
        inner
            .events
            .iter()
            .map(|r| inner.resolve_event(r))
            .collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every event belonging to `ctx`, oldest first.
    pub fn events_for(&self, ctx: TraceCtx) -> Vec<TimelineEvent> {
        let inner = self.inner.borrow();
        inner
            .events
            .iter()
            .filter(|r| r.ctx == Some(ctx))
            .map(|r| inner.resolve_event(r))
            .collect()
    }

    /// The distinct PDU contexts seen, in first-appearance order.
    pub fn ctxs(&self) -> Vec<TraceCtx> {
        let inner = self.inner.borrow();
        let mut out = Vec::new();
        for e in &inner.events {
            if let Some(c) = e.ctx {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Events evicted because the timeline was full.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped.get()
    }

    /// Clears recorded events (keeps the enabled flag and capacity).
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }

    /// All spans on `track` whose name equals `name`, oldest first.
    pub fn spans_named(&self, track: &str, name: &str) -> Vec<TimelineEvent> {
        let inner = self.inner.borrow();
        let (Some(tid), Some(nid)) = (inner.syms.get(track), inner.syms.get(name)) else {
            return Vec::new();
        };
        inner
            .events
            .iter()
            .filter(|r| r.track == tid && r.name == nid)
            .map(|r| inner.resolve_event(r))
            .collect()
    }

    /// Exports the Chrome trace-event JSON document (the format
    /// `chrome://tracing` and Perfetto load): complete (`"X"`) events
    /// for spans, instant (`"i"`) events for instants, one trace "thread"
    /// per track, timestamps in microseconds of simulated time. Events
    /// with a [`TraceCtx`] carry it under `args.ctx` so a PDU can be
    /// followed across tracks in the viewer.
    ///
    /// A timeline that evicted events (ring capacity hit mid-run) is a
    /// *partial* export: the document then leads with a global
    /// `"partial export"` instant carrying the eviction count under
    /// `args.dropped`, so downstream consumers can tell a truncated
    /// trace from a complete one instead of silently missing the oldest
    /// spans.
    pub fn to_chrome_json(&self) -> Json {
        let inner = self.inner.borrow();
        // Tracks in first-appearance order, as interned ids; names are
        // resolved only at the render edge below.
        let mut tracks: Vec<SymId> = Vec::new();
        for ev in &inner.events {
            if !tracks.contains(&ev.track) {
                tracks.push(ev.track);
            }
        }
        let mut events = Vec::new();
        for ev in &inner.events {
            let tid = tracks.iter().position(|t| *t == ev.track).unwrap() as i64;
            let mut obj = Json::obj()
                .with("name", inner.syms.resolve(ev.name))
                .with("cat", "sim")
                .with("ph", if ev.dur.is_some() { "X" } else { "i" })
                .with("ts", ev.at.as_us_f64())
                .with("pid", 0i64)
                .with("tid", tid);
            match ev.dur {
                Some(d) => obj = obj.with("dur", d.as_us_f64()),
                None => obj = obj.with("s", "t"),
            }
            if let Some(c) = ev.ctx {
                obj = obj.with("args", Json::obj().with("ctx", c.to_string().as_str()));
            }
            events.push(obj);
        }
        // Thread-name metadata so the viewer labels tracks.
        for (tid, track) in tracks.iter().enumerate() {
            events.push(
                Json::obj()
                    .with("name", "thread_name")
                    .with("ph", "M")
                    .with("pid", 0i64)
                    .with("tid", tid as i64)
                    .with("args", Json::obj().with("name", inner.syms.resolve(*track))),
            );
        }
        let dropped = inner.dropped.get();
        if dropped > 0 {
            let first_ts = inner
                .events
                .front()
                .map(|e| e.at.as_us_f64())
                .unwrap_or(0.0);
            events.push(
                Json::obj()
                    .with("name", "partial export")
                    .with("cat", "sim")
                    .with("ph", "i")
                    .with("ts", first_ts)
                    .with("pid", 0i64)
                    .with("s", "g")
                    .with("args", Json::obj().with("dropped", dropped)),
            );
        }
        Json::obj()
            .with("traceEvents", Json::Arr(events))
            .with("displayTimeUnit", "ms")
    }
}

/// The latency-anatomy stages a PDU's wall time is attributed to —
/// the paper's §4 decomposition, as machine-checkable categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Host CPU running protocol/driver/app code (send, UDP/IP in and
    /// out, drain, delivery).
    ProtocolCpu,
    /// Waiting for the memory bus before a DMA transfer could start.
    BusWait,
    /// DMA data actually moving over the bus (tx fetch / rx store).
    DmaTransfer,
    /// Adaptor firmware (i80960) segmentation/launch work.
    AdaptorFw,
    /// Cells serialising onto and propagating over the striped lanes.
    Wire,
    /// Queueing inside the switch fabric.
    SwitchQueue,
    /// Reassembly window on the receive board not covered by DMA or
    /// firmware work (waiting for the PDU's remaining cells).
    ReassemblyWait,
    /// Descriptor pushed, host not yet draining: interrupt-suppression
    /// delay plus handler/dispatch.
    InterruptDelay,
    /// Anything the span names don't classify.
    Other,
}

impl Stage {
    /// Every stage, in the order tables render them.
    pub const ALL: [Stage; 9] = [
        Stage::ProtocolCpu,
        Stage::BusWait,
        Stage::DmaTransfer,
        Stage::AdaptorFw,
        Stage::Wire,
        Stage::SwitchQueue,
        Stage::ReassemblyWait,
        Stage::InterruptDelay,
        Stage::Other,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::ProtocolCpu => "protocol CPU",
            Stage::BusWait => "bus wait",
            Stage::DmaTransfer => "DMA transfer",
            Stage::AdaptorFw => "adaptor firmware",
            Stage::Wire => "wire",
            Stage::SwitchQueue => "switch queueing",
            Stage::ReassemblyWait => "reassembly wait",
            Stage::InterruptDelay => "interrupt delay",
            Stage::Other => "other",
        }
    }

    /// Classifies a span by its name. The span-naming convention is the
    /// contract between the instrumented layers and this analyzer:
    /// `app.*`/`proto.*`/`driver.*`/`drain*` are host CPU, `bus.wait`
    /// is bus arbitration, `dma.*` is data on the bus, `fw.*` is
    /// firmware, `lane*` is the wire, `switch*` the fabric, `sar*` the
    /// reassembly window, and `intr.wait` the interrupt delay.
    pub fn of_span(name: &str) -> Stage {
        if name.starts_with("bus.wait") {
            Stage::BusWait
        } else if name.starts_with("dma.") {
            Stage::DmaTransfer
        } else if name.starts_with("fw.") {
            Stage::AdaptorFw
        } else if name.starts_with("lane") {
            Stage::Wire
        } else if name.starts_with("switch") {
            Stage::SwitchQueue
        } else if name.starts_with("sar") {
            Stage::ReassemblyWait
        } else if name.starts_with("intr.wait") {
            Stage::InterruptDelay
        } else if name.starts_with("app.")
            || name.starts_with("proto.")
            || name.starts_with("driver.")
            || name.starts_with("drain")
            || name.starts_with("intr")
        {
            Stage::ProtocolCpu
        } else {
            Stage::Other
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One PDU's analyzed whole-path trace: its spans, the end-to-end
/// window, and wall time attributed per [`Stage`] such that the stages
/// sum exactly to `end - start`.
#[derive(Debug, Clone)]
pub struct PduPath {
    /// The PDU.
    pub ctx: TraceCtx,
    /// Earliest span start.
    pub start: SimTime,
    /// Latest span end.
    pub end: SimTime,
    /// Wall time per stage, in [`Stage::ALL`] order (zeros included).
    pub stages: Vec<(Stage, SimDuration)>,
    /// The PDU's spans, sorted by start time (ties: longer first).
    pub spans: Vec<TimelineEvent>,
}

impl PduPath {
    /// End-to-end latency (`end - start`).
    pub fn total(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Wall time attributed to one stage.
    pub fn stage(&self, s: Stage) -> SimDuration {
        self.stages
            .iter()
            .find(|(st, _)| *st == s)
            .map(|&(_, d)| d)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Sum of all stage attributions (equals [`PduPath::total`] by
    /// construction; asserted by the analyzer).
    pub fn stage_sum(&self) -> SimDuration {
        SimDuration::from_ps(self.stages.iter().map(|&(_, d)| d.as_ps()).sum())
    }

    /// The span tree as indented text: nesting by time containment,
    /// one line per span with track, window, and duration.
    pub fn render_tree(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "PDU {} | {:.1} us end-to-end ({:.1}..{:.1} us)",
            self.ctx,
            self.total().as_us_f64(),
            self.start.as_us_f64(),
            self.end.as_us_f64()
        );
        let mut stack: Vec<SimTime> = Vec::new();
        for s in &self.spans {
            // Nest only under spans that strictly contain this one;
            // partially-overlapping pipeline neighbours are siblings.
            while let Some(&top) = stack.last() {
                if s.at >= top || s.end() > top {
                    stack.pop();
                } else {
                    break;
                }
            }
            let _ = writeln!(
                out,
                "{}{} [{}] {:.1}..{:.1} us ({:.2} us)",
                "  ".repeat(stack.len() + 1),
                s.name,
                s.track,
                s.at.as_us_f64(),
                s.end().as_us_f64(),
                s.dur.unwrap_or(SimDuration::ZERO).as_us_f64()
            );
            stack.push(s.end());
        }
        out
    }

    /// The per-stage attribution as an aligned table (µs and share),
    /// with the sum-check line the acceptance criteria ask for.
    pub fn render_stage_table(&self) -> String {
        use std::fmt::Write as _;
        let total = self.total().as_us_f64().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        for &(stage, d) in &self.stages {
            if d == SimDuration::ZERO {
                continue;
            }
            let us = d.as_us_f64();
            let _ = writeln!(
                out,
                "  {:<18} {:>8.2} us  {:>5.1} %",
                stage.label(),
                us,
                100.0 * us / total
            );
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>8.2} us  (= end-to-end: {})",
            "total",
            self.stage_sum().as_us_f64(),
            if self.stage_sum() == self.total() {
                "exact"
            } else {
                "MISMATCH"
            }
        );
        out
    }
}

/// Attributes every picosecond of a PDU's end-to-end window to one
/// [`Stage`] by sweeping the PDU's span set:
///
/// * Segment boundaries are the sorted, deduplicated span start/end
///   times, so every segment has a fixed set of covering spans.
/// * A covered segment belongs to its **innermost** active span (the
///   latest-starting; ties broken by earliest end) — a `dma.rx` span
///   inside the reassembly window wins its segment, and the residue of
///   the window is genuine reassembly wait.
/// * An uncovered segment (a gap) belongs to the next span to start,
///   i.e. the resource the PDU was waiting on; a gap's right edge is
///   always some span's start, so the attribution is total.
///
/// Stages therefore tile `[start, end]` exactly: their sum equals the
/// observed end-to-end latency by construction (and is asserted).
#[derive(Debug)]
pub struct CriticalPath;

impl CriticalPath {
    /// Analyzes one PDU. `None` when the timeline holds no spans for it.
    pub fn analyze(timeline: &Timeline, ctx: TraceCtx) -> Option<PduPath> {
        let mut spans: Vec<TimelineEvent> = timeline
            .events_for(ctx)
            .into_iter()
            .filter(|e| e.dur.is_some())
            .collect();
        if spans.is_empty() {
            return None;
        }
        spans.sort_by_key(|s| (s.at, std::cmp::Reverse(s.end())));
        let start = spans.iter().map(|s| s.at).min().expect("non-empty");
        let end = spans.iter().map(|s| s.end()).max().expect("non-empty");

        let mut bounds: Vec<SimTime> = Vec::with_capacity(spans.len() * 2);
        for s in &spans {
            bounds.push(s.at);
            bounds.push(s.end());
        }
        bounds.sort_unstable();
        bounds.dedup();

        let mut acc: BTreeMap<Stage, u64> = BTreeMap::new();
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            let seg = b.saturating_since(a).as_ps();
            if seg == 0 {
                continue;
            }
            // Innermost active span: latest start, then earliest end.
            let owner = spans
                .iter()
                .enumerate()
                .filter(|(_, s)| s.at <= a && s.end() >= b)
                .max_by_key(|(i, s)| (s.at, std::cmp::Reverse(s.end()), *i))
                .map(|(_, s)| s);
            let stage = match owner {
                Some(s) => Stage::of_span(&s.name),
                // Gap: attribute to the next span to start (what the PDU
                // was waiting for). `b` is always a span start here.
                None => spans
                    .iter()
                    .filter(|s| s.at == b)
                    .min_by_key(|s| s.end())
                    .map(|s| Stage::of_span(&s.name))
                    .unwrap_or(Stage::Other),
            };
            *acc.entry(stage).or_insert(0) += seg;
        }

        let stages: Vec<(Stage, SimDuration)> = Stage::ALL
            .iter()
            .map(|&s| (s, SimDuration::from_ps(acc.get(&s).copied().unwrap_or(0))))
            .collect();
        let path = PduPath {
            ctx,
            start,
            end,
            stages,
            spans,
        };
        debug_assert_eq!(
            path.stage_sum(),
            path.total(),
            "stage attribution must tile the end-to-end window for {ctx}"
        );
        Some(path)
    }

    /// Analyzes every PDU the timeline has spans for, in
    /// first-appearance order.
    pub fn analyze_all(timeline: &Timeline) -> Vec<PduPath> {
        timeline
            .ctxs()
            .into_iter()
            .filter_map(|c| Self::analyze(timeline, c))
            .collect()
    }

    /// Per-stage latency distributions over a set of analyzed PDUs, as
    /// `(stage, summary-in-µs)` rows in [`Stage::ALL`] order. Stages
    /// with zero time across every PDU are omitted.
    pub fn stage_percentiles(paths: &[PduPath]) -> Vec<(Stage, HistSummary)> {
        let mut out = Vec::new();
        for &stage in &Stage::ALL {
            let h = Histogram::default();
            let mut any = false;
            for p in paths {
                let us = p.stage(stage).as_us_f64();
                if us > 0.0 {
                    any = true;
                }
                h.observe(us);
            }
            if any {
                out.push((stage, h.summary()));
            }
        }
        out
    }

    /// End-to-end latency distribution (µs) over a set of analyzed PDUs.
    pub fn e2e_summary(paths: &[PduPath]) -> HistSummary {
        let h = Histogram::default();
        for p in paths {
            h.observe(p.total().as_us_f64());
        }
        h.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_share() {
        let reg = Registry::new();
        let probe = reg.probe("board").scoped("rx");
        let c = probe.counter("cells");
        c.add(3);
        probe.counter("cells").incr(); // same underlying cell
        assert_eq!(c.get(), 4);
        assert_eq!(reg.snapshot().counter("board.rx.cells"), 4);
        assert_eq!(reg.snapshot().counter("board.rx.missing"), 0);
    }

    #[test]
    fn detached_probes_do_not_collide() {
        let a = Probe::detached();
        let b = Probe::detached();
        a.counter("x").add(5);
        assert_eq!(b.counter("x").get(), 0);
    }

    #[test]
    fn snapshot_ordering_is_deterministic() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.counter("m.mid").add(3);
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        assert_eq!(keys, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn sum_counters_respects_path_boundaries() {
        let reg = Registry::new();
        reg.counter("node0.rx.cells").add(2);
        reg.counter("node0.rx.pdus").add(3);
        reg.counter("node0.rxtra.cells").add(100);
        assert_eq!(reg.snapshot().sum_counters("node0.rx"), 5);
    }

    #[test]
    fn suffix_query_finds_per_node_counters() {
        let reg = Registry::new();
        reg.counter("node0.board.rx.cells").add(1);
        reg.counter("node1.board.rx.cells").add(2);
        reg.counter("node1.board.rx.cells_rejected").add(9);
        let snap = reg.snapshot();
        let total: u64 = snap.counters_with_suffix("cells").map(|(_, v)| v).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn gauge_and_histogram_snapshot() {
        let reg = Registry::new();
        reg.gauge("q.depth").set(7.5);
        let h = reg.histogram("q.len");
        h.record(SimTime::ZERO, 0.0);
        h.record(SimTime::from_us(10), 4.0); // 0 held 10 us
        h.record(SimTime::from_us(30), 0.0); // 4 held 20 us
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("q.depth"), 7.5);
        let s = snap.hists["q.len"];
        assert!((s.time_weighted_mean - (4.0 * 20.0 / 30.0)).abs() < 1e-9);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn observe_percentiles_estimate_from_buckets() {
        let h = Histogram::default();
        for i in 1..=100u32 {
            h.observe(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.samples, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        // √2-spaced buckets: estimates land within one bucket (≤ √2×)
        // of the true percentile, and never outside [min, max].
        assert!(s.p50 >= 50.0 && s.p50 <= 50.0 * 1.5, "p50 {}", s.p50);
        assert!(s.p95 >= 95.0 && s.p95 <= 100.0, "p95 {}", s.p95);
        assert!(s.p99 >= 99.0 && s.p99 <= 100.0, "p99 {}", s.p99);
        assert!((s.time_weighted_mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_of_constant_distribution_are_exact() {
        let h = Histogram::default();
        for _ in 0..10 {
            h.observe(42.0);
        }
        let s = h.summary();
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p95, 42.0);
        assert_eq!(s.p99, 42.0);
    }

    #[test]
    fn snapshot_to_json_round_trips() {
        let reg = Registry::new();
        reg.counter("a.b").add(42);
        reg.gauge("g").set(1.5);
        reg.histogram("h").record(SimTime::ZERO, 2.0);
        let text = reg.snapshot().to_json().render_pretty();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(42)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(1.5)
        );
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("p50").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn timeline_records_spans_and_exports_chrome_json() {
        let tl = Timeline::new(16);
        tl.set_enabled(true);
        tl.span(
            "host0.cpu",
            "intr",
            SimTime::from_us(10),
            SimTime::from_us(85),
        );
        tl.instant("board0.rx", "cell", SimTime::from_us(12));
        let doc = tl.to_chrome_json();
        let evs = doc.get("traceEvents").unwrap().items();
        // 2 events + 2 thread_name metadata records.
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(evs[0].get("dur").unwrap().as_f64(), Some(75.0));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("i"));
        // Round-trip through the parser.
        let text = doc.render_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn timeline_disabled_records_nothing() {
        let tl = Timeline::new(4);
        tl.instant("t", "x", SimTime::ZERO);
        assert_eq!(tl.events().len(), 0);
    }

    #[test]
    fn timeline_eviction_feeds_registry_counter() {
        let reg = Registry::new();
        let probe = reg.probe("sim");
        let tl = Timeline::with_probe(2, &probe);
        tl.set_enabled(true);
        for i in 0..5u64 {
            tl.instant("t", format!("e{i}"), SimTime::from_us(i));
        }
        assert_eq!(tl.events().len(), 2);
        assert_eq!(tl.dropped(), 3);
        assert_eq!(reg.snapshot().counter("sim.timeline.dropped"), 3);
    }

    #[test]
    fn timeline_clones_share_the_ring() {
        let tl = Timeline::new(8);
        tl.set_enabled(true);
        let clone = tl.clone();
        clone.instant("t", "from-clone", SimTime::ZERO);
        assert_eq!(tl.events().len(), 1);
        assert_eq!(tl.events()[0].name, "from-clone");
    }

    #[test]
    fn ctx_events_filter_and_export() {
        let tl = Timeline::new(16);
        tl.set_enabled(true);
        let a = TraceCtx { host: 0, pdu: 1 };
        let b = TraceCtx { host: 0, pdu: 2 };
        tl.span_ctx(
            "n0.proto",
            "proto.tx",
            a,
            SimTime::ZERO,
            SimTime::from_us(5),
        );
        tl.span_ctx(
            "n0.proto",
            "proto.tx",
            b,
            SimTime::from_us(5),
            SimTime::from_us(9),
        );
        tl.instant("n0.app", "send", SimTime::ZERO); // no ctx
        assert_eq!(tl.events_for(a).len(), 1);
        assert_eq!(tl.ctxs(), vec![a, b]);
        let doc = tl.to_chrome_json();
        let evs = doc.get("traceEvents").unwrap().items();
        assert_eq!(
            evs[0].get("args").unwrap().get("ctx").unwrap().as_str(),
            Some("h0:p1")
        );
    }

    /// A hand-built span set exercising nesting, gaps, and the sum
    /// invariant:
    ///
    /// ```text
    /// 0        10        20        30        40        50
    /// [ proto.tx ][ fw.tx               ]          [ drain ]
    ///               [dma.tx]    (gap → intr.wait span at 40)
    ///                              [intr.wait        ]
    /// ```
    #[test]
    fn critical_path_attributes_every_picosecond() {
        let tl = Timeline::new(64);
        tl.set_enabled(true);
        let ctx = TraceCtx { host: 0, pdu: 7 };
        let us = SimTime::from_us;
        tl.span_ctx("n0.proto", "proto.tx", ctx, us(0), us(10));
        tl.span_ctx("n0.board.tx", "fw.tx", ctx, us(10), us(30));
        tl.span_ctx("n0.board.tx.dma", "dma.tx", ctx, us(14), us(20));
        tl.span_ctx("n1.host", "intr.wait", ctx, us(30), us(45));
        tl.span_ctx("n1.host", "drain", ctx, us(45), us(50));
        let p = CriticalPath::analyze(&tl, ctx).expect("spans exist");
        assert_eq!(p.total(), SimDuration::from_us(50));
        assert_eq!(p.stage_sum(), p.total());
        // proto.tx 10 + drain 5 = 15 protocol CPU.
        assert_eq!(p.stage(Stage::ProtocolCpu), SimDuration::from_us(15));
        // dma.tx wins its 6 us inside fw.tx; fw keeps the rest (14 us).
        assert_eq!(p.stage(Stage::DmaTransfer), SimDuration::from_us(6));
        assert_eq!(p.stage(Stage::AdaptorFw), SimDuration::from_us(14));
        assert_eq!(p.stage(Stage::InterruptDelay), SimDuration::from_us(15));
        let tree = p.render_tree();
        // dma.tx is nested one level deeper than fw.tx.
        let fw_line = tree.lines().find(|l| l.contains("fw.tx")).unwrap();
        let dma_line = tree.lines().find(|l| l.contains("dma.tx")).unwrap();
        let indent = |l: &str| l.chars().take_while(|c| *c == ' ').count();
        assert!(indent(dma_line) > indent(fw_line), "{tree}");
        let table = p.render_stage_table();
        assert!(table.contains("exact"), "{table}");
    }

    #[test]
    fn critical_path_gap_goes_to_next_span() {
        let tl = Timeline::new(16);
        tl.set_enabled(true);
        let ctx = TraceCtx { host: 1, pdu: 3 };
        let us = SimTime::from_us;
        tl.span_ctx("a", "proto.tx", ctx, us(0), us(10));
        // 10..25 uncovered, then a DMA span: the gap is DMA wait.
        tl.span_ctx("b", "dma.rx", ctx, us(25), us(30));
        let p = CriticalPath::analyze(&tl, ctx).unwrap();
        assert_eq!(p.stage(Stage::ProtocolCpu), SimDuration::from_us(10));
        assert_eq!(p.stage(Stage::DmaTransfer), SimDuration::from_us(20));
        assert_eq!(p.stage_sum(), p.total());
    }

    #[test]
    fn stage_percentiles_summarise_paths() {
        let tl = Timeline::new(64);
        tl.set_enabled(true);
        let us = SimTime::from_us;
        for i in 0..4u32 {
            let ctx = TraceCtx { host: 0, pdu: i };
            let base = SimTime::from_us(100 * i as u64);
            tl.span_ctx("p", "proto.tx", ctx, base, base + SimDuration::from_us(10));
            tl.span_ctx(
                "d",
                "dma.tx",
                ctx,
                base + SimDuration::from_us(10),
                base + SimDuration::from_us(10 + 2 * (i as u64 + 1)),
            );
        }
        let _ = us; // keep the helper idiom consistent with other tests
        let paths = CriticalPath::analyze_all(&tl);
        assert_eq!(paths.len(), 4);
        let rows = CriticalPath::stage_percentiles(&paths);
        let (_, proto) = rows.iter().find(|(s, _)| *s == Stage::ProtocolCpu).unwrap();
        assert_eq!(proto.samples, 4);
        assert_eq!(proto.min, 10.0);
        let (_, dma) = rows.iter().find(|(s, _)| *s == Stage::DmaTransfer).unwrap();
        assert_eq!(dma.min, 2.0);
        assert_eq!(dma.max, 8.0);
        let e2e = CriticalPath::e2e_summary(&paths);
        assert_eq!(e2e.samples, 4);
        assert_eq!(e2e.max, 18.0);
    }
}
