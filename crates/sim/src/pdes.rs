//! Parallel discrete-event support: the shard-local event queue and the
//! partition-invariant tie-breaking key.
//!
//! The sequential engine orders same-instant events by a global push
//! sequence number — cheap and exact, but meaningless once pushes happen
//! concurrently on several threads: the interleaving of a global counter
//! would depend on scheduling, not on the simulation. The parallel
//! engine replaces it with a [`PushKey`] that is a pure function of the
//! *causal* push site:
//!
//! * `t_push` — the virtual time of the event whose handler pushed this
//!   one (`SimTime::ZERO` for scenario seed events);
//! * `origin` — the node whose handler performed the push (handlers
//!   only ever run on the shard owning their node, so this names the
//!   pushing shard too);
//! * `ctr` — a per-origin monotone counter, incremented on every push
//!   the origin makes.
//!
//! Within one origin the key increases in push order, so same-instant
//! events from one node dispatch exactly as the sequential `(time, seq)`
//! order does. Across origins, same-instant ties fall back to
//! `(t_push, origin)` — an order every partitioning computes
//! identically, because none of the three fields mentions a shard
//! count. That is the whole determinism argument in one line: the
//! dispatch order `(time, PushKey)` is a total order over events that
//! any number of threads agree on, so `shards = 1, 2, 4, …` all replay
//! the same history. The shard-equivalence suite enforces the remaining
//! obligation (that the fallback matches the sequential engine's pick
//! on the workloads we run) by byte-comparing registry snapshots.
//!
//! [`ShardQueue`] is the per-shard pending set: a plain binary heap over
//! `(SimTime, PushKey)`. Each shard's queue publishes its lifetime push
//! count as `<scope>.events.scheduled`, exactly like
//! [`EventQueue`](crate::EventQueue) does, so the merged registry keeps
//! the invariant *merged `engine.events.scheduled` = Σ per-shard
//! `total_pushed`* that `tests/observability.rs` pins.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::obs::{Counter, Probe};
use crate::time::SimTime;

/// Partition-invariant tie-break key for same-instant events. Ordering
/// is lexicographic over `(t_push, origin, ctr)` — the derived `Ord`
/// on the field order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PushKey {
    /// Virtual time of the handler that pushed the event
    /// (`SimTime::ZERO` for scenario seeds).
    pub t_push: SimTime,
    /// Index of the node whose handler pushed the event.
    pub origin: u32,
    /// Per-origin push counter (monotone across that origin's pushes).
    pub ctr: u64,
}

impl PushKey {
    /// The key for the `n`-th seed event enqueued on behalf of `origin`
    /// before the simulation starts.
    pub fn seed(origin: u32, ctr: u64) -> Self {
        PushKey {
            t_push: SimTime::ZERO,
            origin,
            ctr,
        }
    }
}

/// A shard's pending-event set, ordered by `(time, PushKey)` — the
/// global dispatch order restricted to the events this shard owns.
pub struct ShardQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    pushed: u64,
    scheduled: Counter,
}

struct Entry<E> {
    time: SimTime,
    key: PushKey,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, PushKey) {
        (self.time, self.key)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl<E> Default for ShardQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ShardQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        ShardQueue {
            heap: BinaryHeap::new(),
            pushed: 0,
            scheduled: Counter::detached(),
        }
    }

    /// Publishes the lifetime push count as `<scope>.events.scheduled`
    /// in `probe`'s registry, carrying over pushes made before
    /// attaching — the same contract as `EventQueue::attach_probe`, so
    /// a shard's registry scope is indistinguishable from the
    /// sequential engine's. That contract includes the `<scope>.queue.*`
    /// internals keys (`resizes`, `bucket_high_water`): a shard queue
    /// is a plain heap, so they are registered at zero purely for key-
    /// set parity with the calendar backend.
    pub fn attach_probe(&mut self, probe: &Probe) {
        self.scheduled = probe.scoped("events").counter("scheduled");
        self.scheduled.add(self.pushed);
        let qp = probe.scoped("queue");
        qp.counter("resizes");
        qp.gauge("bucket_high_water");
    }

    /// Schedules `event` at `at` under tie-break key `key`.
    pub fn push(&mut self, at: SimTime, key: PushKey, event: E) {
        self.pushed += 1;
        self.scheduled.incr();
        self.heap.push(Reverse(Entry {
            time: at,
            key,
            event,
        }));
    }

    /// Removes and returns the earliest `(time, key, event)`.
    pub fn pop(&mut self) -> Option<(SimTime, PushKey, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.key, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (diagnostic; mirrors the
    /// `events.scheduled` counter when a probe is attached).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

impl<E> std::fmt::Debug for ShardQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardQueue")
            .field("pending", &self.len())
            .field("total_pushed", &self.pushed)
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t_push: u64, origin: u32, ctr: u64) -> PushKey {
        PushKey {
            t_push: SimTime(t_push),
            origin,
            ctr,
        }
    }

    #[test]
    fn pops_by_time_then_key() {
        let mut q = ShardQueue::new();
        let t = SimTime::from_us(5);
        // Same instant: order falls back to (t_push, origin, ctr).
        q.push(t, key(30, 0, 0), "late-push");
        q.push(t, key(10, 1, 4), "early-push-high-origin");
        q.push(t, key(10, 0, 7), "early-push-low-origin");
        q.push(SimTime::from_us(1), key(99, 9, 9), "earlier-time");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                "earlier-time",
                "early-push-low-origin",
                "early-push-high-origin",
                "late-push"
            ]
        );
    }

    #[test]
    fn same_origin_same_instant_preserves_push_order() {
        // The sequential engine's FIFO-within-instant contract, restated
        // for one origin: ctr is monotone in push order, so the pops
        // come back in push order.
        let mut q = ShardQueue::new();
        let t = SimTime::from_us(3);
        for i in 0..100u64 {
            q.push(t, key(1_000, 2, i), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().2, i);
        }
    }

    #[test]
    fn probe_mirrors_total_pushed() {
        use crate::obs::Registry;
        let reg = Registry::new();
        let mut q = ShardQueue::new();
        q.push(SimTime::from_ns(1), PushKey::seed(0, 0), ());
        q.attach_probe(&reg.probe("engine"));
        assert_eq!(reg.snapshot().counter("engine.events.scheduled"), 1);
        q.push(SimTime::from_ns(2), PushKey::seed(0, 1), ());
        assert_eq!(
            reg.snapshot().counter("engine.events.scheduled"),
            q.total_pushed()
        );
    }

    #[test]
    fn key_ordering_is_lexicographic() {
        assert!(key(1, 5, 9) < key(2, 0, 0));
        assert!(key(2, 0, 9) < key(2, 1, 0));
        assert!(key(2, 1, 0) < key(2, 1, 1));
    }
}
