//! Time-ordered, FIFO-stable event queue.
//!
//! Built on a binary heap keyed by `(time, sequence)`: events scheduled for
//! the same instant are dispatched in the order they were pushed. This
//! stability is what makes whole-system simulations reproducible — e.g. a
//! DMA-completion and a cell-arrival landing on the same picosecond always
//! resolve the same way.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::obs::{Counter, Probe};
use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A priority queue of `(SimTime, E)` pairs, earliest first, FIFO within a
/// single instant.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    scheduled: Counter,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            scheduled: Counter::detached(),
        }
    }

    /// Publishes the lifetime push count as `<scope>.events.scheduled` in
    /// `probe`'s registry. Pushes made before attaching are carried over,
    /// so the counter always equals [`EventQueue::total_pushed`].
    pub fn attach_probe(&mut self, probe: &Probe) {
        self.scheduled = probe.scoped("events").counter("scheduled");
        self.scheduled.add(self.pushed);
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.scheduled.incr();
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (diagnostic).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("total_pushed", &self.pushed)
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_earliest_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5), "b");
        q.push(SimTime::from_ns(1), "a");
        q.push(SimTime::from_ns(9), "c");
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(5), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_preserve_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(3);
        for i in 0..1000 {
            q.push(t, i);
        }
        for i in 0..1000 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(30), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_ns(20), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(1), ());
        q.push(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
        q.clear();
        assert!(q.is_empty());
        // total_pushed survives clear (it is a lifetime diagnostic).
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn attached_probe_mirrors_total_pushed() {
        use crate::obs::Registry;
        let reg = Registry::new();
        let mut q = EventQueue::new();
        // Pushes before attaching are carried over...
        q.push(SimTime::from_ns(1), ());
        q.attach_probe(&reg.probe("engine"));
        assert_eq!(reg.snapshot().counter("engine.events.scheduled"), 1);
        // ...and later pushes keep the counter in lockstep, across clear().
        q.push(SimTime::from_ns(2), ());
        q.clear();
        q.push(SimTime::from_ns(3), ());
        assert_eq!(
            reg.snapshot().counter("engine.events.scheduled"),
            q.total_pushed()
        );
    }
}
