//! Time-ordered, FIFO-stable event queue.
//!
//! Two interchangeable backends sit behind one API, both keyed by
//! `(time, sequence)` so events scheduled for the same instant are
//! dispatched in the order they were pushed:
//!
//! * [`QueueKind::Heap`] — a binary heap: O(log n) push/pop, the
//!   original engine. [`EventQueue::new`] builds this one, so
//!   standalone queues behave exactly as they always have.
//! * [`QueueKind::Calendar`] — a bucketed calendar queue (Brown's
//!   "Calendar Queues", CACM 1988): events hash into time-sliced
//!   buckets like appointments onto the days of a desk calendar, and
//!   the pop scan walks forward from the last-popped day. Push and pop
//!   are O(1) amortised once the bucket width matches the event
//!   density, which is what makes million-event runs cheap.
//!
//! The `(time, seq)` key is a *total* order, so any correct priority
//! queue over it yields the same pop sequence: the backend choice can
//! never change simulation results, only how fast they arrive. The
//! `queue_equivalence` integration test drives both backends through
//! identical seeded schedules and asserts the sequences match; the
//! bench-snapshot gates assert the stronger end-to-end form (same
//! snapshots bit-for-bit).
//!
//! This stability is what makes whole-system simulations reproducible —
//! e.g. a DMA-completion and a cell-arrival landing on the same
//! picosecond always resolve the same way.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::obs::{Counter, Gauge, Probe};
use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The total dispatch order.
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.key().cmp(&self.key())
    }
}

/// Which backing store an [`EventQueue`] uses. Both produce identical
/// pop sequences (the key is a total order); they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Binary heap: O(log n) push/pop. The original engine.
    Heap,
    /// Bucketed calendar queue: O(1) amortised push/pop. The default
    /// for scenario runs (`SimConfig::queue`).
    #[default]
    Calendar,
}

/// Smallest bucket count the calendar ever uses.
const MIN_BUCKETS: usize = 16;
/// Initial bucket width: 256 ns of virtual time per bucket (cell times
/// on a 622 Mbps link are ~680 ns, so fresh queues start near the
/// density they will see). Resizes re-derive it from the live spread.
const INITIAL_WIDTH_PS: u64 = 256_000;
/// Floor for the derived bucket width (1 ns): a degenerate spread must
/// not drive the width to zero.
const MIN_WIDTH_PS: u64 = 1_000;

/// The calendar backend: `buckets[day % nbuckets]` holds every pending
/// entry whose "day" (`time / width`) hashes there; days alias
/// year-periodically, so each scan filters for the day it is visiting.
///
/// Invariant: `cursor_day` never exceeds the day of the earliest
/// pending entry (pop re-anchors it to the popped minimum; push rewinds
/// it for out-of-order arrivals), so the forward year-scan always meets
/// the earliest day first.
struct Calendar<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Picoseconds of virtual time each bucket spans.
    width_ps: u64,
    /// Absolute day (`time / width`) the pop scan starts from.
    cursor_day: u64,
    len: usize,
    /// Lifetime grow+shrink rebuilds (mirrored to `queue.resizes`).
    resizes_total: u64,
    /// Most entries any bucket ever held after a push (mirrored to
    /// `queue.bucket_high_water`) — the calendar's load-balance health:
    /// a high value means the width no longer matches event density.
    bucket_hw: usize,
    resizes: Counter,
    high_water: Gauge,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width_ps: INITIAL_WIDTH_PS,
            cursor_day: 0,
            len: 0,
            resizes_total: 0,
            bucket_hw: 0,
            resizes: Counter::detached(),
            high_water: Gauge::default(),
        }
    }

    fn day_of(&self, t: SimTime) -> u64 {
        t.as_ps() / self.width_ps
    }

    fn push(&mut self, e: Entry<E>) {
        let day = self.day_of(e.time);
        // An entry landing before the scan cursor (legal for standalone
        // queues; simulations never rewind) drags the cursor back so
        // the next scan still meets the earliest day first.
        if day < self.cursor_day {
            self.cursor_day = day;
        }
        let b = (day % self.buckets.len() as u64) as usize;
        self.buckets[b].push(e);
        self.len += 1;
        let occ = self.buckets[b].len();
        if occ > self.bucket_hw {
            self.bucket_hw = occ;
            self.high_water.set(occ as f64);
        }
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// `(bucket, index)` of the earliest entry by `(time, seq)`.
    ///
    /// Walks one calendar year forward from the cursor — the common
    /// case finds the next event within a few days — then falls back to
    /// a global scan when the pending set is sparser than a year.
    fn find_min(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        for i in 0..n {
            let day = self.cursor_day + i;
            let b = (day % n) as usize;
            // Day membership as a half-open time range — two compares
            // per entry instead of a division.
            let day_lo = day.saturating_mul(self.width_ps);
            let day_hi = day_lo.saturating_add(self.width_ps);
            let mut best: Option<(usize, (SimTime, u64))> = None;
            for (j, e) in self.buckets[b].iter().enumerate() {
                let ps = e.time.as_ps();
                if ps < day_lo || ps >= day_hi {
                    continue; // lives in another year of this bucket
                }
                if best.is_none_or(|(_, k)| e.key() < k) {
                    best = Some((j, e.key()));
                }
            }
            if let Some((j, _)) = best {
                return Some((b, j));
            }
        }
        // Sparse tail: nothing within a year of the cursor.
        let mut best: Option<((usize, usize), (SimTime, u64))> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (j, e) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, k)| e.key() < k) {
                    best = Some(((b, j), e.key()));
                }
            }
        }
        best.map(|(pos, _)| pos)
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        let (b, j) = self.find_min()?;
        let e = self.buckets[b].swap_remove(j);
        self.len -= 1;
        // The popped entry had the minimum time, so its day lower-bounds
        // every remaining day: re-anchoring the cursor here keeps the
        // scan invariant and skips the already-drained past.
        self.cursor_day = self.day_of(e.time);
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.resize(self.buckets.len() / 2);
        }
        Some(e)
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.find_min().map(|(b, j)| self.buckets[b][j].time)
    }

    /// Rebuilds with `n` buckets and a width re-derived from the live
    /// spread of pending times, so one year keeps covering the working
    /// set as the simulation's event density drifts.
    fn resize(&mut self, n: usize) {
        self.resizes_total += 1;
        self.resizes.incr();
        let entries: Vec<Entry<E>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        if !entries.is_empty() {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for e in &entries {
                lo = lo.min(e.time.as_ps());
                hi = hi.max(e.time.as_ps());
            }
            self.width_ps = ((hi - lo) / entries.len() as u64).max(MIN_WIDTH_PS);
            self.cursor_day = lo / self.width_ps;
        }
        self.buckets = (0..n).map(|_| Vec::new()).collect();
        for e in entries {
            let b = ((e.time.as_ps() / self.width_ps) % n as u64) as usize;
            self.buckets[b].push(e);
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }
}

enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(Calendar<E>),
}

/// A priority queue of `(SimTime, E)` pairs, earliest first, FIFO within a
/// single instant.
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    pushed: u64,
    scheduled: Counter,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty heap-backed queue (the legacy default for standalone
    /// use; scenario harnesses select via [`EventQueue::with_kind`]).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Heap)
    }

    /// An empty queue on the chosen backend.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue {
            backend: match kind {
                QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
                QueueKind::Calendar => Backend::Calendar(Calendar::new()),
            },
            next_seq: 0,
            pushed: 0,
            scheduled: Counter::detached(),
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self.backend {
            Backend::Heap(_) => QueueKind::Heap,
            Backend::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Publishes the lifetime push count as `<scope>.events.scheduled` in
    /// `probe`'s registry. Pushes made before attaching are carried over,
    /// so the counter always equals [`EventQueue::total_pushed`].
    ///
    /// Queue internals ride along under `<scope>.queue.*`: calendar
    /// rebuilds (`resizes`) and the bucket-occupancy high water
    /// (`bucket_high_water`). Both keys are registered for **every**
    /// backend so the snapshot key set is identical across
    /// [`QueueKind`]s — the heap has no buckets and legitimately
    /// reports zero. The values are backend diagnostics, not semantics:
    /// equivalence comparisons strip `<scope>.queue.*` before
    /// byte-comparing.
    pub fn attach_probe(&mut self, probe: &Probe) {
        self.scheduled = probe.scoped("events").counter("scheduled");
        self.scheduled.add(self.pushed);
        let qp = probe.scoped("queue");
        let resizes = qp.counter("resizes");
        let high_water = qp.gauge("bucket_high_water");
        if let Backend::Calendar(c) = &mut self.backend {
            resizes.add(c.resizes_total);
            high_water.set(c.bucket_hw as f64);
            c.resizes = resizes;
            c.high_water = high_water;
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.scheduled.incr();
        let entry = Entry {
            time: at,
            seq,
            event,
        };
        match &mut self.backend {
            Backend::Heap(h) => h.push(entry),
            Backend::Calendar(c) => c.push(entry),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap(h) => h.pop(),
            Backend::Calendar(c) => c.pop(),
        }
        .map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|e| e.time),
            Backend::Calendar(c) => c.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len,
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (diagnostic).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(h) => h.clear(),
            Backend::Calendar(c) => c.clear(),
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("kind", &self.kind())
            .field("pending", &self.len())
            .field("total_pushed", &self.pushed)
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOTH: [QueueKind; 2] = [QueueKind::Heap, QueueKind::Calendar];

    #[test]
    fn pops_earliest_first() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_ns(5), "b");
            q.push(SimTime::from_ns(1), "a");
            q.push(SimTime::from_ns(9), "c");
            assert_eq!(q.pop(), Some((SimTime::from_ns(1), "a")));
            assert_eq!(q.pop(), Some((SimTime::from_ns(5), "b")));
            assert_eq!(q.pop(), Some((SimTime::from_ns(9), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn equal_times_preserve_push_order() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_us(3);
            for i in 0..1000 {
                q.push(t, i);
            }
            for i in 0..1000 {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_ns(10), 1);
            q.push(SimTime::from_ns(30), 3);
            assert_eq!(q.pop().unwrap().1, 1);
            q.push(SimTime::from_ns(20), 2);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
        }
    }

    #[test]
    fn bookkeeping() {
        for kind in BOTH {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_ns(1), ());
            q.push(SimTime::from_ns(2), ());
            assert_eq!(q.len(), 2);
            assert_eq!(q.total_pushed(), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
            q.clear();
            assert!(q.is_empty());
            // total_pushed survives clear (it is a lifetime diagnostic).
            assert_eq!(q.total_pushed(), 2);
        }
    }

    #[test]
    fn attached_probe_mirrors_total_pushed() {
        use crate::obs::Registry;
        for kind in BOTH {
            let reg = Registry::new();
            let mut q = EventQueue::with_kind(kind);
            // Pushes before attaching are carried over...
            q.push(SimTime::from_ns(1), ());
            q.attach_probe(&reg.probe("engine"));
            assert_eq!(reg.snapshot().counter("engine.events.scheduled"), 1);
            // ...and later pushes keep the counter in lockstep, across clear().
            q.push(SimTime::from_ns(2), ());
            q.clear();
            q.push(SimTime::from_ns(3), ());
            assert_eq!(
                reg.snapshot().counter("engine.events.scheduled"),
                q.total_pushed()
            );
        }
    }

    #[test]
    fn queue_internals_are_probed_on_both_backends() {
        use crate::obs::Registry;
        for kind in BOTH {
            let reg = Registry::new();
            let mut q = EventQueue::with_kind(kind);
            q.attach_probe(&reg.probe("engine"));
            // Drive far past the grow threshold so the calendar resizes
            // and fills buckets.
            for i in 0..200u64 {
                q.push(SimTime::from_us(i % 7), i);
            }
            let snap = reg.snapshot();
            // The key set is identical across backends (satellite:
            // snapshot equivalence across QueueKinds)…
            assert!(snap.counters.contains_key("engine.queue.resizes"));
            assert!(snap.gauges.contains_key("engine.queue.bucket_high_water"));
            match kind {
                // …the heap legitimately reports zero…
                QueueKind::Heap => {
                    assert_eq!(snap.counter("engine.queue.resizes"), 0);
                    assert_eq!(snap.gauge("engine.queue.bucket_high_water"), 0.0);
                }
                // …and the calendar reports real internals.
                QueueKind::Calendar => {
                    assert!(snap.counter("engine.queue.resizes") > 0);
                    assert!(snap.gauge("engine.queue.bucket_high_water") >= 1.0);
                }
            }
        }
    }

    #[test]
    fn calendar_internals_carry_over_at_attach() {
        use crate::obs::Registry;
        let reg = Registry::new();
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        for i in 0..200u64 {
            q.push(SimTime::from_us(i % 7), i);
        }
        q.attach_probe(&reg.probe("engine"));
        let snap = reg.snapshot();
        assert!(snap.counter("engine.queue.resizes") > 0);
        assert!(snap.gauge("engine.queue.bucket_high_water") >= 1.0);
    }

    #[test]
    fn new_stays_heap_and_with_kind_selects() {
        assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Heap);
        assert_eq!(
            EventQueue::<()>::with_kind(QueueKind::Calendar).kind(),
            QueueKind::Calendar
        );
        assert_eq!(QueueKind::default(), QueueKind::Calendar);
    }

    #[test]
    fn calendar_survives_resize_cycles() {
        // Push far past the grow threshold, drain past the shrink one,
        // and check the order never wavers. Times are scattered widely
        // so resizes actually re-derive the width.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        let mut times: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 4093).collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_us(t), i);
        }
        times.sort();
        for &t in &times {
            let (at, _) = q.pop().unwrap();
            assert_eq!(at, SimTime::from_us(t));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_handles_sparse_far_future_events() {
        // A lone event many "years" ahead of the cursor exercises the
        // global-scan fallback.
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.push(SimTime::from_ns(1), 0);
        q.push(SimTime::from_secs(20), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(20)));
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn backends_pop_identical_sequences_under_seeded_schedules() {
        use crate::rng::SimRng;
        for seed in [1u64, 42, 1994] {
            let mut rng = SimRng::new(seed);
            let mut heap = EventQueue::with_kind(QueueKind::Heap);
            let mut cal = EventQueue::with_kind(QueueKind::Calendar);
            let mut now = 0u64;
            for i in 0..5000u64 {
                // Mostly forward pushes with clustered instants, plus
                // interleaved pops, like a real simulation schedule.
                let at = now + rng.gen_range(2_000_000);
                heap.push(SimTime(at), i);
                cal.push(SimTime(at), i);
                if rng.gen_bool(0.4) {
                    let a = heap.pop();
                    let b = cal.pop();
                    assert_eq!(a, b);
                    if let Some((t, _)) = a {
                        now = now.max(t.as_ps());
                    }
                }
            }
            loop {
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
