//! # osiris-sim — discrete-event simulation kernel
//!
//! The OSIRIS reproduction replaces 1994 hardware (TURBOchannel DECstations,
//! the OSIRIS ATM board, a striped SONET link) with a deterministic
//! discrete-event simulation. This crate is the simulation substrate shared
//! by every other crate in the workspace:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time in picoseconds, exact for
//!   both the 25 MHz TURBOchannel/R3000 clock (40 000 ps) and the 175 MHz
//!   Alpha clock.
//! * [`EventQueue`] — a time-ordered, FIFO-stable event queue.
//! * [`Simulation`] / [`Model`] — a minimal poll-style driver loop in the
//!   spirit of event-driven network stacks (smoltcp): the model is a plain
//!   state machine, the kernel just dispatches events in time order.
//! * [`FifoResource`] — reservation-based modelling of serially shared
//!   hardware (a bus, a CPU, a firmware engine, a link lane).
//! * [`stats`] — counters, throughput meters, and histograms used by the
//!   experiment harness.
//! * [`SimRng`] — a tiny, dependency-free, fully deterministic RNG
//!   (SplitMix64) used for skew jitter and fault injection.
//!
//! Everything is deterministic: given the same configuration and seed, a
//! simulation produces bit-identical results, which the test suite relies on.

pub mod event;
pub mod faults;
pub mod json;
pub mod obs;
pub mod pdes;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{EventQueue, QueueKind};
pub use faults::{
    CellFate, FaultComponent, FaultInjector, FaultPlan, LaneOutage, PointFault, PointFaultKind,
};
pub use json::Json;
pub use obs::series::{SeriesData, SeriesDump, SeriesKind, SeriesSet};
pub use obs::{
    CriticalPath, HistSummary, PduPath, Probe, Registry, Snapshot, Stage, SymId, Timeline,
    TimelineEvent, TraceCtx,
};
pub use pdes::{PushKey, ShardQueue};
pub use resource::FifoResource;
pub use rng::SimRng;
pub use time::{Clock, SimDuration, SimTime};
pub use trace::Trace;

/// Simulation-kernel configuration shared by harnesses: the sizing knobs
/// of the observability machinery plus the wire-level [`FaultPlan`]
/// (everything else about a run lives in the harness's own config, e.g.
/// `TestbedConfig`).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Capacity of the human-readable [`Trace`] ring.
    pub trace_capacity: usize,
    /// Capacity of the typed [`Timeline`] event buffer.
    pub timeline_capacity: usize,
    /// The seeded fault-injection plan (defaults to injecting nothing).
    pub faults: FaultPlan,
    /// Event-queue backend for the run. Both backends dispatch the
    /// exact same `(time, seq)` order, so this knob can never change a
    /// result — only how fast a run finishes. Defaults to the calendar
    /// queue.
    pub queue: QueueKind,
    /// How many parallel shards the harness partitions the model into.
    /// `1` (the default) is the exact single-threaded engine path;
    /// `N ≥ 2` opts a scenario into the conservative-lookahead parallel
    /// engine (see `osiris::shard`), which produces the same results —
    /// the shard-equivalence suite holds it to byte-identical snapshots.
    pub shards: usize,
    /// Period of the deterministic telemetry sampler
    /// ([`obs::series::SeriesSet`]) in simulated time; `None` (the
    /// default) disables sampling. Sampling is passive — it can never
    /// change a result, which the telemetry equivalence tests pin.
    pub sample_every: Option<SimDuration>,
    /// Ring capacity (windows per series) of each sampled time series.
    pub series_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        // 4096 matches the historical hardcoded trace ring; the timeline
        // holds full spans (every event of a long ping-pong fits).
        SimConfig {
            trace_capacity: 4096,
            timeline_capacity: 1 << 16,
            faults: FaultPlan::default(),
            queue: QueueKind::default(),
            shards: 1,
            sample_every: None,
            series_capacity: 4096,
        }
    }
}

/// A simulation model: a state machine advanced by timestamped events.
///
/// Implementors own all component state (hosts, boards, links). The kernel
/// guarantees events are delivered in non-decreasing time order and that
/// events scheduled for the same instant are delivered in scheduling order
/// (FIFO), which makes simulations reproducible.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at virtual time `now`, possibly scheduling more.
    fn handle(&mut self, now: SimTime, ev: Self::Event, q: &mut EventQueue<Self::Event>);
}

/// Drives a [`Model`] by popping events in time order.
#[derive(Debug)]
pub struct Simulation<M: Model> {
    /// The model under simulation (public so harnesses can inspect state).
    pub model: M,
    /// The pending-event queue (public so harnesses can seed initial events).
    pub queue: EventQueue<M::Event>,
    now: SimTime,
    steps: u64,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            steps: 0,
        }
    }

    /// Current virtual time (the timestamp of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Dispatches the next event. Returns `false` when the queue is empty.
    ///
    /// # Panics
    /// Panics if an event with a timestamp earlier than the current time is
    /// encountered; that is always a model bug (causality violation).
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((t, ev)) => {
                assert!(
                    t >= self.now,
                    "causality violation: event at {t} dispatched at {}",
                    self.now
                );
                self.now = t;
                self.steps += 1;
                self.model.handle(t, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty or virtual time would exceed `deadline`.
    ///
    /// Events stamped exactly at `deadline` are still dispatched; the first
    /// event strictly beyond it is left in the queue.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until the event queue is fully drained.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Runs while `keep_going` returns true (checked before each event) or
    /// until the queue drains. Returns `true` if the predicate turned false
    /// (i.e. the goal was reached), `false` if the queue drained first.
    pub fn run_while<F: FnMut(&M) -> bool>(&mut self, mut keep_going: F) -> bool {
        loop {
            if !keep_going(&self.model) {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.seen.push((now, ev));
            // Event 1 spawns a follow-up event to exercise rescheduling.
            if ev == 1 {
                q.push(now + SimDuration::from_ns(5), 99);
            }
        }
    }

    #[test]
    fn dispatches_in_time_order() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue.push(SimTime::from_ns(30), 3);
        sim.queue.push(SimTime::from_ns(10), 1);
        sim.queue.push(SimTime::from_ns(20), 2);
        sim.run_to_completion();
        let evs: Vec<u32> = sim.model.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![1, 99, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        assert_eq!(sim.steps(), 4);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for i in 0..100 {
            sim.queue.push(SimTime::from_ns(7), i + 10);
        }
        sim.run_to_completion();
        let evs: Vec<u32> = sim.model.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, (10..110).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue.push(SimTime::from_ns(10), 2);
        sim.queue.push(SimTime::from_ns(100), 3);
        sim.run_until(SimTime::from_ns(50));
        assert_eq!(sim.model.seen.len(), 1);
        assert_eq!(sim.now(), SimTime::from_ns(50));
        // The event at 100 ns is still pending.
        assert_eq!(sim.queue.len(), 1);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for i in 0..10 {
            sim.queue.push(SimTime::from_ns(i), i as u32);
        }
        let satisfied = sim.run_while(|m| m.seen.len() < 3);
        assert!(satisfied);
        assert_eq!(sim.model.seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn past_events_panic() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue.push(SimTime::from_ns(10), 1);
        sim.step();
        // Manually force an event into the past.
        sim.queue.push(SimTime::from_ns(1), 2);
        sim.step();
    }
}
