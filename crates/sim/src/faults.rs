//! The fault-injection plane.
//!
//! The paper's datapath *detects* lost and corrupted cells (AAL5-style
//! CRC-32 trailers, length fields, bounded stripe skew — §2.3, §2.6) but
//! the original testbed never *caused* them deterministically. A
//! [`FaultPlan`] is a declarative, seeded description of everything that
//! can go wrong on the wire:
//!
//! * per-lane cell-drop and bit-corruption probabilities,
//! * point faults ("drop the Nth cell offered to lane L"),
//! * lane-outage windows (a fiber goes dark for an interval), with an
//!   optional graceful-degradation remap that carries the downed lane's
//!   traffic over a live lane's serialization resource,
//! * a bound on the switch's per-output queues, turning the previously
//!   infinite queues into a drop point.
//!
//! The plan lives in [`crate::SimConfig`] so every harness shares one
//! source of truth; injection happens in `atm::{stripe,switch}` through a
//! [`FaultInjector`] built from the plan.
//!
//! # Determinism contract
//!
//! A fault decision is a pure function of `(plan, injector seed, lane,
//! per-lane offer counter, now)`. The injector consumes one RNG draw per
//! probabilistic check and nothing else, so two runs with the same
//! configuration and seed inject byte-identical faults at identical
//! virtual times — the property every regression baseline and property
//! test in this workspace relies on.

use crate::rng::SimRng;
use crate::time::SimTime;

/// What a point fault does to its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointFaultKind {
    /// The cell vanishes.
    Drop,
    /// One bit of the cell payload is flipped.
    Corrupt,
}

/// A deterministic single-cell fault: "the `nth` cell offered to `lane`
/// suffers `kind`" (counting from 0 at the start of the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointFault {
    /// Logical lane the fault targets.
    pub lane: usize,
    /// Zero-based index of the victim among all cells offered to `lane`.
    pub nth: u64,
    /// What happens to it.
    pub kind: PointFaultKind,
}

/// An interval during which a lane is out of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOutage {
    /// The lane that goes dark.
    pub lane: usize,
    /// First instant of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

impl LaneOutage {
    /// Whether the outage covers `now`.
    pub fn covers(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }
}

/// A seeded, declarative description of every wire-level fault a run
/// injects. The default plan injects nothing, so configurations that
/// never mention faults behave bit-identically to the pre-fault-plane
/// testbed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-lane cell-drop probability, indexed by logical lane. Lanes
    /// beyond the vector's length use probability 0.
    pub lane_drop_prob: Vec<f64>,
    /// Per-lane single-bit corruption probability, indexed by logical
    /// lane.
    pub lane_corrupt_prob: Vec<f64>,
    /// Deterministic single-cell faults.
    pub point_faults: Vec<PointFault>,
    /// Lane-outage windows.
    pub outages: Vec<LaneOutage>,
    /// Graceful stripe degradation: when a lane is in an outage window,
    /// carry its cells over the next live lane's serialization resource
    /// instead of dropping them. Framing is untouched — the cell still
    /// *logically* belongs to its original lane (the receiver's
    /// reassembler keys on the logical lane), only the physical timing
    /// moves; the remap is reported through the `cells_remapped` counter.
    pub remap_on_outage: bool,
    /// Bound on each switch output queue in cells; a cell that would
    /// push a queue past the bound is dropped (`None` = unbounded, the
    /// historical behavior).
    pub switch_max_queue_cells: Option<u32>,
    /// Seed mixed into each injector's RNG (on top of the per-component
    /// seed the harness supplies).
    pub seed: u64,
}

impl FaultPlan {
    /// Whether the plan can inject anything at the striped link.
    pub fn affects_lanes(&self) -> bool {
        self.lane_drop_prob.iter().any(|&p| p > 0.0)
            || self.lane_corrupt_prob.iter().any(|&p| p > 0.0)
            || !self.point_faults.is_empty()
            || !self.outages.is_empty()
    }

    /// A plan dropping cells uniformly on every lane with probability
    /// `p` (the loss-sweep knob).
    pub fn uniform_loss(p: f64, lanes: usize, seed: u64) -> Self {
        FaultPlan {
            lane_drop_prob: vec![p; lanes],
            seed,
            ..FaultPlan::default()
        }
    }
}

/// Which fault-injectable component of a node an injector drives. Each
/// component gets its own independent fault stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultComponent {
    /// The node's transmit-side striped link (the only injection point
    /// today; the enum exists so future components — switch ports, DMA
    /// engines — get their own disjoint seed ranges instead of
    /// colliding with the link's).
    LinkTx,
}

/// The component seed for `component` of node `node` — a pure function
/// of its arguments, independent of wiring or insertion order, so no
/// partitioning of the fabric can perturb a component's fault stream.
///
/// The `LinkTx` value is pinned to `2000 + node`: that is the seed the
/// fabric builder has always fed `StripedLink::set_fault_plan`, and the
/// committed `BENCH_loss` baseline (and every fault-plane golden) is a
/// function of the resulting streams. Changing these numerics is a
/// baseline-breaking change; the `component_seed_is_pure_and_pinned`
/// regression test holds them in place.
pub fn component_seed(node: usize, component: FaultComponent) -> u64 {
    match component {
        FaultComponent::LinkTx => 2000 + node as u64,
    }
}

/// What the injector decided for one offered cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFate {
    /// The cell passes unharmed.
    Deliver,
    /// The cell vanishes.
    Drop,
    /// Flip bit `bit` of payload byte `byte`, then deliver.
    Corrupt {
        /// Payload byte index to damage.
        byte: usize,
        /// Bit index within that byte.
        bit: u8,
    },
}

/// Runtime state of one component's fault injection: a forked RNG plus
/// per-lane offer counters (the basis for point faults). One injector
/// per striped link, seeded from the plan seed and the component seed,
/// keeps fault streams independent across nodes while staying fully
/// deterministic.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    /// Cells offered per logical lane so far (indexes point faults).
    offered: Vec<u64>,
}

impl FaultInjector {
    /// Builds an injector for `plan`, mixing `component_seed` (e.g. the
    /// per-node link seed) into the plan seed.
    pub fn new(plan: &FaultPlan, component_seed: u64) -> Self {
        let mut root = SimRng::new(plan.seed ^ component_seed.rotate_left(17));
        FaultInjector {
            plan: plan.clone(),
            rng: root.fork(),
            offered: Vec::new(),
        }
    }

    /// Builds the injector for `component` of node `node`: exactly
    /// [`FaultInjector::new`] with the seed from [`component_seed`], so
    /// the stream depends only on `(plan.seed, node, component)`.
    pub fn for_component(plan: &FaultPlan, node: usize, component: FaultComponent) -> Self {
        FaultInjector::new(plan, component_seed(node, component))
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `lane` is inside an outage window at `now`.
    pub fn lane_down(&self, lane: usize, now: SimTime) -> bool {
        self.plan
            .outages
            .iter()
            .any(|o| o.lane == lane && o.covers(now))
    }

    /// The physical lane that should carry a cell logically bound for
    /// `lane` at `now`: the lane itself when it is up; under an outage
    /// with remap enabled, the next live lane in cyclic order (fixed for
    /// the duration of a static outage window, so per-logical-lane cell
    /// order is preserved); `None` when the cell cannot be carried.
    pub fn physical_lane(&self, lane: usize, now: SimTime, lanes: usize) -> Option<usize> {
        if !self.lane_down(lane, now) {
            return Some(lane);
        }
        if !self.plan.remap_on_outage {
            return None;
        }
        (1..lanes)
            .map(|k| (lane + k) % lanes)
            .find(|&l| !self.lane_down(l, now))
    }

    /// Decides the fate of the next cell offered to logical `lane`,
    /// advancing that lane's offer counter. `payload_bytes` bounds the
    /// corruption target.
    pub fn offer(&mut self, lane: usize, payload_bytes: usize) -> CellFate {
        if self.offered.len() <= lane {
            self.offered.resize(lane + 1, 0);
        }
        let nth = self.offered[lane];
        self.offered[lane] += 1;

        if let Some(pf) = self
            .plan
            .point_faults
            .iter()
            .find(|pf| pf.lane == lane && pf.nth == nth)
        {
            return match pf.kind {
                PointFaultKind::Drop => CellFate::Drop,
                PointFaultKind::Corrupt => self.corrupt_target(payload_bytes),
            };
        }
        let drop_p = self.plan.lane_drop_prob.get(lane).copied().unwrap_or(0.0);
        if drop_p > 0.0 && self.rng.gen_bool(drop_p) {
            return CellFate::Drop;
        }
        let corrupt_p = self
            .plan
            .lane_corrupt_prob
            .get(lane)
            .copied()
            .unwrap_or(0.0);
        if corrupt_p > 0.0 && self.rng.gen_bool(corrupt_p) {
            return self.corrupt_target(payload_bytes);
        }
        CellFate::Deliver
    }

    fn corrupt_target(&mut self, payload_bytes: usize) -> CellFate {
        CellFate::Corrupt {
            byte: self.rng.gen_range(payload_bytes.max(1) as u64) as usize,
            bit: self.rng.gen_range(8) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::default();
        assert!(!plan.affects_lanes());
        let mut inj = FaultInjector::new(&plan, 7);
        for lane in 0..4 {
            for _ in 0..100 {
                assert_eq!(inj.offer(lane, 44), CellFate::Deliver);
            }
            assert_eq!(inj.physical_lane(lane, SimTime::from_us(3), 4), Some(lane));
        }
    }

    #[test]
    fn point_fault_hits_exactly_its_cell() {
        let plan = FaultPlan {
            point_faults: vec![PointFault {
                lane: 2,
                nth: 3,
                kind: PointFaultKind::Drop,
            }],
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(&plan, 0);
        for n in 0..10 {
            let fate = inj.offer(2, 44);
            if n == 3 {
                assert_eq!(fate, CellFate::Drop);
            } else {
                assert_eq!(fate, CellFate::Deliver);
            }
        }
        // Other lanes are untouched.
        assert_eq!(inj.offer(0, 44), CellFate::Deliver);
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let plan = FaultPlan {
            lane_drop_prob: vec![0.3; 4],
            lane_corrupt_prob: vec![0.1; 4],
            seed: 99,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(&plan, 5);
        let mut b = FaultInjector::new(&plan, 5);
        let fa: Vec<CellFate> = (0..200).map(|i| a.offer(i % 4, 44)).collect();
        let fb: Vec<CellFate> = (0..200).map(|i| b.offer(i % 4, 44)).collect();
        assert_eq!(fa, fb);
        assert!(fa.contains(&CellFate::Drop));
        assert!(fa.iter().any(|f| matches!(f, CellFate::Corrupt { .. })));
    }

    #[test]
    fn component_seed_is_pure_and_pinned() {
        // The derivation is a pure function of (node, component) with the
        // historical numerics: 2000 + node for the transmit link. These
        // exact values feed every committed fault-plane baseline
        // (BENCH_loss), so they must never move.
        assert_eq!(component_seed(0, FaultComponent::LinkTx), 2000);
        assert_eq!(component_seed(1, FaultComponent::LinkTx), 2001);
        assert_eq!(component_seed(63, FaultComponent::LinkTx), 2063);

        // The resulting stream is pinned too: wiring order, injector
        // construction order, or fabric partitioning cannot perturb it,
        // because nothing but (plan.seed, node, component) enters the RNG.
        let plan = FaultPlan {
            lane_drop_prob: vec![0.25; 4],
            lane_corrupt_prob: vec![0.1; 4],
            seed: 42,
            ..FaultPlan::default()
        };
        let stream = |node| -> Vec<CellFate> {
            let mut inj = FaultInjector::for_component(&plan, node, FaultComponent::LinkTx);
            (0..12).map(|i| inj.offer(i % 4, 44)).collect()
        };
        use CellFate::{Corrupt, Deliver, Drop};
        assert_eq!(
            stream(0),
            vec![
                Deliver,
                Deliver,
                Deliver,
                Corrupt { byte: 4, bit: 0 },
                Deliver,
                Drop,
                Deliver,
                Deliver,
                Corrupt { byte: 22, bit: 4 },
                Deliver,
                Drop,
                Deliver,
            ]
        );
        assert_eq!(
            stream(1),
            vec![
                Deliver, Drop, Deliver, Deliver, Drop, Deliver, Deliver, Deliver, Deliver, Deliver,
                Deliver, Deliver,
            ]
        );
        // Building a second injector later (different "insertion order")
        // reproduces the stream exactly.
        assert_eq!(stream(0), stream(0));
    }

    #[test]
    fn outage_windows_gate_by_time() {
        let plan = FaultPlan {
            outages: vec![LaneOutage {
                lane: 1,
                from: SimTime::from_us(10),
                until: SimTime::from_us(20),
            }],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(&plan, 0);
        assert!(!inj.lane_down(1, SimTime::from_us(9)));
        assert!(inj.lane_down(1, SimTime::from_us(10)));
        assert!(inj.lane_down(1, SimTime::from_us(19)));
        assert!(!inj.lane_down(1, SimTime::from_us(20)));
        assert!(!inj.lane_down(0, SimTime::from_us(15)));
        // No remap: the cell cannot be carried.
        assert_eq!(inj.physical_lane(1, SimTime::from_us(15), 4), None);
    }

    #[test]
    fn remap_picks_next_live_lane() {
        let at = SimTime::from_us(15);
        let window = |lane| LaneOutage {
            lane,
            from: SimTime::from_us(10),
            until: SimTime::from_us(20),
        };
        let plan = FaultPlan {
            outages: vec![window(1), window(2)],
            remap_on_outage: true,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(&plan, 0);
        // Lane 1 is down, lane 2 also down → lane 3 carries it.
        assert_eq!(inj.physical_lane(1, at, 4), Some(3));
        assert_eq!(inj.physical_lane(2, at, 4), Some(3));
        assert_eq!(inj.physical_lane(0, at, 4), Some(0));
        // All lanes down → nothing can carry the cell.
        let dead = FaultPlan {
            outages: (0..4).map(window).collect(),
            remap_on_outage: true,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(&dead, 0);
        assert_eq!(inj.physical_lane(1, at, 4), None);
        assert_eq!(
            inj.physical_lane(1, SimTime::from_us(20) + SimDuration::from_ps(1), 4),
            Some(1)
        );
    }
}
