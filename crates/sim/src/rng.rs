//! Deterministic random numbers for the simulation.
//!
//! Skew jitter (§2.6 of the paper: queueing delays in switch ports), fault
//! injection (cell corruption for the lazy-cache-invalidation recovery
//! path, §2.3) and workload generation all need randomness that is
//! *reproducible*: the same seed must yield the same simulation. We use
//! SplitMix64 — tiny, well-distributed, and dependency-free — rather than a
//! cryptographic generator; nothing here is security-sensitive.

/// A SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound` is 0.
    ///
    /// Uses Lemire's multiply-shift reduction with rejection to avoid
    /// modulo bias.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi]` inclusive.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_range(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high-quality bits → uniform double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A derived generator with an independent-looking stream; used to give
    /// each simulation component its own RNG from one experiment seed.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(13) < 13);
        }
        assert_eq!(r.gen_range(0), 0);
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SimRng::new(99);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        // Out-of-range probabilities clamp instead of panicking.
        assert!(r.gen_bool(2.0));
        assert!(!r.gen_bool(-1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not shuffle to identity"
        );
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = SimRng::new(4);
        let mut b = a.fork();
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = SimRng::new(21);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            match r.gen_range_inclusive(5, 7) {
                5 => lo_seen = true,
                7 => hi_seen = true,
                6 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
