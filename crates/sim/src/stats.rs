//! Measurement instruments for experiments.
//!
//! The paper reports round-trip latencies (Table 1) and sustained
//! throughputs (Figures 2–4). These instruments collect exactly those
//! quantities from simulated time, with warm-up trimming so that steady
//! state — not queue-fill transients — is what gets reported.

use crate::time::{SimDuration, SimTime};

/// Streaming mean/min/max/variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Folds another accumulator into this one (parallel Welford /
    /// Chan et al. pairwise merge). Count, min, and max combine
    /// exactly; mean and m2 combine up to floating-point rounding, so
    /// shard-merged statistics are for display — byte-exact comparisons
    /// use the integer histogram, never these floats.
    pub fn absorb(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.mean += d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Measures sustained throughput: bytes delivered over a simulated window,
/// with the first `warmup` deliveries discarded.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    warmup_remaining: u64,
    started: Option<SimTime>,
    last: SimTime,
    bytes: u64,
    deliveries: u64,
}

impl ThroughputMeter {
    /// A meter that ignores the first `warmup_deliveries` deliveries (they
    /// charge pipeline-fill cost to no one) and starts timing at the first
    /// counted delivery.
    pub fn new(warmup_deliveries: u64) -> Self {
        ThroughputMeter {
            warmup_remaining: warmup_deliveries,
            started: None,
            last: SimTime::ZERO,
            bytes: 0,
            deliveries: 0,
        }
    }

    /// Records a delivery of `bytes` completing at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        if self.warmup_remaining > 0 {
            self.warmup_remaining -= 1;
            // The measurement window opens when warm-up ends.
            self.started = Some(now);
            return;
        }
        if self.started.is_none() {
            self.started = Some(now);
        }
        self.bytes += bytes;
        self.deliveries += 1;
        self.last = now;
    }

    /// Counted (post-warm-up) deliveries.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Counted bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Measured window, from end of warm-up to the last delivery.
    pub fn window(&self) -> SimDuration {
        match self.started {
            Some(s) => self.last.saturating_since(s),
            None => SimDuration::ZERO,
        }
    }

    /// Sustained throughput in Mbps over the measured window.
    ///
    /// Returns 0 when fewer than two deliveries were counted (no window).
    pub fn mbps(&self) -> f64 {
        let w = self.window();
        if w.is_zero() || self.deliveries < 2 {
            return 0.0;
        }
        w.mbps_for_bytes(self.bytes)
    }

    /// Folds another meter into this one: bytes and deliveries sum,
    /// the window opens at the earliest start and closes at the latest
    /// delivery — all exact integer/time arithmetic. Only meaningful
    /// for fully warmed meters (scenario meters use warm-up 0); a
    /// meter still inside its warm-up would have discarded deliveries
    /// no merge can reconstruct, so that case is a debug assertion.
    pub fn absorb(&mut self, other: &ThroughputMeter) {
        debug_assert!(
            self.warmup_remaining == 0 || self.deliveries + other.deliveries == 0,
            "merging a meter still inside warm-up loses samples"
        );
        self.bytes += other.bytes;
        self.deliveries += other.deliveries;
        self.started = match (self.started, other.started) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last = self.last.max(other.last);
    }
}

/// Latency sample collector reporting in microseconds.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    stats: RunningStats,
}

impl LatencyStats {
    /// An empty collector.
    pub fn new() -> Self {
        LatencyStats {
            stats: RunningStats::new(),
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.stats.record(d.as_us_f64());
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.stats.mean()
    }

    /// Standard deviation in microseconds.
    pub fn std_dev_us(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Minimum sample in microseconds.
    pub fn min_us(&self) -> f64 {
        self.stats.min().unwrap_or(0.0)
    }

    /// Maximum sample in microseconds.
    pub fn max_us(&self) -> f64 {
        self.stats.max().unwrap_or(0.0)
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Folds another collector into this one (see
    /// [`RunningStats::absorb`] for the exactness caveat).
    pub fn absorb(&mut self, other: &LatencyStats) {
        self.stats.absorb(&other.stats);
    }
}

/// A log-scaled histogram of durations (power-of-√2 buckets from 1 µs),
/// supporting percentile queries. Used to report latency distributions,
/// not just means — jitter mattered to the paper's multimedia motivation.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    buckets: Vec<u64>,
    count: u64,
    max: SimDuration,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationHistogram {
    /// Bucket boundaries grow by √2 per bucket starting at 1 µs; 64
    /// buckets cover up to ~6 hours.
    const BUCKETS: usize = 64;

    /// An empty histogram.
    pub fn new() -> Self {
        DurationHistogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            max: SimDuration::ZERO,
        }
    }

    fn bucket_of(d: SimDuration) -> usize {
        let us = d.as_us_f64().max(1e-9);
        // index = 2 * log2(us), clamped.
        let idx = (2.0 * us.log2()).ceil().max(0.0) as usize;
        idx.min(Self::BUCKETS - 1)
    }

    /// Upper bound of bucket `i` in microseconds.
    fn bucket_upper_us(i: usize) -> f64 {
        2f64.powf(i as f64 / 2.0)
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.buckets[Self::bucket_of(d)] += 1;
        self.count += 1;
        self.max = self.max.max(d);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest recorded sample.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Approximate percentile (`0.0..=1.0`) in microseconds: the upper
    /// bound of the bucket containing that rank. Returns 0 when empty.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_us(i).min(self.max.as_us_f64());
            }
        }
        self.max.as_us_f64()
    }

    /// Folds another histogram into this one — bucket-wise sums plus
    /// count and max, all exact, so percentiles of a shard-merged
    /// histogram equal percentiles of the sequential run's histogram.
    pub fn absorb(&mut self, other: &DurationHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

/// A labelled monotonic counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_mean_and_bounds() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 6.0, 8.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(8.0));
        // population std dev of {2,4,6,8} = sqrt(5)
        assert!((s.std_dev() - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn throughput_meter_basic_rate() {
        // 1000 bytes every 10 us after a 1-delivery warm-up.
        let mut m = ThroughputMeter::new(1);
        for i in 0..11u64 {
            m.record(SimTime::from_us(10 * i), 1000);
        }
        // Warm-up consumed delivery 0 and opened the window at t=0;
        // 10 counted deliveries of 1000 B over 100 us = exactly the
        // steady-state rate of 1000 B / 10 us = 800 Mbps.
        assert_eq!(m.deliveries(), 10);
        assert_eq!(m.bytes(), 10_000);
        assert!((m.mbps() - 800.0).abs() < 1e-6);
    }

    #[test]
    fn throughput_meter_needs_two_samples() {
        let mut m = ThroughputMeter::new(0);
        m.record(SimTime::from_us(5), 100);
        assert_eq!(m.mbps(), 0.0);
    }

    #[test]
    fn latency_stats_in_us() {
        let mut l = LatencyStats::new();
        l.record(SimDuration::from_us(100));
        l.record(SimDuration::from_us(300));
        assert_eq!(l.count(), 2);
        assert!((l.mean_us() - 200.0).abs() < 1e-9);
        assert_eq!(l.min_us(), 100.0);
        assert_eq!(l.max_us(), 300.0);
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let mut h = DurationHistogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_us(us));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), SimDuration::from_us(1000));
        let p50 = h.percentile_us(0.5);
        // √2 buckets: the answer is within one bucket of the true median.
        assert!((354.0..=724.0).contains(&p50), "p50 {p50}");
        let p99 = h.percentile_us(0.99);
        assert!(p99 >= p50);
        assert!(p99 <= 1000.0 + 1e-9);
        assert_eq!(h.percentile_us(1.0), 1000.0);
    }

    #[test]
    fn histogram_single_sample() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_us(75));
        for p in [0.0, 0.5, 1.0] {
            let v = h.percentile_us(p);
            assert!((53.0..=75.01).contains(&v), "p{p} = {v}");
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = DurationHistogram::new();
        assert_eq!(h.percentile_us(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_ps(1)); // sub-microsecond
        h.record(SimDuration::from_secs(10_000)); // beyond the last bucket
        assert_eq!(h.count(), 2);
        assert!(h.percentile_us(1.0) > 0.0);
    }

    #[test]
    fn absorb_matches_sequential_recording() {
        // Split one sample stream across two accumulators of each kind
        // and check the merge matches recording everything into one.
        let samples: Vec<u64> = (1..=40).map(|i| i * 37 % 1000 + 1).collect();
        let (lo, hi) = samples.split_at(17);

        let mut h_all = DurationHistogram::new();
        let mut h_a = DurationHistogram::new();
        let mut h_b = DurationHistogram::new();
        let mut m_all = ThroughputMeter::new(0);
        let mut m_a = ThroughputMeter::new(0);
        let mut m_b = ThroughputMeter::new(0);
        // Meters are always fed in non-decreasing time order (the
        // simulator's dispatch order), so stamp by sample index.
        for (base, part, h, m) in [(0, lo, &mut h_a, &mut m_a), (17, hi, &mut h_b, &mut m_b)] {
            for (i, &us) in part.iter().enumerate() {
                h.record(SimDuration::from_us(us));
                m.record(SimTime::from_us((base + i as u64 + 1) * 10), us);
            }
        }
        for (i, &us) in samples.iter().enumerate() {
            h_all.record(SimDuration::from_us(us));
            m_all.record(SimTime::from_us((i as u64 + 1) * 10), us);
        }
        h_a.absorb(&h_b);
        assert_eq!(h_a.count(), h_all.count());
        assert_eq!(h_a.max(), h_all.max());
        for p in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h_a.percentile_us(p), h_all.percentile_us(p));
        }
        m_a.absorb(&m_b);
        assert_eq!(m_a.bytes(), m_all.bytes());
        assert_eq!(m_a.deliveries(), m_all.deliveries());
        assert_eq!(m_a.window(), m_all.window());

        let mut s_a = RunningStats::new();
        let mut s_b = RunningStats::new();
        let mut s_all = RunningStats::new();
        for &us in lo {
            s_a.record(us as f64);
        }
        for &us in hi {
            s_b.record(us as f64);
        }
        for &us in &samples {
            s_all.record(us as f64);
        }
        s_a.absorb(&s_b);
        assert_eq!(s_a.count(), s_all.count());
        assert_eq!(s_a.min(), s_all.min());
        assert_eq!(s_a.max(), s_all.max());
        assert!((s_a.mean() - s_all.mean()).abs() < 1e-9);
        assert!((s_a.std_dev() - s_all.std_dev()).abs() < 1e-9);
        // Absorbing into an empty accumulator is the identity.
        let mut empty = RunningStats::new();
        empty.absorb(&s_all);
        assert_eq!(empty.mean(), s_all.mean());
    }

    #[test]
    fn counter_ops() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }
}
