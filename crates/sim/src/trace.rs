//! Lightweight event tracing.
//!
//! In the spirit of smoltcp's packet-dump facility: every component can
//! emit human-readable trace records with virtual timestamps, kept in a
//! bounded ring so long throughput runs don't accumulate unbounded memory.
//! Tracing is off by default and the formatting closure is only invoked
//! when enabled, so hot paths pay one branch.

use std::collections::VecDeque;

use crate::obs::{Counter, Probe};
use crate::time::SimTime;

/// A bounded ring of timestamped trace records.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    records: VecDeque<(SimTime, String)>,
    /// Eviction count; registry-visible when built via [`Trace::with_probe`]
    /// so truncation is never silent.
    dropped: Counter,
}

impl Trace {
    /// A disabled trace ring with the given capacity and a detached
    /// dropped-records counter.
    pub fn new(capacity: usize) -> Self {
        Trace {
            enabled: false,
            capacity,
            records: VecDeque::new(),
            dropped: Counter::detached(),
        }
    }

    /// A disabled trace ring whose `dropped` counter is registered on
    /// `probe` as `<scope>.trace.dropped`.
    pub fn with_probe(capacity: usize, probe: &Probe) -> Self {
        let mut t = Trace::new(capacity);
        t.dropped = probe.scoped("trace").counter("dropped");
        t
    }

    /// The ring's capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A trace ring that starts enabled.
    pub fn enabled(capacity: usize) -> Self {
        let mut t = Trace::new(capacity);
        t.enabled = true;
        t
    }

    /// Turns tracing on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether records are currently captured.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits one record; `msg` is only evaluated when tracing is enabled.
    pub fn emit<F: FnOnce() -> String>(&mut self, now: SimTime, msg: F) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped.incr();
        }
        self.records.push_back((now, msg()));
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = (SimTime, &str)> {
        self.records.iter().map(|(t, s)| (*t, s.as_str()))
    }

    /// Number of records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Renders all retained records, one per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (t, s) in self.records() {
            out.push_str(&format!("[{t}] {s}\n"));
        }
        out
    }

    /// Clears retained records (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_skips_formatting() {
        let mut t = Trace::new(8);
        let mut called = false;
        t.emit(SimTime::ZERO, || {
            called = true;
            "x".into()
        });
        assert!(!called);
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::enabled(8);
        t.emit(SimTime::from_us(1), || "cell rx".into());
        t.emit(SimTime::from_us(2), || "dma done".into());
        let recs: Vec<_> = t.records().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (SimTime::from_us(1), "cell rx"));
        assert!(t.dump().contains("dma done"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::enabled(3);
        for i in 0..5u64 {
            t.emit(SimTime::from_us(i), || format!("e{i}"));
        }
        let recs: Vec<_> = t.records().map(|(_, s)| s.to_string()).collect();
        assert_eq!(recs, vec!["e2", "e3", "e4"]);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::enabled(2);
        t.emit(SimTime::ZERO, || "a".into());
        t.clear();
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.dropped(), 0);
        assert!(t.is_enabled());
    }
}
