//! Deterministic time-series sampling of registry instruments.
//!
//! End-of-run counter totals answer *how much*; the telemetry plane
//! answers *when*. A [`SeriesSet`] is a sampling schedule over
//! **simulated** time: the harness picks a period (`SimConfig::
//! sample_every`, e.g. 100 µs of virtual time) and, at every grid
//! point, the set reads a fixed collection of [`Counter`]/[`Gauge`]
//! handles into ring-buffered windows. Counters are stored as
//! *per-window deltas* (a rate, once divided by the period); gauges as
//! the value the instrument held at the grid instant.
//!
//! # Determinism
//!
//! Sampling never perturbs a run. Two properties make that hold:
//!
//! * The sample grid lives in sim time, not wall time, so the set of
//!   grid points is a pure function of the period and the run's last
//!   event time — identical across hosts, shard counts, and reruns.
//! * Sampling is *passive*: no `SampleTick` event ever enters the model
//!   queue. The sequential engine samples between event dispatches
//!   (every grid point `T` is sampled exactly when the next pending
//!   event is strictly beyond `T`, i.e. once the state at `T` is
//!   final); the sharded engine samples at round boundaries, below the
//!   agreed horizon, with the same grid. Event order, push counts, and
//!   `last_event_time` are untouched — the equivalence suite
//!   byte-compares semantic snapshots with sampling on and off.
//!
//! # Memory model
//!
//! Each tracked series owns one pre-allocated ring of `(SimTime, f64)`
//! windows (`SimConfig::series_capacity` entries): pushing into a full
//! ring evicts the oldest window and bumps a registry-visible
//! `obs.samples_dropped` counter, so truncation is never silent. The
//! running aggregates (`count`/`sum`/`min`/`max`/`last`) cover *every*
//! window ever taken, evicted or not — which is what keeps the delta
//! invariant exact: for a counter series, `sum` of all window deltas
//! equals the final cumulative value minus the value at registration
//! (`base`), regardless of eviction. Names are resolved to shared
//! `Rc<str>` keys once, at registration; the per-sample hot path is
//! arithmetic on pre-resolved handles — no string work, no allocation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use super::{Counter, Gauge, Probe};
use crate::json::Json;
use crate::time::{SimDuration, SimTime};

/// What a series samples and how windows are derived from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// A monotone [`Counter`]: windows hold per-window deltas.
    Counter,
    /// A last-value [`Gauge`]: windows hold the sampled value.
    Gauge,
}

impl SeriesKind {
    /// The JSON/CSV spelling (`"counter"` / `"gauge"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }

    fn parse(s: &str) -> Option<SeriesKind> {
        match s {
            "counter" => Some(SeriesKind::Counter),
            "gauge" => Some(SeriesKind::Gauge),
            _ => None,
        }
    }
}

enum Source {
    Counter(Counter),
    Gauge(Gauge),
}

struct SeriesInner {
    /// Full dotted key, interned once at registration.
    name: Rc<str>,
    kind: SeriesKind,
    source: Source,
    /// Cumulative value at registration (counters; 0.0 for gauges).
    base: f64,
    /// Cumulative value at the previous sample (counters).
    prev: f64,
    /// Latest cumulative value (counters) / latest sample (gauges).
    total: f64,
    /// `(grid instant, window value)`, oldest first, capacity-bounded.
    ring: VecDeque<(SimTime, f64)>,
    /// Windows evicted from this ring.
    evicted: u64,
    // Running aggregates over every window ever taken.
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
}

struct SetInner {
    every: SimDuration,
    capacity: usize,
    /// Next unsampled grid point (`every`, `2*every`, …).
    next: SimTime,
    last_sample: Option<SimTime>,
    samples: u64,
    /// Registry-visible eviction count (`obs.samples_dropped`).
    dropped: Counter,
    series: Vec<SeriesInner>,
}

/// A deterministic sampling plane: a sim-time grid plus the instrument
/// handles it snapshots. Cheap-clone shared handle, like [`Counter`].
#[derive(Clone)]
pub struct SeriesSet {
    inner: Rc<RefCell<SetInner>>,
}

impl SeriesSet {
    /// An empty set sampling every `every` of simulated time, keeping
    /// at most `capacity` windows per series.
    ///
    /// # Panics
    /// Panics on a zero period or zero capacity — both would make the
    /// grid meaningless.
    pub fn new(every: SimDuration, capacity: usize) -> SeriesSet {
        assert!(!every.is_zero(), "sample period must be positive");
        assert!(capacity > 0, "series ring capacity must be positive");
        SeriesSet {
            inner: Rc::new(RefCell::new(SetInner {
                every,
                capacity,
                next: SimTime::ZERO + every,
                last_sample: None,
                samples: 0,
                dropped: Counter::detached(),
                series: Vec::new(),
            })),
        }
    }

    /// Registers ring evictions as `<scope>.samples_dropped` in
    /// `probe`'s registry (pass `registry.probe("obs")` for the
    /// canonical `obs.samples_dropped`), carrying over evictions that
    /// happened before attaching.
    pub fn attach_probe(&self, probe: &Probe) {
        let mut s = self.inner.borrow_mut();
        let already: u64 = s.series.iter().map(|sr| sr.evicted).sum();
        s.dropped = probe.counter("samples_dropped");
        s.dropped.add(already);
    }

    /// Tracks `counter` under `name`; windows hold per-window deltas
    /// over the value at registration.
    pub fn track_counter(&self, name: &str, counter: &Counter) {
        let base = counter.get() as f64;
        self.track(
            name,
            SeriesKind::Counter,
            Source::Counter(counter.clone()),
            base,
        );
    }

    /// Tracks `gauge` under `name`; windows hold the sampled value.
    pub fn track_gauge(&self, name: &str, gauge: &Gauge) {
        self.track(name, SeriesKind::Gauge, Source::Gauge(gauge.clone()), 0.0);
    }

    fn track(&self, name: &str, kind: SeriesKind, source: Source, base: f64) {
        let mut s = self.inner.borrow_mut();
        let capacity = s.capacity;
        s.series.push(SeriesInner {
            name: Rc::from(name),
            kind,
            source,
            base,
            prev: base,
            total: base,
            ring: VecDeque::with_capacity(capacity),
            evicted: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
        });
    }

    /// Number of tracked series.
    pub fn len(&self) -> usize {
        self.inner.borrow().series.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sampling period.
    pub fn every(&self) -> SimDuration {
        self.inner.borrow().every
    }

    /// Grid samples taken so far.
    pub fn samples(&self) -> u64 {
        self.inner.borrow().samples
    }

    /// The next unsampled grid point.
    pub fn next_due(&self) -> SimTime {
        self.inner.borrow().next
    }

    /// Takes one sample stamped `at`, off-grid. The engine integration
    /// points use [`SeriesSet::sample_grid_before`]/[`SeriesSet::finish`]
    /// instead; this is the primitive they share.
    pub fn sample_at(&self, at: SimTime) {
        let mut s = self.inner.borrow_mut();
        s.samples += 1;
        s.last_sample = Some(at);
        let SetInner {
            capacity,
            ref dropped,
            ref mut series,
            ..
        } = *s;
        for sr in series.iter_mut() {
            let window = match &sr.source {
                Source::Counter(c) => {
                    let cum = c.get() as f64;
                    let d = cum - sr.prev;
                    sr.prev = cum;
                    sr.total = cum;
                    d
                }
                Source::Gauge(g) => {
                    let v = g.get();
                    sr.total = v;
                    v
                }
            };
            if sr.ring.len() >= capacity {
                sr.ring.pop_front();
                sr.evicted += 1;
                dropped.incr();
            }
            sr.ring.push_back((at, window));
            sr.count += 1;
            sr.sum += window;
            sr.min = sr.min.min(window);
            sr.max = sr.max.max(window);
            sr.last = window;
        }
    }

    /// Samples every grid point strictly before `t` — the engines call
    /// this with the timestamp of the next pending event (sequential)
    /// or the round's `gmin` (sharded): in both cases the model state
    /// at each such grid point is final, so the sample is exact.
    pub fn sample_grid_before(&self, t: SimTime) {
        loop {
            let next = {
                let s = self.inner.borrow();
                if s.next >= t {
                    return;
                }
                s.next
            };
            self.sample_at(next);
            let mut s = self.inner.borrow_mut();
            let every = s.every;
            s.next = next + every;
        }
    }

    /// Closes the run at `end` (the last event time): samples any grid
    /// point up to and including `end`, then one final partial window
    /// at `end` itself so the delta invariant (`Σ windows == total -
    /// base`) holds exactly over the recorded points.
    pub fn finish(&self, end: SimTime) {
        loop {
            let next = {
                let s = self.inner.borrow();
                if s.next > end {
                    break;
                }
                s.next
            };
            self.sample_at(next);
            let mut s = self.inner.borrow_mut();
            let every = s.every;
            s.next = next + every;
        }
        let needs_tail = self.inner.borrow().last_sample != Some(end);
        if needs_tail {
            self.sample_at(end);
        }
    }

    /// Plain-data copy of everything recorded: the form that crosses
    /// thread boundaries (shard results) and feeds every exporter.
    pub fn dump(&self) -> SeriesDump {
        let s = self.inner.borrow();
        SeriesDump {
            every: s.every,
            samples: s.samples,
            dropped: s.dropped.get(),
            series: s
                .series
                .iter()
                .map(|sr| SeriesData {
                    name: sr.name.to_string(),
                    kind: sr.kind,
                    base: sr.base,
                    total: sr.total,
                    sum: sr.sum,
                    count: sr.count,
                    min: if sr.count > 0 { sr.min } else { 0.0 },
                    max: if sr.count > 0 { sr.max } else { 0.0 },
                    last: sr.last,
                    evicted: sr.evicted,
                    points: sr.ring.iter().copied().collect(),
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for SeriesSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.inner.borrow();
        f.debug_struct("SeriesSet")
            .field("every", &s.every)
            .field("series", &s.series.len())
            .field("samples", &s.samples)
            .field("next", &s.next)
            .finish()
    }
}

/// One dumped series: aggregates plus the retained window ring.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesData {
    /// Full dotted key.
    pub name: String,
    /// Counter (windows are deltas) or gauge (windows are values).
    pub kind: SeriesKind,
    /// Counter value at registration (0 for gauges).
    pub base: f64,
    /// Final cumulative value (counters) / final sample (gauges).
    pub total: f64,
    /// Σ window values over **all** windows, evicted included. For
    /// counters this equals `total - base` exactly.
    pub sum: f64,
    /// Windows taken (evicted included).
    pub count: u64,
    /// Smallest window value.
    pub min: f64,
    /// Largest window value.
    pub max: f64,
    /// Most recent window value.
    pub last: f64,
    /// Windows evicted from the ring.
    pub evicted: u64,
    /// Retained `(grid instant, window value)` pairs, oldest first.
    pub points: Vec<(SimTime, f64)>,
}

impl SeriesData {
    /// Mean window value over all windows taken.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A thread-safe, plain-data dump of a [`SeriesSet`] — the unit the
/// exporters (chrome counters, JSONL/CSV, report tables) consume.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDump {
    /// Sampling period.
    pub every: SimDuration,
    /// Grid samples taken.
    pub samples: u64,
    /// Total ring evictions across series (`obs.samples_dropped`).
    pub dropped: u64,
    /// The tracked series.
    pub series: Vec<SeriesData>,
}

impl SeriesDump {
    /// An empty dump (period is nominal; merging replaces it).
    pub fn empty(every: SimDuration) -> SeriesDump {
        SeriesDump {
            every,
            samples: 0,
            dropped: 0,
            series: Vec::new(),
        }
    }

    /// The same dump with every series name prefixed `prefix.` — how
    /// the sharded engine namespaces per-shard samplers before
    /// concatenating them.
    pub fn prefixed(mut self, prefix: &str) -> SeriesDump {
        for s in &mut self.series {
            s.name = format!("{prefix}.{}", s.name);
        }
        self
    }

    /// Appends `other`'s series (summing sample/drop tallies).
    pub fn absorb(&mut self, other: SeriesDump) {
        self.samples += other.samples;
        self.dropped += other.dropped;
        self.series.extend(other.series);
    }

    /// The series named exactly `name`, if tracked.
    pub fn series_named(&self, name: &str) -> Option<&SeriesData> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Full JSON document (round-trips through [`SeriesDump::from_json`]).
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|(t, v)| Json::Arr(vec![Json::from(t.as_ps()), Json::Num(*v)]))
                    .collect();
                Json::obj()
                    .with("name", s.name.as_str())
                    .with("kind", s.kind.as_str())
                    .with("base", s.base)
                    .with("total", s.total)
                    .with("sum", s.sum)
                    .with("count", s.count)
                    .with("min", s.min)
                    .with("max", s.max)
                    .with("last", s.last)
                    .with("evicted", s.evicted)
                    .with("points", Json::Arr(points))
            })
            .collect();
        Json::obj()
            .with("every_ps", self.every.as_ps())
            .with("samples", self.samples)
            .with("samples_dropped", self.dropped)
            .with("series", Json::Arr(series))
    }

    /// Parses a document produced by [`SeriesDump::to_json`].
    pub fn from_json(doc: &Json) -> Option<SeriesDump> {
        let series = doc
            .get("series")?
            .items()
            .iter()
            .map(|s| {
                let points = s
                    .get("points")?
                    .items()
                    .iter()
                    .map(|p| Some((SimTime(p.idx(0)?.as_u64()?), p.idx(1)?.as_f64()?)))
                    .collect::<Option<Vec<_>>>()?;
                Some(SeriesData {
                    name: s.get("name")?.as_str()?.to_string(),
                    kind: SeriesKind::parse(s.get("kind")?.as_str()?)?,
                    base: s.get("base")?.as_f64()?,
                    total: s.get("total")?.as_f64()?,
                    sum: s.get("sum")?.as_f64()?,
                    count: s.get("count")?.as_u64()?,
                    min: s.get("min")?.as_f64()?,
                    max: s.get("max")?.as_f64()?,
                    last: s.get("last")?.as_f64()?,
                    evicted: s.get("evicted")?.as_u64()?,
                    points,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(SeriesDump {
            every: SimDuration(doc.get("every_ps")?.as_u64()?),
            samples: doc.get("samples")?.as_u64()?,
            dropped: doc.get("samples_dropped")?.as_u64()?,
            series,
        })
    }

    /// JSONL form: one meta object line, then one compact object per
    /// series — the `--series-out foo.jsonl` format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &Json::obj()
                .with("every_ps", self.every.as_ps())
                .with("samples", self.samples)
                .with("samples_dropped", self.dropped)
                .with("series", self.series.len())
                .render_compact(),
        );
        out.push('\n');
        let all = self.to_json();
        for s in all.get("series").map(Json::items).unwrap_or_default() {
            out.push_str(&s.render_compact());
            out.push('\n');
        }
        out
    }

    /// CSV form (`series,kind,t_ps,value` rows) — the
    /// `--series-out foo.csv` format.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,kind,t_ps,value\n");
        for s in &self.series {
            for (t, v) in &s.points {
                out.push_str(&format!(
                    "{},{},{},{v}\n",
                    s.name,
                    s.kind.as_str(),
                    t.as_ps()
                ));
            }
        }
        out
    }

    /// Chrome trace counter events (`"ph": "C"`), one per retained
    /// window, plottable in `chrome://tracing` / Perfetto alongside the
    /// Timeline's causal spans.
    pub fn chrome_counter_events(&self) -> Vec<Json> {
        let mut events = Vec::new();
        for s in &self.series {
            for (t, v) in &s.points {
                events.push(
                    Json::obj()
                        .with("name", s.name.as_str())
                        .with("cat", "series")
                        .with("ph", "C")
                        .with("ts", t.as_us_f64())
                        .with("pid", 0i64)
                        .with("args", Json::obj().with("value", *v)),
                );
            }
        }
        events
    }

    /// A standalone chrome-trace document holding only the counter
    /// events (used when no Timeline was recorded, e.g. sharded runs).
    pub fn to_chrome_json(&self) -> Json {
        Json::obj()
            .with("traceEvents", Json::Arr(self.chrome_counter_events()))
            .with("displayTimeUnit", "ms")
    }

    /// Appends this dump's counter events into an existing chrome-trace
    /// document's `traceEvents` array (the Timeline export), so series
    /// render alongside the causal spans.
    pub fn merge_into_chrome(&self, doc: Json) -> Json {
        let Json::Obj(mut entries) = doc else {
            return doc;
        };
        for (k, v) in entries.iter_mut() {
            if k == "traceEvents" {
                if let Json::Arr(items) = v {
                    items.extend(self.chrome_counter_events());
                }
            }
        }
        Json::Obj(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Registry;

    fn set_with_counter() -> (SeriesSet, Counter) {
        let set = SeriesSet::new(SimDuration::from_us(10), 8);
        let c = Counter::detached();
        set.track_counter("engine.events", &c);
        (set, c)
    }

    #[test]
    fn counter_windows_are_deltas_and_sum_to_total() {
        let (set, c) = set_with_counter();
        c.add(5);
        set.sample_at(SimTime::from_us(10));
        c.add(2);
        set.sample_at(SimTime::from_us(20));
        set.sample_at(SimTime::from_us(30));
        let d = set.dump();
        let s = &d.series[0];
        assert_eq!(
            s.points,
            vec![
                (SimTime::from_us(10), 5.0),
                (SimTime::from_us(20), 2.0),
                (SimTime::from_us(30), 0.0),
            ]
        );
        assert_eq!(s.sum, s.total - s.base);
        assert_eq!(s.total, 7.0);
        assert_eq!((s.min, s.max, s.last), (0.0, 5.0, 0.0));
    }

    #[test]
    fn tracking_starts_from_the_current_value() {
        let set = SeriesSet::new(SimDuration::from_us(10), 8);
        let c = Counter::detached();
        c.add(100);
        set.track_counter("pre", &c);
        c.add(3);
        set.sample_at(SimTime::from_us(10));
        let s = &set.dump().series[0];
        assert_eq!(s.base, 100.0);
        assert_eq!(s.points[0].1, 3.0);
        assert_eq!(s.sum, s.total - s.base);
    }

    #[test]
    fn eviction_keeps_aggregates_and_counts_drops() {
        let reg = Registry::new();
        let set = SeriesSet::new(SimDuration::from_us(1), 4);
        set.attach_probe(&reg.probe("obs"));
        let c = Counter::detached();
        set.track_counter("x", &c);
        for i in 1..=10u64 {
            c.add(i);
            set.sample_at(SimTime::from_us(i));
        }
        let d = set.dump();
        let s = &d.series[0];
        assert_eq!(s.points.len(), 4, "ring is capacity-bounded");
        assert_eq!(s.evicted, 6);
        assert_eq!(d.dropped, 6);
        assert_eq!(reg.snapshot().counter("obs.samples_dropped"), 6);
        // The delta invariant survives eviction: aggregates cover every
        // window, not just the retained ones.
        assert_eq!(s.sum, s.total - s.base);
        assert_eq!(s.total, (1..=10u64).sum::<u64>() as f64);
    }

    #[test]
    fn grid_sampling_stops_before_pending_time() {
        let (set, c) = set_with_counter();
        c.add(1);
        // Next pending event at t=35us: grid points 10, 20, 30 are
        // final; 40 is not.
        set.sample_grid_before(SimTime::from_us(35));
        assert_eq!(set.samples(), 3);
        assert_eq!(set.next_due(), SimTime::from_us(40));
        // A pending event exactly on the grid point must block it.
        set.sample_grid_before(SimTime::from_us(40));
        assert_eq!(set.samples(), 3);
    }

    #[test]
    fn finish_takes_the_tail_window() {
        let (set, c) = set_with_counter();
        set.sample_grid_before(SimTime::from_us(25)); // 10, 20
        c.add(9);
        set.finish(SimTime::from_us(25));
        let s = &set.dump().series[0];
        assert_eq!(s.points.last(), Some(&(SimTime::from_us(25), 9.0)));
        assert_eq!(s.sum, s.total - s.base);
        // Finishing exactly on a grid point takes no duplicate sample.
        let (set2, _c2) = set_with_counter();
        set2.finish(SimTime::from_us(20));
        let d2 = set2.dump();
        assert_eq!(
            d2.series[0]
                .points
                .iter()
                .map(|(t, _)| *t)
                .collect::<Vec<_>>(),
            vec![SimTime::from_us(10), SimTime::from_us(20)]
        );
    }

    #[test]
    fn gauge_series_sample_values() {
        let set = SeriesSet::new(SimDuration::from_us(10), 8);
        let g = Gauge::default();
        set.track_gauge("depth", &g);
        g.set(3.0);
        set.sample_at(SimTime::from_us(10));
        g.set(1.5);
        set.sample_at(SimTime::from_us(20));
        let s = &set.dump().series[0];
        assert_eq!(
            s.points,
            vec![(SimTime::from_us(10), 3.0), (SimTime::from_us(20), 1.5),]
        );
        assert_eq!((s.min, s.max, s.last, s.total), (1.5, 3.0, 1.5, 1.5));
    }

    #[test]
    fn dump_json_round_trips() {
        let (set, c) = set_with_counter();
        let g = Gauge::default();
        set.track_gauge("depth", &g);
        c.add(4);
        g.set(2.5);
        set.sample_at(SimTime::from_us(10));
        c.add(1);
        set.sample_at(SimTime::from_us(20));
        let dump = set.dump();
        let text = dump.to_json().render_pretty();
        let parsed = SeriesDump::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, dump);
    }

    #[test]
    fn exports_have_the_advertised_shapes() {
        let (set, c) = set_with_counter();
        c.add(4);
        set.sample_at(SimTime::from_us(10));
        let dump = set.dump();

        let jsonl = dump.to_jsonl();
        let mut lines = jsonl.lines();
        let meta = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(meta.get("series").unwrap().as_u64(), Some(1));
        assert!(Json::parse(lines.next().unwrap()).is_ok());

        let csv = dump.to_csv();
        assert!(csv.starts_with("series,kind,t_ps,value\n"));
        assert!(csv.contains("engine.events,counter,10000000,4"));

        let events = dump.chrome_counter_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            events[0]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(4.0)
        );

        // Merging into a timeline-style doc appends, losing nothing.
        let doc = Json::obj()
            .with("traceEvents", Json::Arr(vec![Json::obj().with("ph", "X")]))
            .with("displayTimeUnit", "ms");
        let merged = dump.merge_into_chrome(doc);
        assert_eq!(merged.get("traceEvents").unwrap().items().len(), 2);
        assert_eq!(merged.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    }

    #[test]
    fn prefix_and_absorb_namespace_shards() {
        let (a, c) = set_with_counter();
        c.incr();
        a.sample_at(SimTime::from_us(10));
        let (b, _c2) = set_with_counter();
        b.sample_at(SimTime::from_us(10));
        let mut merged = a.dump().prefixed("shard0");
        merged.absorb(b.dump().prefixed("shard1"));
        assert_eq!(merged.series[0].name, "shard0.engine.events");
        assert_eq!(merged.series[1].name, "shard1.engine.events");
        assert_eq!(merged.samples, 2);
        assert!(merged.series_named("shard1.engine.events").is_some());
    }
}
