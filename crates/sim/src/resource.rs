//! Reservation-based modelling of serially shared hardware.
//!
//! A [`FifoResource`] models a device that serves exactly one request at a
//! time in arrival order: the TURBOchannel bus, a host CPU, an on-board
//! i80960 firmware engine, or a single 155 Mbps link lane. Requests reserve
//! the earliest available slot and immediately learn their `(start, finish)`
//! times; the caller schedules its completion event at `finish`.
//!
//! This "advance reservation" style avoids explicit queueing events while
//! remaining exact for FIFO service: because the discrete-event kernel
//! dispatches events in time order, reservations are made in non-decreasing
//! request-time order, so reservation order equals FIFO arrival order.
//!
//! Utilisation accounting (busy time between two instants) is what the
//! throughput experiments use to report bus/CPU saturation, reproducing the
//! paper's observation that the DECstation 5000/200 TURBOchannel is the
//! bottleneck in Figures 2 and 4.
//!
//! # Example
//!
//! ```
//! use osiris_sim::{FifoResource, SimDuration, SimTime};
//!
//! let mut bus = FifoResource::new("turbochannel");
//! let dma = bus.acquire(SimTime::ZERO, SimDuration::from_ns(760));
//! let cpu = bus.acquire(SimTime::ZERO, SimDuration::from_ns(280));
//! assert_eq!(cpu.start, dma.finish); // FIFO: the CPU waits out the DMA
//! ```

use crate::time::{SimDuration, SimTime};

/// A window of service granted by a [`FifoResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service begins (>= request time).
    pub start: SimTime,
    /// When service completes.
    pub finish: SimTime,
}

impl Grant {
    /// Time spent waiting before service began.
    pub fn queueing_delay(&self, requested_at: SimTime) -> SimDuration {
        self.start.saturating_since(requested_at)
    }
}

/// A serially shared resource with FIFO service discipline.
#[derive(Debug, Clone)]
pub struct FifoResource {
    name: &'static str,
    free_at: SimTime,
    busy: SimDuration,
    grants: u64,
}

impl FifoResource {
    /// A new, idle resource. `name` appears in diagnostics only.
    pub fn new(name: &'static str) -> Self {
        FifoResource {
            name,
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            grants: 0,
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reserves `duration` of exclusive service at the earliest instant not
    /// before `now`. Returns when service starts and finishes.
    pub fn acquire(&mut self, now: SimTime, duration: SimDuration) -> Grant {
        let start = self.free_at.max(now);
        let finish = start + duration;
        self.free_at = finish;
        self.busy += duration;
        self.grants += 1;
        Grant { start, finish }
    }

    /// The instant at which the resource next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// True if the resource would serve a request at `now` immediately.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total busy time accumulated over the resource's lifetime.
    pub fn total_busy(&self) -> SimDuration {
        self.busy
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Fraction of `[from, to]` during which the resource was busy,
    /// approximated from lifetime busy time deltas captured by the caller.
    ///
    /// Callers snapshot `total_busy()` at `from` and call this at `to`.
    pub fn utilisation(busy_delta: SimDuration, from: SimTime, to: SimTime) -> f64 {
        let window = to.saturating_since(from);
        if window.is_zero() {
            return 0.0;
        }
        busy_delta.as_secs_f64() / window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new("bus");
        let g = r.acquire(SimTime::from_us(5), SimDuration::from_us(2));
        assert_eq!(g.start, SimTime::from_us(5));
        assert_eq!(g.finish, SimTime::from_us(7));
        assert_eq!(g.queueing_delay(SimTime::from_us(5)), SimDuration::ZERO);
    }

    #[test]
    fn contended_requests_queue_fifo() {
        let mut r = FifoResource::new("bus");
        let a = r.acquire(SimTime::from_us(0), SimDuration::from_us(10));
        let b = r.acquire(SimTime::from_us(1), SimDuration::from_us(5));
        let c = r.acquire(SimTime::from_us(2), SimDuration::from_us(1));
        assert_eq!(a.finish, SimTime::from_us(10));
        assert_eq!(b.start, SimTime::from_us(10));
        assert_eq!(b.finish, SimTime::from_us(15));
        assert_eq!(c.start, SimTime::from_us(15));
        assert_eq!(
            b.queueing_delay(SimTime::from_us(1)),
            SimDuration::from_us(9)
        );
    }

    #[test]
    fn resource_goes_idle_between_bursts() {
        let mut r = FifoResource::new("cpu");
        r.acquire(SimTime::from_us(0), SimDuration::from_us(1));
        assert!(r.is_idle_at(SimTime::from_us(1)));
        let g = r.acquire(SimTime::from_us(50), SimDuration::from_us(1));
        assert_eq!(g.start, SimTime::from_us(50));
    }

    #[test]
    fn busy_accounting() {
        let mut r = FifoResource::new("fw");
        r.acquire(SimTime::from_us(0), SimDuration::from_us(3));
        r.acquire(SimTime::from_us(10), SimDuration::from_us(4));
        assert_eq!(r.total_busy(), SimDuration::from_us(7));
        assert_eq!(r.grants(), 2);
        // 7 us busy over a 14 us window = 50 %.
        let u =
            FifoResource::utilisation(SimDuration::from_us(7), SimTime::ZERO, SimTime::from_us(14));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_window_utilisation_is_zero() {
        assert_eq!(
            FifoResource::utilisation(SimDuration::ZERO, SimTime::from_us(3), SimTime::from_us(3)),
            0.0
        );
    }
}
