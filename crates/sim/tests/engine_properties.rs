//! Property tests for the DES kernel itself: the ordering guarantees
//! every other crate builds on.
//!
//! Requires the `proptest-tests` feature (and its dev-dependencies,
//! which offline builds cannot fetch — see the manifest note).
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use osiris_sim::{EventQueue, FifoResource, Model, SimDuration, SimTime, Simulation};

struct Collector {
    seen: Vec<(SimTime, u64)>,
}

impl Model for Collector {
    type Event = u64;
    fn handle(&mut self, now: SimTime, ev: u64, _q: &mut EventQueue<u64>) {
        self.seen.push((now, ev));
    }
}

proptest! {
    /// Dispatch order is total: by time, then by push order.
    #[test]
    fn dispatch_is_time_then_fifo(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut sim = Simulation::new(Collector { seen: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            sim.queue.push(SimTime::from_ns(t), i as u64);
        }
        sim.run_to_completion();
        // Expected: stable sort of (time, index).
        let mut expect: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<(u64, u64)> =
            sim.model.seen.iter().map(|&(t, e)| (t.as_ps() / 1000, e)).collect();
        prop_assert_eq!(got, expect);
    }

    /// A FIFO resource never overlaps grants and never idles while work
    /// is queued contiguously.
    #[test]
    fn fifo_resource_grants_are_disjoint_and_ordered(
        reqs in proptest::collection::vec((0u64..500, 1u64..50), 1..100)
    ) {
        // Request times must be non-decreasing (as the DES guarantees).
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut r = FifoResource::new("x");
        let mut last_finish = SimTime::ZERO;
        let mut total_busy = SimDuration::ZERO;
        for &(t, d) in &sorted {
            let g = r.acquire(SimTime::from_us(t), SimDuration::from_us(d));
            prop_assert!(g.start >= last_finish, "grants must not overlap");
            prop_assert!(g.start >= SimTime::from_us(t), "no service before request");
            prop_assert_eq!(g.finish.since(g.start), SimDuration::from_us(d));
            // No idle gap if the request arrived before the previous finish.
            if SimTime::from_us(t) <= last_finish {
                prop_assert_eq!(g.start, last_finish, "work-conserving");
            }
            last_finish = g.finish;
            total_busy += SimDuration::from_us(d);
        }
        prop_assert_eq!(r.total_busy(), total_busy);
        prop_assert_eq!(r.grants(), sorted.len() as u64);
    }

    /// run_until never dispatches past the deadline and leaves the rest.
    #[test]
    fn run_until_partitions_cleanly(times in proptest::collection::vec(0u64..100, 1..50),
                                    deadline in 0u64..100) {
        let mut sim = Simulation::new(Collector { seen: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            sim.queue.push(SimTime::from_ns(t), i as u64);
        }
        sim.run_until(SimTime::from_ns(deadline));
        let dispatched = sim.model.seen.len();
        let remaining = sim.queue.len();
        prop_assert_eq!(dispatched + remaining, times.len());
        prop_assert!(sim.model.seen.iter().all(|&(t, _)| t <= SimTime::from_ns(deadline)));
        prop_assert_eq!(
            dispatched,
            times.iter().filter(|&&t| t <= deadline).count()
        );
    }
}
