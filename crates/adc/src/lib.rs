//! # osiris-adc — application device channels (§3.2)
//!
//! "An ADC gives an application program restricted but direct access to
//! the OSIRIS network adaptor, bypassing the operating system kernel."
//!
//! Mechanism, as the paper describes it:
//!
//! * the dual-port memory's queue pages are grouped into (transmit,
//!   receive) pairs; opening a channel maps one pair into the
//!   application's address space;
//! * the OS assigns the channel a set of VCIs, a transmit priority, and a
//!   list of physical pages the application may use for buffers;
//! * the board enforces that list: queueing a buffer with an unauthorized
//!   address raises an interrupt, and the OS turns it into an access-
//!   violation exception in the offending process;
//! * interrupts are still fielded by the kernel, which "directly signals a
//!   thread in the ADC channel driver" — the only kernel involvement on
//!   the data path.
//!
//! The channel driver itself is the same code as the kernel driver
//! ([`osiris_host::driver::OsirisDriver`]) pointed at the channel's queue
//! page — which is precisely the paper's point: "linked with the
//! application is an ADC channel driver, which performs essentially the
//! same functions as the in-kernel OSIRIS device driver".

use std::collections::{HashMap, HashSet};

use osiris_atm::Vci;
use osiris_board::dpram::{DpramLayout, QUEUE_PAGES};
use osiris_board::rx::RxProcessor;
use osiris_board::tx::TxProcessor;
use osiris_host::domain::DomainId;
use osiris_host::machine::HostMachine;
use osiris_sim::{SimDuration, SimTime};

/// One open channel.
#[derive(Debug, Clone)]
pub struct Adc {
    /// Owning application domain.
    pub domain: DomainId,
    /// The queue-page pair mapped into the application (same index on the
    /// transmit and receive halves).
    pub page: usize,
    /// VCIs routed to this channel.
    pub vcis: Vec<Vci>,
    /// Transmit priority.
    pub priority: u8,
    /// Physical frames the application may name in descriptors.
    pub frames: HashSet<u64>,
}

/// Errors opening a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdcError {
    /// All 15 application queue pages are in use.
    NoFreePages,
    /// The kernel may not be given an ADC (it owns page 0 already).
    KernelDomain,
}

impl std::fmt::Display for AdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdcError::NoFreePages => write!(f, "no free queue pages"),
            AdcError::KernelDomain => write!(f, "kernel does not use ADCs"),
        }
    }
}

impl std::error::Error for AdcError {}

/// Kernel-side channel management: page assignment, board programming,
/// violation accounting.
#[derive(Debug)]
pub struct AdcManager {
    free_pages: Vec<usize>,
    channels: HashMap<usize, Adc>,
    exceptions_raised: u64,
}

impl Default for AdcManager {
    fn default() -> Self {
        Self::new()
    }
}

impl AdcManager {
    /// A manager over the 15 non-kernel queue pages.
    pub fn new() -> Self {
        AdcManager {
            free_pages: {
                let mut pages: Vec<usize> = DpramLayout::adc_pages().collect();
                pages.reverse(); // pop() hands out page 1 first
                pages
            },
            channels: HashMap::new(),
            exceptions_raised: 0,
        }
    }

    /// Channels currently open.
    pub fn open_channels(&self) -> usize {
        self.channels.len()
    }

    /// Access-violation exceptions delivered so far.
    pub fn exceptions_raised(&self) -> u64 {
        self.exceptions_raised
    }

    /// Opens a channel: claims a queue-page pair, programs the board's
    /// VCI table, priority, and authorized page list. (The page mapping
    /// into the application's address space is connection-establishment
    /// work — kernel involvement is allowed here; §3.2: "The OS need only
    /// be involved in connection establishment and termination.")
    pub fn open(
        &mut self,
        domain: DomainId,
        vcis: Vec<Vci>,
        frames: HashSet<u64>,
        priority: u8,
        tx: &mut TxProcessor,
        rx: &mut RxProcessor,
    ) -> Result<usize, AdcError> {
        if domain.is_kernel() {
            return Err(AdcError::KernelDomain);
        }
        let page = self.free_pages.pop().ok_or(AdcError::NoFreePages)?;
        tx.set_priority(page, priority);
        tx.set_authorized_frames(page, Some(frames.clone()));
        rx.set_authorized_frames(page, Some(frames.clone()));
        for &vci in &vcis {
            rx.bind_vci(vci, page);
        }
        self.channels.insert(
            page,
            Adc {
                domain,
                page,
                vcis,
                frames,
                priority,
            },
        );
        Ok(page)
    }

    /// Closes a channel, unbinding its VCIs and releasing the page pair.
    pub fn close(&mut self, page: usize, tx: &mut TxProcessor, rx: &mut RxProcessor) {
        if let Some(adc) = self.channels.remove(&page) {
            for vci in adc.vcis {
                rx.unbind_vci(vci);
            }
            tx.set_authorized_frames(page, None);
            rx.set_authorized_frames(page, None);
            tx.set_priority(page, 0);
            self.free_pages.push(page);
        }
    }

    /// The channel on `page`, if open.
    pub fn get(&self, page: usize) -> Option<&Adc> {
        self.channels.get(&page)
    }

    /// Handles a board violation interrupt: the kernel fields the
    /// interrupt and raises an access-violation exception in the owning
    /// application (§3.2). Returns when the exception was delivered.
    pub fn deliver_violation(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        page: usize,
    ) -> SimTime {
        assert!(
            self.channels.contains_key(&page),
            "violation on unopened page {page}"
        );
        self.exceptions_raised += 1;
        let g = host.take_interrupt(now);
        // Exception dispatch into the application.
        let d = host.run_cpu(g.finish, host.spec.costs.syscall);
        d.finish
    }

    /// The data-path cost advantage of an ADC (used by the experiment
    /// harness): per message, the kernel-mediated path pays two domain
    /// crossings (send trap + receive wakeup crossing) that the ADC does
    /// not. Interrupts are fielded by the kernel either way.
    pub fn crossings_saved_per_message(host: &HostMachine) -> SimDuration {
        SimDuration::from_ps(host.spec.costs.syscall.as_ps() * 2)
    }
}

/// Sanity bound: queue pages are a scarce-ish resource (15 channels).
pub const MAX_CHANNELS: usize = QUEUE_PAGES - 1;

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_board::rx::RxConfig;
    use osiris_board::tx::TxConfig;
    use osiris_host::machine::MachineSpec;
    use osiris_mem::{PhysAddr, PhysBuffer};

    fn boards() -> (TxProcessor, RxProcessor) {
        (
            TxProcessor::new(TxConfig::paper_default(), DpramLayout::paper_default()),
            RxProcessor::new(RxConfig::paper_default(), DpramLayout::paper_default()),
        )
    }

    fn frames(range: std::ops::Range<u64>) -> HashSet<u64> {
        range.collect()
    }

    #[test]
    fn open_programs_the_board() {
        let (mut tx, mut rx) = boards();
        let mut mgr = AdcManager::new();
        let page = mgr
            .open(
                DomainId(1),
                vec![Vci(100)],
                frames(64..96),
                5,
                &mut tx,
                &mut rx,
            )
            .unwrap();
        assert!(page > 0);
        assert_eq!(mgr.open_channels(), 1);
        assert_eq!(mgr.get(page).unwrap().priority, 5);
    }

    #[test]
    fn kernel_cannot_open_adc() {
        let (mut tx, mut rx) = boards();
        let mut mgr = AdcManager::new();
        assert_eq!(
            mgr.open(DomainId::KERNEL, vec![], frames(0..1), 0, &mut tx, &mut rx),
            Err(AdcError::KernelDomain)
        );
    }

    #[test]
    fn pages_exhaust_at_15_channels() {
        let (mut tx, mut rx) = boards();
        let mut mgr = AdcManager::new();
        for i in 0..MAX_CHANNELS {
            mgr.open(
                DomainId(i as u32 + 1),
                vec![],
                frames(0..1),
                0,
                &mut tx,
                &mut rx,
            )
            .unwrap();
        }
        assert_eq!(
            mgr.open(DomainId(99), vec![], frames(0..1), 0, &mut tx, &mut rx),
            Err(AdcError::NoFreePages)
        );
    }

    #[test]
    fn close_releases_the_page() {
        let (mut tx, mut rx) = boards();
        let mut mgr = AdcManager::new();
        let p = mgr
            .open(DomainId(1), vec![Vci(7)], frames(0..4), 1, &mut tx, &mut rx)
            .unwrap();
        mgr.close(p, &mut tx, &mut rx);
        assert_eq!(mgr.open_channels(), 0);
        let p2 = mgr
            .open(DomainId(2), vec![], frames(0..1), 0, &mut tx, &mut rx)
            .unwrap();
        assert_eq!(p2, p, "freed page is reused");
    }

    #[test]
    fn unauthorized_tx_descriptor_trips_the_board() {
        let (mut tx, mut rx) = boards();
        let mut mgr = AdcManager::new();
        let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 7);
        // Authorize frames 64..96 (addresses 0x40000..0x60000).
        let page = mgr
            .open(
                DomainId(1),
                vec![Vci(50)],
                frames(64..96),
                0,
                &mut tx,
                &mut rx,
            )
            .unwrap();
        // The app queues a buffer OUTSIDE its pages.
        use osiris_board::descriptor::Descriptor;
        tx.queue_mut(page)
            .push(Descriptor::tx(PhysAddr(0x1000), 100, Vci(50), true))
            .unwrap();
        let mut link = osiris_atm::StripedLink::new(
            osiris_atm::LinkSpec::sts3c_back_to_back(),
            &osiris_atm::stripe::SkewConfig::none(),
        );
        let mut slab = osiris_atm::CellSlab::new();
        let out = tx
            .service(
                SimTime::ZERO,
                &mut host.mem_sys,
                &host.phys,
                &mut link,
                &mut slab,
            )
            .unwrap();
        assert!(out.violation);
        assert!(out.arrivals.is_empty(), "nothing transmitted");
        assert_eq!(tx.violations(), 1);
        // Kernel converts the interrupt into an exception.
        let t = mgr.deliver_violation(SimTime::ZERO, &mut host, page);
        assert!(t >= SimTime::from_us(75));
        assert_eq!(mgr.exceptions_raised(), 1);
    }

    #[test]
    fn authorized_tx_descriptor_passes() {
        let (mut tx, mut rx) = boards();
        let mut mgr = AdcManager::new();
        let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 7);
        let page = mgr
            .open(
                DomainId(1),
                vec![Vci(50)],
                frames(64..96),
                0,
                &mut tx,
                &mut rx,
            )
            .unwrap();
        host.phys.write(PhysAddr(64 * 4096), &[1u8; 100]);
        let buf = PhysBuffer::new(PhysAddr(64 * 4096), 100);
        use osiris_board::descriptor::Descriptor;
        tx.queue_mut(page)
            .push(Descriptor::tx(buf.addr, buf.len, Vci(50), true))
            .unwrap();
        let mut link = osiris_atm::StripedLink::new(
            osiris_atm::LinkSpec::sts3c_back_to_back(),
            &osiris_atm::stripe::SkewConfig::none(),
        );
        let mut slab = osiris_atm::CellSlab::new();
        let out = tx
            .service(
                SimTime::ZERO,
                &mut host.mem_sys,
                &host.phys,
                &mut link,
                &mut slab,
            )
            .unwrap();
        assert!(!out.violation);
        assert_eq!(out.arrivals.len(), 3);
    }

    #[test]
    fn adc_priority_beats_kernel_queue() {
        let (mut tx, mut rx) = boards();
        let mut mgr = AdcManager::new();
        let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 7);
        let page = mgr
            .open(
                DomainId(1),
                vec![Vci(60)],
                frames(0..8192),
                7,
                &mut tx,
                &mut rx,
            )
            .unwrap();
        use osiris_board::descriptor::Descriptor;
        // Kernel PDU on page 0, ADC PDU on its page.
        tx.queue_mut(0)
            .push(Descriptor::tx(PhysAddr(0x1000), 44, Vci(1), true))
            .unwrap();
        tx.queue_mut(page)
            .push(Descriptor::tx(PhysAddr(0x2000), 44, Vci(60), true))
            .unwrap();
        let mut link = osiris_atm::StripedLink::new(
            osiris_atm::LinkSpec::sts3c_back_to_back(),
            &osiris_atm::stripe::SkewConfig::none(),
        );
        let mut slab = osiris_atm::CellSlab::new();
        let first = tx
            .service(
                SimTime::ZERO,
                &mut host.mem_sys,
                &host.phys,
                &mut link,
                &mut slab,
            )
            .unwrap();
        assert_eq!(first.queue, page, "priority 7 transmits first");
    }
}
