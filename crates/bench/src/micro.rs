//! A minimal wall-clock microbench harness for the `benches/` targets.
//!
//! The offline build cannot fetch criterion, and these benches only need
//! "ns per iteration, roughly stable": warm up briefly, then time batches
//! until a measurement budget is spent and report the best batch (least
//! scheduler noise). Deterministic output ordering, one line per bench.

use std::time::{Duration, Instant};

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Wall-clock budget spent warming up each benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Runs `f` repeatedly and prints `name: <ns>/iter [<MB/s>]`.
///
/// `bytes`, when given, is the payload size one iteration processes; the
/// report then includes throughput, mirroring criterion's `Throughput`.
pub fn bench<R>(name: &str, bytes: Option<u64>, mut f: impl FnMut() -> R) {
    // Warm-up: also discovers a batch size that runs ~1 ms per batch so
    // the timer overhead disappears into the batch.
    let mut iters_per_batch = 1u64;
    let warm_start = Instant::now();
    loop {
        let t = Instant::now();
        for _ in 0..iters_per_batch {
            std::hint::black_box(f());
        }
        let took = t.elapsed();
        if warm_start.elapsed() >= WARMUP_BUDGET {
            break;
        }
        if took < Duration::from_millis(1) {
            iters_per_batch = (iters_per_batch * 2).min(1 << 20);
        }
    }

    let mut best_ns_per_iter = f64::INFINITY;
    let measure_start = Instant::now();
    while measure_start.elapsed() < MEASURE_BUDGET {
        let t = Instant::now();
        for _ in 0..iters_per_batch {
            std::hint::black_box(f());
        }
        let ns = t.elapsed().as_nanos() as f64 / iters_per_batch as f64;
        if ns < best_ns_per_iter {
            best_ns_per_iter = ns;
        }
    }

    match bytes {
        Some(b) => {
            let mbps = b as f64 / best_ns_per_iter * 1e9 / (1024.0 * 1024.0);
            println!("{name:<44} {best_ns_per_iter:>12.1} ns/iter  {mbps:>9.0} MiB/s");
        }
        None => println!("{name:<44} {best_ns_per_iter:>12.1} ns/iter"),
    }
}
