//! Machine-readable experiment results.
//!
//! Every regeneration binary accepts `--json`; instead of the paper-style
//! text tables it then emits one [`ExperimentResult`] document on stdout,
//! so EXPERIMENTS.md refreshes and downstream analysis (plotting,
//! regression tracking in CI) work from the same source of truth.

use serde::Serialize;

/// One measured point, optionally paired with the paper's number.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Independent variable (message size in bytes, etc.).
    pub x: u64,
    /// Measured value.
    pub measured: f64,
    /// The paper's value at this point, when the paper gives one.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub paper: Option<f64>,
}

/// One named series of points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Series label (e.g. "double-cell DMA").
    pub name: String,
    /// The points, in x order.
    pub points: Vec<Point>,
}

/// A whole experiment: the unit a regeneration binary emits.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Which paper artifact this regenerates ("table1", "fig2", …).
    pub id: String,
    /// Human description.
    pub title: String,
    /// Unit of the measured values ("us", "Mbps").
    pub unit: String,
    /// The series.
    pub series: Vec<Series>,
}

impl ExperimentResult {
    /// A new, empty result document.
    pub fn new(id: &str, title: &str, unit: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            unit: unit.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds a series from parallel x/measured (and optional paper) arrays.
    pub fn push_series(&mut self, name: &str, xs: &[u64], measured: &[f64], paper: Option<&[f64]>) {
        assert_eq!(xs.len(), measured.len());
        let points = xs
            .iter()
            .zip(measured)
            .enumerate()
            .map(|(i, (&x, &m))| Point { x, measured: m, paper: paper.map(|p| p[i]) })
            .collect();
        self.series.push(Series { name: name.to_string(), points });
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("result serialisation")
    }
}

/// True if the process arguments request JSON output.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut r = ExperimentResult::new("fig2", "receive throughput", "Mbps");
        r.push_series("single", &[1024, 2048], &[72.5, 121.5], Some(&[70.0, 120.0]));
        r.push_series("double", &[1024, 2048], &[74.0, 127.7], None);
        let j = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["id"], "fig2");
        assert_eq!(v["series"][0]["points"][1]["x"], 2048);
        assert_eq!(v["series"][0]["points"][1]["paper"], 120.0);
        assert!(v["series"][1]["points"][0].get("paper").is_none());
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut r = ExperimentResult::new("x", "y", "z");
        r.push_series("bad", &[1, 2], &[1.0], None);
    }
}
