//! Machine-readable experiment results.
//!
//! Every regeneration binary accepts `--json`; instead of the paper-style
//! text tables it then emits one [`ExperimentResult`] document on stdout,
//! so EXPERIMENTS.md refreshes and downstream analysis (plotting,
//! regression tracking in CI) work from the same source of truth. The
//! document is built with the in-tree serializer (`osiris::sim::Json`) —
//! no external dependencies — and parses back with the same module.

use osiris::sim::Json;

/// One measured point, optionally paired with the paper's number.
#[derive(Debug, Clone)]
pub struct Point {
    /// Independent variable (message size in bytes, etc.).
    pub x: u64,
    /// Measured value.
    pub measured: f64,
    /// The paper's value at this point, when the paper gives one.
    pub paper: Option<f64>,
}

/// One named series of points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series label (e.g. "double-cell DMA").
    pub name: String,
    /// The points, in x order.
    pub points: Vec<Point>,
}

/// A whole experiment: the unit a regeneration binary emits.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Which paper artifact this regenerates ("table1", "fig2", …).
    pub id: String,
    /// Human description.
    pub title: String,
    /// Unit of the measured values ("us", "Mbps").
    pub unit: String,
    /// The series.
    pub series: Vec<Series>,
}

impl ExperimentResult {
    /// A new, empty result document.
    pub fn new(id: &str, title: &str, unit: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            unit: unit.to_string(),
            series: Vec::new(),
        }
    }

    /// Adds a series from parallel x/measured (and optional paper) arrays.
    pub fn push_series(&mut self, name: &str, xs: &[u64], measured: &[f64], paper: Option<&[f64]>) {
        assert_eq!(xs.len(), measured.len());
        let points = xs
            .iter()
            .zip(measured)
            .enumerate()
            .map(|(i, (&x, &m))| Point {
                x,
                measured: m,
                paper: paper.map(|p| p[i]),
            })
            .collect();
        self.series.push(Series {
            name: name.to_string(),
            points,
        });
    }

    /// The document as a JSON tree. `paper` is omitted where absent,
    /// matching the original wire shape.
    pub fn to_json_value(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let points = s
                    .points
                    .iter()
                    .map(|p| {
                        let mut obj = Json::obj().with("x", p.x).with("measured", p.measured);
                        if let Some(paper) = p.paper {
                            obj = obj.with("paper", paper);
                        }
                        obj
                    })
                    .collect();
                Json::obj()
                    .with("name", s.name.as_str())
                    .with("points", Json::Arr(points))
            })
            .collect();
        Json::obj()
            .with("id", self.id.as_str())
            .with("title", self.title.as_str())
            .with("unit", self.unit.as_str())
            .with("series", Json::Arr(series))
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }
}

/// True if the process arguments request JSON output.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut r = ExperimentResult::new("fig2", "receive throughput", "Mbps");
        r.push_series(
            "single",
            &[1024, 2048],
            &[72.5, 121.5],
            Some(&[70.0, 120.0]),
        );
        r.push_series("double", &[1024, 2048], &[74.0, 127.7], None);
        let j = r.to_json();
        let v = Json::parse(&j).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("fig2"));
        let s0p1 = v
            .get("series")
            .unwrap()
            .idx(0)
            .unwrap()
            .get("points")
            .unwrap()
            .idx(1)
            .unwrap();
        assert_eq!(s0p1.get("x").unwrap().as_u64(), Some(2048));
        assert_eq!(s0p1.get("paper").unwrap().as_f64(), Some(120.0));
        let s1p0 = v
            .get("series")
            .unwrap()
            .idx(1)
            .unwrap()
            .get("points")
            .unwrap()
            .idx(0)
            .unwrap();
        assert!(s1p0.get("paper").is_none());
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut r = ExperimentResult::new("x", "y", "z");
        r.push_series("bad", &[1, 2], &[1.0], None);
    }
}
