//! Regenerates the in-text numbers and "lessons" of §2 and §3: the
//! results the paper states in prose rather than in a table or figure.

use osiris::atm::stripe::SkewConfig;
use osiris::board::descriptor::{DescRing, Descriptor, LockedRing};
use osiris::config::TestbedConfig;
use osiris::experiments::{dma_ceilings, interrupt_suppression, pio_vs_dma, skew_vs_merging};
use osiris::host::machine::{HostMachine, MachineSpec};
use osiris::host::wiring::WiringMode;
use osiris::mem::PhysAddr;
use osiris::proto::frag::{fragment_buffer_count, fragment_layout, page_aligned_mtu};
use osiris::report;
use osiris::sim::{SimDuration, SimTime};
use osiris::Scenario;
use osiris_bench::{bench_out_path, BenchSnapshot, Better};

fn section(title: &str) {
    println!("\n==== {title} ====");
}

fn main() {
    section("§2.5.1 DMA ceilings (TURBOchannel arithmetic)");
    let paper = [366.7, 463.2, 502.9, 586.7, 651.9];
    for (row, p) in dma_ceilings().into_iter().zip(paper) {
        println!(
            "{}",
            report::compare(&format!("{} B {}", row.0, row.1), p, row.2)
        );
    }
    println!("  (paper quotes 367 / 463 / 503 / 587 Mbps)");

    section("§2.1.2 interrupt cost and suppression");
    let ds = MachineSpec::ds5000_200();
    println!(
        "interrupt service: {} (paper: 75 us);  UDP/IP PDU service ≈ {} us (paper: ~200 us)",
        ds.costs.interrupt_service,
        (ds.costs.driver_pdu
            + ds.costs.driver_buffer
            + ds.costs.ip_fixed
            + ds.costs.udp_fixed
            + ds.costs.thread_dispatch
            + ds.costs.interrupt_service)
            .as_us_f64()
    );
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 4096;
    cfg.messages = 30;
    cfg.warmup = 3;
    let (per_pdu, transition) = interrupt_suppression(&cfg);
    println!(
        "interrupts per PDU under a 4 KB burst: traditional {per_pdu:.2}, OSIRIS {transition:.2}"
    );

    section("§2.2 physical buffer fragmentation (16 KB message)");
    for (label, mtu) in [
        ("MTU = 4 KB (misaligned)", 4096u32),
        (
            "MTU = page + IP header (aligned)",
            page_aligned_mtu(1, 4096),
        ),
    ] {
        let plan = fragment_layout(16 * 1024, mtu);
        let bufs: u32 = (0..plan.count())
            .map(|i| fragment_buffer_count(plan.offset_of(i) % 4096, plan.sizes[i], 4096))
            .sum();
        println!(
            "{label:<36} {} fragments, {bufs} physical buffers",
            plan.count()
        );
    }
    println!("  (paper: 'up to 14 physical buffers' misaligned; aligned boundaries fix it)");
    let (d, sg) = osiris::experiments::virtual_dma_setup_cost(MachineSpec::ds5000_200(), 4);
    println!(
        "16 KB message setup: {d:.1} us via per-buffer descriptors, {sg:.1} us via an\n\
         IOMMU scatter/gather map — 'fragmentation is a potential performance concern\n\
         even when virtual DMA is available'"
    );

    section("§2.3 lazy cache invalidation feasibility");
    println!(
        "receive rotation: 48 buffers x 16 KB = {} KB >> 64 KB data cache;",
        48 * 16
    );
    println!("a line must survive 47 intervening buffers to go stale — the paper saw none.");
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 16 * 1024;
    cfg.messages = 16;
    cfg.warmup = 2;
    use osiris::experiments::receive_throughput;
    use osiris::host::driver::CacheStrategy;
    let lazy = receive_throughput(&cfg).mbps;
    cfg.cache_strategy = CacheStrategy::Eager;
    let eager = receive_throughput(&cfg).mbps;
    println!("16 KB receive throughput: lazy {lazy:.0} Mbps vs eager-invalidate {eager:.0} Mbps");

    section("§2.4 page wiring");
    let h = HostMachine::boot(MachineSpec::ds5000_200(), 1);
    println!(
        "per-page cost: Mach standard {} vs low-level {} (authors switched to the latter)",
        WiringMode::MachStandard.cost_per_page(&h),
        WiringMode::LowLevel.cost_per_page(&h)
    );

    section("§2.6 striping skew vs double-cell combining");
    let (aligned, skewed) = skew_vs_merging(MachineSpec::ds5000_200());
    println!(
        "double-cell merges per cell: aligned lanes {aligned:.2}, mux-skewed lanes {skewed:.2}"
    );
    println!("  ('once skew is introduced, the probability that two successive cells");
    println!("    will be received in order is greatly reduced')");
    let _ = SkewConfig::none();

    section("§2.7 DMA versus PIO (application access rate, 64 KB)");
    for m in [MachineSpec::ds5000_200(), MachineSpec::dec3000_600()] {
        let (pio, dma) = pio_vs_dma(m);
        println!(
            "{:<14} PIO {pio:>6.0} Mbps   DMA+CPU-read {dma:>6.0} Mbps",
            m.name
        );
    }
    println!("  (and CPU-side checksum on the 5000/200 caps near the paper's 80 Mbps)");

    section("§2.1.1 lock-free vs test-and-set queues (contended enqueue latency)");
    lock_comparison();

    section("§3.1 moving 16 KB across a protection domain (us per message)");
    for m in [MachineSpec::ds5000_200(), MachineSpec::dec3000_600()] {
        let (copy, uncached, cached) = osiris::experiments::cross_domain_delivery(m, 16 * 1024);
        println!(
            "{:<14} copy {copy:>6.0}   uncached fbuf {uncached:>5.0}   cached fbuf {cached:>4.0}  ({:.0}x)",
            m.name,
            uncached / cached
        );
    }
    println!("  (paper: cached vs uncached is 'an order of magnitude difference';");
    println!("   copying is what fbufs exist to avoid)");

    section("§3.1 prioritised traffic under receiver overload");
    let r = osiris::experiments::priority_under_overload(MachineSpec::ds5000_200(), 24);
    println!(
        "high priority: {}/{} delivered;  low priority: {}/{} delivered, {} shed on the board",
        r.hi_delivered, r.hi_offered, r.lo_delivered, r.lo_offered, r.shed_on_board
    );
    println!(
        "host buffer pops spent on shed PDUs: {} ('before they have consumed any",
        r.host_work_for_shed
    );
    println!("  processing resources on the host')");

    section("anatomy of a 1024 B one-way trip (5000/200, UDP/IP)");
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    let budget = osiris::experiments::latency_budget(&cfg);
    print!("{}", report::latency_anatomy(&budget));

    section("critical-path attribution over a 1024 B ping-pong (µs per stage)");
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = 8;
    let anatomy = osiris::experiments::stage_anatomy(Scenario::Pair, &cfg);
    print!(
        "{}",
        report::stage_table(
            &format!("stage percentiles over {} traced PDUs", anatomy.pdus),
            &anatomy.stages,
            &anatomy.e2e,
        )
    );
    if let Some(warn) = report::dropped_spans_warning(&anatomy.snapshot) {
        println!("{warn}");
    }

    if let Some(path) = bench_out_path() {
        let mut snap = BenchSnapshot::new("lessons");
        snap.headline(
            "interrupts_per_pdu_suppressed",
            transition,
            "intr/PDU",
            Better::Lower,
        );
        snap.headline("rx_16k_lazy_mbps", lazy, "Mbps", Better::Higher);
        snap.headline("e2e_p99_1024b_us", anatomy.e2e.p99, "us", Better::Lower);
        snap.set_anatomy(&anatomy);
        std::fs::write(&path, snap.to_json()).expect("write bench snapshot");
        eprintln!("wrote {path}");
    }

    section("§3.2 ADC data-path savings");
    let h = HostMachine::boot(MachineSpec::ds5000_200(), 1);
    println!(
        "domain crossings avoided per message: 2 x syscall = {}",
        SimDuration::from_ps(h.spec.costs.syscall.as_ps() * 2)
    );
    println!("run `table1 -- --adc` for the end-to-end latency comparison.");
}

/// §2.1.1: compare enqueue latency for the lock-free ring vs the
/// test-and-set ring when host and board hit the queue back to back.
fn lock_comparison() {
    let d = Descriptor::tx(PhysAddr(0x1000), 100, osiris::atm::Vci(1), true);
    // Lock-free: producer check + push, no serialisation against the
    // consumer. TURBOchannel costs: 1 load + 4 stores.
    let mut free_ring = DescRing::new(64);
    let (_, c1) = free_ring.producer_check();
    let c2 = free_ring.push(d).unwrap();
    let tc_cycle_ns = 40.0;
    let lock_free_ns = (c1.loads + c2.loads) as f64 * 15.0 * tc_cycle_ns
        + (c1.stores + c2.stores) as f64 * 3.0 * tc_cycle_ns;

    // Locked: same ring work plus lock acquire/release, and the host must
    // wait out the board's critical section (2 us hold, arriving midway).
    let mut locked = LockedRing::new(64);
    let hold = SimDuration::from_us(2);
    // Board holds the lock first.
    let (_, _, _) = locked.with_lock(SimTime::ZERO, hold, |r| r.push(d).unwrap());
    let (_, grant, costs) = locked.with_lock(SimTime::from_us(1), hold, |r| r.pop());
    let waited = grant.start.since(SimTime::from_us(1));
    let locked_ns = lock_free_ns
        + (costs.loads as f64 * 15.0 + costs.stores as f64 * 3.0) * tc_cycle_ns
        + waited.as_ns_f64();

    println!(
        "lock-free enqueue:   {:>7.0} ns (no waiting possible)",
        lock_free_ns
    );
    println!(
        "test-and-set enqueue:{:>7.0} ns (incl. {} waiting on the peer)",
        locked_ns, waited
    );
}
