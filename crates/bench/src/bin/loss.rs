//! Regenerates the **loss sweep**: goodput and tail latency vs seeded
//! cell-loss rate, exercising the whole fault plane end to end — wire
//! faults in, CRC/checksum shields, reassembly-timeout reclaim, and
//! send-side retransmission pulling goodput back up.
//!
//! The paper's adaptor ran over an error-free fabric ("we have not
//! observed any cell loss"), so it has no figure to compare against;
//! this sweep is the reproduction's own stress artifact. The simulator
//! is deterministic: the same config and seed reproduce `BENCH_loss.json`
//! bit-identically, which is what lets CI gate on the committed baseline.

use osiris::config::TestbedConfig;
use osiris::experiments::loss_sweep;
use osiris::report;
use osiris_bench::{
    bench_out_path, json_requested, quick_requested, BenchSnapshot, Better, ExperimentResult,
};

fn main() {
    // Full sweep spans four decades of per-cell loss; `--quick` keeps the
    // two points the headlines guard (clean link and 1e-3).
    let rates: Vec<f64> = if quick_requested() {
        vec![0.0, 1e-3]
    } else {
        vec![0.0, 1e-4, 1e-3, 1e-2]
    };
    // Small messages keep the per-datagram loss probability low enough
    // that 16 retries always converge, even at the 1e-2 extreme.
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 1024;
    cfg.messages = if quick_requested() { 12 } else { 24 };
    let points = loss_sweep(&cfg, &rates);

    let at = |r: f64| {
        points
            .iter()
            .find(|p| (p.loss_rate - r).abs() < 1e-12)
            .expect("sweep point missing")
    };
    let clean = at(0.0);
    let lossy = at(1e-3);
    assert!(
        lossy.goodput_mbps > 0.0,
        "reliable mode must converge to nonzero goodput at 1e-3"
    );
    let gave_up: u64 = points.iter().map(|p| p.gave_up).sum();
    let corrupt: u64 = points.iter().map(|p| p.corrupt_deliveries).sum();
    assert_eq!(corrupt, 0, "corrupted payload reached an application");

    // Loss rates are fractional, so the series' x axis is parts-per-million.
    let ppm: Vec<u64> = rates.iter().map(|r| (r * 1e6).round() as u64).collect();
    let goodput: Vec<f64> = points.iter().map(|p| p.goodput_mbps).collect();
    let p99: Vec<f64> = points.iter().map(|p| p.rtt_p99_us).collect();
    let retrans: Vec<f64> = points.iter().map(|p| p.retransmits as f64).collect();
    let reaps: Vec<f64> = points.iter().map(|p| p.timeout_reaps as f64).collect();

    let mut r = ExperimentResult::new("loss", "Goodput vs cell-loss rate (reliable mode)", "Mbps");
    r.push_series("goodput", &ppm, &goodput, None);
    let mut rt = ExperimentResult::new("loss_p99", "p99 RTT vs cell-loss rate", "us");
    rt.push_series("rtt_p99", &ppm, &p99, None);
    rt.push_series("retransmits", &ppm, &retrans, None);
    rt.push_series("timeout_reaps", &ppm, &reaps, None);

    if let Some(path) = bench_out_path() {
        let mut snap = BenchSnapshot::new("loss");
        snap.headline(
            "goodput_clean_mbps",
            clean.goodput_mbps,
            "Mbps",
            Better::Higher,
        );
        snap.headline(
            "goodput_at_loss_1e3_mbps",
            lossy.goodput_mbps,
            "Mbps",
            Better::Higher,
        );
        snap.headline("p99_at_loss_1e3_us", lossy.rtt_p99_us, "us", Better::Lower);
        snap.headline("gave_up_total", gave_up as f64, "datagrams", Better::Lower);
        snap.push_result(&r);
        snap.push_result(&rt);
        std::fs::write(&path, snap.to_json()).expect("write bench snapshot");
        eprintln!("wrote {path}");
    }
    // One document on stdout, per the --json contract; the p99/counter
    // series are archived in the --bench-out snapshot alongside it.
    if json_requested() {
        println!("{}", r.to_json());
        return;
    }
    println!(
        "{}",
        report::series(
            "Loss sweep: goodput under seeded cell loss (Mbps)",
            "loss ppm",
            &ppm,
            &["goodput"],
            std::slice::from_ref(&goodput),
        )
    );
    println!(
        "{}",
        report::series(
            "Loss sweep: recovery machinery (p99 us / counts)",
            "loss ppm",
            &ppm,
            &["p99 RTT (us)", "retransmits", "timeout reaps"],
            &[p99.clone(), retrans.clone(), reaps.clone()],
        )
    );
    for p in &points {
        println!(
            "  rate {:>8.0e}: {:>7.1} Mbps, p99 {:>8.1} us, {} retrans, {} reaps, {} dropped, {} corrupted, {} gave up",
            p.loss_rate,
            p.goodput_mbps,
            p.rtt_p99_us,
            p.retransmits,
            p.timeout_reaps,
            p.cells_dropped,
            p.cells_corrupted,
            p.gave_up
        );
    }
}
