//! Compares two `BENCH_*.json` snapshots headline by headline:
//!
//! ```text
//! cargo run -p osiris-bench --bin regress -- <old.json> <new.json> [--threshold pct]
//! ```
//!
//! Exits 0 when every guarded metric held (moves in the good direction
//! are always fine), 1 when any metric regressed past the threshold or
//! vanished from the new snapshot, 2 on usage/parse errors. CI runs
//! this against the committed baseline after the bench smoke.

use osiris_bench::snapshot::{compare, BenchSnapshot};

fn fail(msg: &str) -> ! {
    eprintln!("regress: {msg}");
    eprintln!("usage: regress <old.json> <new.json> [--threshold pct]");
    std::process::exit(2);
}

fn load(path: &str) -> BenchSnapshot {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    BenchSnapshot::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn main() {
    let mut threshold = 5.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threshold" {
            let v = args
                .next()
                .unwrap_or_else(|| fail("--threshold needs a value"));
            threshold = v
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad threshold {v:?}")));
        } else {
            paths.push(a);
        }
    }
    if paths.len() != 2 {
        fail("expected exactly two snapshot paths");
    }
    let (old, new) = (load(&paths[0]), load(&paths[1]));
    if old.name != new.name {
        fail(&format!(
            "snapshots are from different benches: {:?} vs {:?}",
            old.name, new.name
        ));
    }
    println!(
        "regress {}: {} (baseline) vs {} (candidate)",
        old.name, paths[0], paths[1]
    );
    let report = compare(&old, &new, threshold);
    print!("{}", report.render());
    if new.dropped_spans > 0 {
        println!(
            "WARN: candidate dropped {} spans — its stage rows are incomplete",
            new.dropped_spans
        );
    }
    std::process::exit(if report.failures() > 0 { 1 } else { 0 });
}
