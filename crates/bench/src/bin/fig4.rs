//! Regenerates **Figure 4: UDP/IP/OSIRIS transmit-side throughput**
//! (Mbps vs message size).
//!
//! "The maximal throughput achieved on the transmit side is currently 325
//! Mbps. This number is limited entirely by TurboChannel contention due
//! to the high overhead of single ATM cell payload sized DMA transfers."
//! (The transmit DMA controller had not yet received the double-cell
//! modification.) Series: DEC 3000/600, 3000/600 with UDP checksumming,
//! DEC 5000/200 — all single-cell transmit DMA.

use osiris::config::TestbedConfig;
use osiris::experiments::{stage_anatomy, transmit_throughput};
use osiris::report;
use osiris::Scenario;
use osiris_bench::{
    at_size, bench_out_path, figure_sizes, json_requested, BenchSnapshot, Better, ExperimentResult,
};

fn main() {
    let sizes = figure_sizes();
    let mut alpha = Vec::new();
    let mut alpha_cs = Vec::new();
    let mut ds = Vec::new();
    for &size in &sizes {
        alpha.push(transmit_throughput(&at_size(
            TestbedConfig::dec3000_600_udp(),
            size,
        )));
        let mut cfg = at_size(TestbedConfig::dec3000_600_udp(), size);
        cfg.udp_checksum = true;
        alpha_cs.push(transmit_throughput(&cfg));
        ds.push(transmit_throughput(&at_size(
            TestbedConfig::ds5000_200_udp(),
            size,
        )));
    }
    let mut r = ExperimentResult::new("fig4", "transmit throughput", "Mbps");
    r.push_series("3000/600", &sizes, &alpha, None);
    r.push_series("3000/600+cs", &sizes, &alpha_cs, None);
    r.push_series("5000/200", &sizes, &ds, None);
    if let Some(path) = bench_out_path() {
        let mut snap = BenchSnapshot::new("fig4");
        snap.headline(
            "peak_tx_3000_600_mbps",
            *alpha.last().unwrap(),
            "Mbps",
            Better::Higher,
        );
        snap.headline(
            "peak_tx_5000_200_mbps",
            *ds.last().unwrap(),
            "Mbps",
            Better::Higher,
        );
        snap.push_result(&r);
        let cfg = at_size(TestbedConfig::dec3000_600_udp(), 16 * 1024);
        snap.set_anatomy(&stage_anatomy(Scenario::TxBench, &cfg));
        std::fs::write(&path, snap.to_json()).expect("write bench snapshot");
        eprintln!("wrote {path}");
    }
    if json_requested() {
        println!("{}", r.to_json());
        return;
    }
    let kb: Vec<u64> = sizes.iter().map(|s| s / 1024).collect();
    if std::env::args().any(|a| a == "--plot") {
        println!(
            "{}",
            report::ascii_plot(
                "Figure 4 (plot): transmit Mbps",
                "Throughput in Mbps",
                &kb,
                &["3000/600", "3000/600 + UDP-CS", "5000/200"],
                &[alpha.clone(), alpha_cs.clone(), ds.clone()],
                14,
            )
        );
        return;
    }
    println!(
        "{}",
        report::series(
            "Figure 4: UDP/IP transmit throughput (Mbps), single-cell DMA",
            "KB",
            &kb,
            &["3000/600", "3000/600 + UDP-CS", "5000/200"],
            &[alpha.clone(), alpha_cs.clone(), ds.clone()],
        )
    );
    println!(
        "{}",
        report::compare("peak transmit (3000/600)", 340.0, *alpha.last().unwrap())
    );
    println!(
        "{}",
        report::compare("peak transmit (5000/200)", 300.0, *ds.last().unwrap())
    );
    println!("  (paper: 'maximal throughput achieved on the transmit side is currently 325 Mbps')");
}
