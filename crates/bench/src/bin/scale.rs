//! Regenerates the **scale** snapshot: how the sharded
//! conservative-lookahead engine scales a 64-node fabric across
//! threads, and proof that it scales *correctly* — the bench asserts
//! the partition-invariant goodput line is byte-identical at every
//! thread count before it reports a single number.
//!
//! Workload: `Scenario::ManyPairs { pairs: 32 }` — 32 independent
//! source→sink streams through the switched fabric (64 nodes, 256
//! switch ports). Round-robin sharding splits every source from its
//! sink, so all payload cells cross shard boundaries: this measures
//! the engine's synchronisation cost honestly, not an embarrassingly
//! partitioned best case.
//!
//! Caveat for absolute numbers: speedup is bounded by the host's
//! *physical* core count. On a single-core host the 4-thread point
//! measures pure barrier/channel overhead (expect < 1×); on a 4-core
//! host the same binary is where the ≥2× target lives. The committed
//! baseline records the build host's behaviour and CI compares with a
//! generous threshold, so the gate guards against regressions in the
//! engine, not against the hardware it runs on.
//!
//! `--threads N` runs one thread count only (the CI smoke); `--quick`
//! shrinks the message count; `--bench-out PATH` writes the snapshot.

use std::time::Instant;

use osiris::config::TestbedConfig;
use osiris::shard::RunOutcome;
use osiris::Scenario;
use osiris_bench::{
    bench_out_path, json_requested, quick_requested, BenchSnapshot, Better, ExperimentResult,
};

/// The bench workload: 32 switched source→sink pairs.
const PAIRS: usize = 32;

fn workload(quick: bool) -> TestbedConfig {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 8 * 1024;
    cfg.messages = if quick { 8 } else { 32 };
    cfg.reassembly = osiris::atm::sar::ReassemblyMode::FourWay { lanes: 4 };
    cfg
}

/// One timed run at `shards` threads. Returns the outcome and the
/// wall-clock seconds (build + run + merge — what a user waits for).
fn timed_run(cfg: &TestbedConfig, shards: usize) -> (RunOutcome, f64) {
    let mut cfg = cfg.clone();
    cfg.sim.shards = shards;
    let t0 = Instant::now();
    let out = Scenario::ManyPairs { pairs: PAIRS }.run(cfg);
    let secs = t0.elapsed().as_secs_f64();
    assert!(out.done, "many-pairs must complete at {shards} shard(s)");
    assert_eq!(
        out.verify_failures, 0,
        "payload verify at {shards} shard(s)"
    );
    (out, secs)
}

/// Best-of-`passes` wall-clock at one thread count (least scheduler
/// noise), with the determinism guard applied to every pass. The
/// returned imbalance (busiest shard's dispatched events over the
/// per-shard mean) is itself deterministic — dispatch counts are part
/// of the bit-identical result — so it regresses exactly.
fn measure(
    cfg: &TestbedConfig,
    shards: usize,
    passes: usize,
    reference: &str,
) -> (f64, f64, u64, f64) {
    let mut best_secs = f64::INFINITY;
    let mut pdus = 0;
    let mut imbalance = 1.0;
    for _ in 0..passes {
        let (out, secs) = timed_run(cfg, shards);
        assert_eq!(
            out.goodput_line(),
            reference,
            "sharded run at {shards} thread(s) diverged from the single-threaded result"
        );
        pdus = out.delivered;
        imbalance = out.shard_imbalance();
        if secs < best_secs {
            best_secs = secs;
        }
    }
    (pdus as f64 / best_secs, best_secs * 1e3, pdus, imbalance)
}

fn main() {
    let quick = quick_requested();
    let cfg = workload(quick);
    let passes: usize = if quick { 2 } else { 3 };

    // The single-threaded run is both the 1-thread data point and the
    // byte-identity reference every other point is held to.
    let (reference, ref_secs) = timed_run(&cfg, 1);
    let ref_line = reference.goodput_line();

    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let shards: usize = args
            .get(i + 1)
            .expect("--threads needs a count")
            .parse()
            .expect("--threads takes an integer");
        let (pps, ms, pdus, imbalance) = measure(&cfg, shards, 1, &ref_line);
        println!(
            "{} pairs on {shards} thread(s): {pdus} PDUs in {ms:.1} ms = {pps:.0} PDUs/s \
             (byte-identical to 1 thread)",
            PAIRS
        );
        println!("  shard imbalance (max/mean dispatched): {imbalance:.3}");
        println!("  {ref_line}");
        return;
    }

    let threads = [1usize, 2, 4];
    let mut pps = Vec::new();
    let mut wall = Vec::new();
    let mut pdus_total = 0;
    let mut imbalance_4t = 1.0;
    for &t in &threads {
        let (p, ms, pdus, imbalance) = if t == 1 {
            // Reuse the reference run as one pass, then take more.
            let (more_p, more_ms, pdus, imb) =
                measure(&cfg, 1, passes.saturating_sub(1), &ref_line);
            let one_p = pdus as f64 / ref_secs;
            (one_p.max(more_p), (ref_secs * 1e3).min(more_ms), pdus, imb)
        } else {
            measure(&cfg, t, passes, &ref_line)
        };
        pps.push(p);
        wall.push(ms);
        pdus_total = pdus;
        if t == 4 {
            imbalance_4t = imbalance;
        }
    }
    let speedup = pps[2] / pps[0];

    let mut r = ExperimentResult::new(
        "scale",
        "Sharded-engine scaling: 32 switched pairs, threads vs PDUs/s",
        "PDUs/s",
    );
    let xs: Vec<u64> = threads.iter().map(|&t| t as u64).collect();
    r.push_series("pdus_per_sec", &xs, &pps, None);
    r.push_series("wall_ms", &xs, &wall, None);

    if let Some(path) = bench_out_path() {
        let mut snap = BenchSnapshot::new("scale");
        snap.headline("pdus_per_sec_1t", pps[0], "PDUs/s", Better::Higher);
        snap.headline("pdus_per_sec_2t", pps[1], "PDUs/s", Better::Higher);
        snap.headline("pdus_per_sec_4t", pps[2], "PDUs/s", Better::Higher);
        snap.headline("scale_speedup_4t", speedup, "x", Better::Higher);
        snap.headline("wall_ms_1t", wall[0], "ms", Better::Lower);
        // Deterministic: the busiest shard's share of the dispatch load
        // at 4 threads (max/mean, 1.0 = perfectly balanced).
        snap.headline("shard_imbalance_4t", imbalance_4t, "x", Better::Lower);
        snap.push_result(&r);
        std::fs::write(&path, snap.to_json()).expect("write bench snapshot");
        eprintln!("wrote {path}");
    }
    if json_requested() {
        println!("{}", r.to_json());
        return;
    }
    println!(
        "sharded engine, {} switched pairs ({} PDUs), host cores: {}:",
        PAIRS,
        pdus_total,
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    for (i, &t) in threads.iter().enumerate() {
        println!(
            "  {t} thread(s): {:>9.0} PDUs/s   ({:>8.1} ms)",
            pps[i], wall[i]
        );
    }
    println!("  4-thread speedup: {speedup:.2}x (bounded by physical cores)");
    println!("  4-thread shard imbalance (max/mean dispatched): {imbalance_4t:.3}");
    println!("  every run byte-identical: {ref_line}");
}
