//! Regenerates **Table 1: Round-Trip Latencies (µs)**.
//!
//! "Table 1 shows the round-trip latencies achieved between a pair of
//! workstations connected by a pair of OSIRIS boards linked back-to-back.
//! … IP was configured to use an MTU of 16KB, and UDP checksumming was
//! turned off." Latency test programs construct each message
//! (`TouchMode::WritePerMessage`; see EXPERIMENTS.md).
//!
//! Pass `--adc` to additionally print the §3.2/§4 claim check: ADC
//! user-to-user latency vs kernel-to-kernel vs a plain user process.

use osiris::config::{DataPath, TestbedConfig, TouchMode};
use osiris::experiments::{round_trip_latency, stage_anatomy};
use osiris::report;
use osiris::Scenario;
use osiris_bench::{bench_out_path, BenchSnapshot, Better, ExperimentResult};

const SIZES: [u64; 4] = [1, 1024, 2048, 4096];

const PAPER: [(&str, [f64; 4]); 4] = [
    ("5000/200 ATM", [353.0, 417.0, 486.0, 778.0]),
    ("5000/200 UDP/IP", [598.0, 659.0, 725.0, 1011.0]),
    ("3000/600 ATM", [154.0, 215.0, 283.0, 449.0]),
    ("3000/600 UDP/IP", [316.0, 376.0, 446.0, 619.0]),
];

fn measure(mk: fn() -> TestbedConfig) -> [f64; 4] {
    let mut out = [0.0; 4];
    for (i, &size) in SIZES.iter().enumerate() {
        let mut cfg = mk();
        cfg.msg_size = size;
        cfg.messages = 12;
        cfg.touch = TouchMode::WritePerMessage;
        out[i] = round_trip_latency(&cfg).mean_us();
    }
    out
}

fn main() {
    let adc = std::env::args().any(|a| a == "--adc");
    let configs: [fn() -> TestbedConfig; 4] = [
        TestbedConfig::ds5000_200_atm,
        TestbedConfig::ds5000_200_udp,
        TestbedConfig::dec3000_600_atm,
        TestbedConfig::dec3000_600_udp,
    ];
    let mut rows = Vec::new();
    let mut all_measured = Vec::new();
    for ((name, paper), mk) in PAPER.iter().zip(configs) {
        let measured = measure(mk);
        let mut row = vec![name.to_string()];
        for i in 0..4 {
            row.push(format!("{:.0} ({:.0})", measured[i], paper[i]));
        }
        rows.push(row);
        all_measured.push(measured);
    }
    if let Some(path) = bench_out_path() {
        let mut snap = BenchSnapshot::new("table1");
        // Guard the 5000/200 rows at the table's extremes.
        snap.headline("rtt_atm_1b_us", all_measured[0][0], "us", Better::Lower);
        snap.headline("rtt_udp_1b_us", all_measured[1][0], "us", Better::Lower);
        snap.headline("rtt_udp_4096b_us", all_measured[1][3], "us", Better::Lower);
        let mut r = ExperimentResult::new("table1", "round-trip latencies", "us");
        for ((name, paper), measured) in PAPER.iter().zip(&all_measured) {
            r.push_series(name, &SIZES, measured, Some(paper));
        }
        snap.push_result(&r);
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 1024;
        cfg.messages = 12;
        cfg.touch = TouchMode::WritePerMessage;
        snap.set_anatomy(&stage_anatomy(Scenario::Pair, &cfg));
        std::fs::write(&path, snap.to_json()).expect("write bench snapshot");
        eprintln!("wrote {path}");
    }
    println!(
        "{}",
        report::table(
            "Table 1: Round-trip latencies in us — measured (paper)",
            &["machine/protocol", "1 B", "1024 B", "2048 B", "4096 B"],
            &rows,
        )
    );

    if adc {
        println!("ADC check (§4): 1024 B UDP/IP round trips on the 5000/200");
        for (label, path) in [
            ("kernel-to-kernel", DataPath::Kernel),
            ("user via kernel", DataPath::UserViaKernel),
            ("user via ADC", DataPath::Adc),
        ] {
            let mut cfg = TestbedConfig::ds5000_200_udp();
            cfg.msg_size = 1024;
            cfg.messages = 12;
            cfg.touch = TouchMode::WritePerMessage;
            cfg.data_path = path;
            let lat = round_trip_latency(&cfg);
            println!("  {label:<18} {:>7.0} us", lat.mean_us());
        }
        println!("  (the paper: ADC results were within error margins of kernel-to-kernel)");
    }
}
