//! Regenerates **Figure 2: DEC 5000/200 UDP/IP/OSIRIS receive-side
//! throughput** (Mbps vs message size).
//!
//! "The receiver processor of the OSIRIS board was programmed to generate
//! fictitious PDUs as fast as the receiving host could absorb them …
//! results measured with DMA transfer sizes of one and two cell payloads,
//! and with cache invalidation in the OSIRIS driver."
//!
//! Paper's peaks: 379 Mbps (double-cell DMA), 340 Mbps (single-cell),
//! 250 Mbps (single-cell with pessimistic cache invalidation).

use osiris::board::dma::DmaMode;
use osiris::config::TestbedConfig;
use osiris::experiments::{receive_throughput, stage_anatomy};
use osiris::host::driver::CacheStrategy;
use osiris::report;
use osiris::Scenario;
use osiris_bench::{
    at_size, bench_out_path, figure_sizes, json_requested, BenchSnapshot, Better, ExperimentResult,
};

fn main() {
    let sizes = figure_sizes();
    let mut double = Vec::new();
    let mut single = Vec::new();
    let mut invalidated = Vec::new();
    for &size in &sizes {
        let base = at_size(TestbedConfig::ds5000_200_udp(), size);

        let mut cfg = base.clone();
        cfg.rx_dma = DmaMode::DoubleCell;
        double.push(receive_throughput(&cfg).mbps);

        single.push(receive_throughput(&base).mbps);

        let mut cfg = base.clone();
        cfg.cache_strategy = CacheStrategy::Eager;
        invalidated.push(receive_throughput(&cfg).mbps);
    }
    let mut r = ExperimentResult::new("fig2", "DEC 5000/200 receive throughput", "Mbps");
    r.push_series("double-cell", &sizes, &double, None);
    r.push_series("single-cell", &sizes, &single, None);
    r.push_series("single-cell+invalidate", &sizes, &invalidated, None);
    if let Some(path) = bench_out_path() {
        let mut snap = BenchSnapshot::new("fig2");
        snap.headline(
            "peak_double_cell_mbps",
            *double.last().unwrap(),
            "Mbps",
            Better::Higher,
        );
        snap.headline(
            "peak_single_cell_mbps",
            *single.last().unwrap(),
            "Mbps",
            Better::Higher,
        );
        snap.headline(
            "peak_invalidate_mbps",
            *invalidated.last().unwrap(),
            "Mbps",
            Better::Higher,
        );
        snap.push_result(&r);
        // Traced representative run for the stage percentiles.
        let cfg = at_size(TestbedConfig::ds5000_200_udp(), 16 * 1024);
        snap.set_anatomy(&stage_anatomy(Scenario::RxBench, &cfg));
        std::fs::write(&path, snap.to_json()).expect("write bench snapshot");
        eprintln!("wrote {path}");
    }
    if json_requested() {
        println!("{}", r.to_json());
        return;
    }
    let kb: Vec<u64> = sizes.iter().map(|s| s / 1024).collect();
    if std::env::args().any(|a| a == "--plot") {
        println!(
            "{}",
            report::ascii_plot(
                "Figure 2 (plot): DEC 5000/200 receive Mbps",
                "Throughput in Mbps",
                &kb,
                &[
                    "double-cell DMA",
                    "single-cell DMA",
                    "single-cell, cache invalidated"
                ],
                &[double.clone(), single.clone(), invalidated.clone()],
                14,
            )
        );
        return;
    }
    println!(
        "{}",
        report::series(
            "Figure 2: DEC 5000/200 UDP/IP receive throughput (Mbps)",
            "KB",
            &kb,
            &[
                "double-cell DMA",
                "single-cell DMA",
                "single-cell, cache invalidated"
            ],
            &[double.clone(), single.clone(), invalidated.clone()],
        )
    );
    println!(
        "{}",
        report::compare("peak double-cell DMA", 379.0, *double.last().unwrap())
    );
    println!(
        "{}",
        report::compare("peak single-cell DMA", 340.0, *single.last().unwrap())
    );
    println!(
        "{}",
        report::compare(
            "peak with invalidation",
            250.0,
            *invalidated.last().unwrap()
        )
    );
}
