//! Ablation benches for the design choices DESIGN.md calls out: turn one
//! knob at a time and measure the end-to-end consequence. These go beyond
//! the paper's own figures — they answer "how much did each §2/§3 design
//! decision buy?" on the same simulated hardware.

use osiris::atm::sar::ReassemblyMode;
use osiris::board::dma::DmaMode;
use osiris::board::interrupt::InterruptPolicy;
use osiris::config::{TestbedConfig, TouchMode};
use osiris::experiments::{receive_throughput, round_trip_latency, stage_anatomy};
use osiris::host::wiring::WiringMode;
use osiris::proto::wire::IP_HEADER_BYTES;
use osiris::report;
use osiris::Scenario;
use osiris_bench::{bench_out_path, BenchSnapshot, Better};

fn main() {
    // ── 1. DMA transfer length, both directions (16 KB receive bench) ──
    let mut rows = Vec::new();
    let mut dma_mbps = Vec::new();
    for rx in [DmaMode::SingleCell, DmaMode::DoubleCell, DmaMode::Arbitrary] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 64 * 1024;
        cfg.messages = 14;
        cfg.warmup = 3;
        cfg.rx_dma = rx;
        let r = receive_throughput(&cfg);
        dma_mbps.push(r.mbps);
        rows.push(vec![format!("{rx:?}"), format!("{:.0}", r.mbps)]);
    }
    if let Some(path) = bench_out_path() {
        let mut snap = BenchSnapshot::new("ablation");
        snap.headline(
            "rx_64k_single_cell_mbps",
            dma_mbps[0],
            "Mbps",
            Better::Higher,
        );
        snap.headline(
            "rx_64k_double_cell_mbps",
            dma_mbps[1],
            "Mbps",
            Better::Higher,
        );
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 16 * 1024;
        cfg.messages = 8;
        snap.set_anatomy(&stage_anatomy(Scenario::Pair, &cfg));
        std::fs::write(&path, snap.to_json()).expect("write bench snapshot");
        eprintln!("wrote {path}");
    }
    println!(
        "{}",
        report::table(
            "Ablation 1: receive DMA transfer-length rule (64 KB messages, 5000/200)",
            &["rx DMA mode", "Mbps"],
            &rows
        )
    );

    // ── 2. Interrupt policy × message size ─────────────────────────────
    let mut per_pdu = Vec::new();
    let mut transition = Vec::new();
    let sizes = [1024u64, 4096, 16 * 1024];
    for &size in &sizes {
        for (policy, out) in [
            (InterruptPolicy::PerPdu, &mut per_pdu),
            (InterruptPolicy::OnTransition, &mut transition),
        ] {
            let mut cfg = TestbedConfig::ds5000_200_udp();
            cfg.msg_size = size;
            cfg.messages = 30;
            cfg.warmup = 3;
            cfg.interrupt_policy = policy;
            out.push(receive_throughput(&cfg).mbps);
        }
    }
    println!(
        "{}",
        report::series(
            "Ablation 2: interrupt policy (receive Mbps, 5000/200)",
            "bytes",
            &sizes,
            &["per-PDU", "on-transition"],
            &[per_pdu, transition],
        )
    );

    // ── 3. Wiring service on the latency path ─────────────────────────
    let mut rows = Vec::new();
    for wiring in [WiringMode::MachStandard, WiringMode::LowLevel] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 4096;
        cfg.messages = 10;
        cfg.touch = TouchMode::WritePerMessage;
        cfg.wiring = wiring;
        // Force wiring onto the critical path: fresh pages per run are
        // already the default (first ping wires; steady state re-wires
        // free). Measure the first ping instead: use one message.
        cfg.messages = 1;
        let lat = round_trip_latency(&cfg);
        rows.push(vec![format!("{wiring:?}"), format!("{:.0}", lat.mean_us())]);
    }
    println!(
        "{}",
        report::table(
            "Ablation 3: wiring service, cold-start 4 KB round trip (us, 5000/200)",
            &["service", "first-ping RTT"],
            &rows
        )
    );

    // ── 4. MTU page alignment (§2.2) ───────────────────────────────────
    let mut rows = Vec::new();
    for (label, mtu, offset) in [
        // The §2.2 recipe needs BOTH a page-aligned message and an
        // MTU of k pages + header.
        (
            "aligned message + aligned MTU",
            4096 + IP_HEADER_BYTES as u32,
            0u64,
        ),
        ("misaligned message, 4 KB MTU", 4096u32, 2048),
    ] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.mtu = mtu;
        cfg.data_offset = offset;
        cfg.msg_size = 16 * 1024;
        cfg.messages = 8;
        let lat = round_trip_latency(&cfg);
        rows.push(vec![label.to_string(), format!("{:.0}", lat.mean_us())]);
    }
    println!(
        "{}",
        report::table(
            "Ablation 4: MTU alignment rule, 16 KB message RTT (us, 5000/200)",
            &["MTU choice", "RTT"],
            &rows
        )
    );

    // ── 5. Skew-handling firmware tax (§2.6) ───────────────────────────
    let mut rows = Vec::new();
    for (label, mode) in [
        ("in-order (no skew tolerance)", ReassemblyMode::InOrder),
        (
            "sequence numbers",
            ReassemblyMode::SeqNum { max_cells: 4096 },
        ),
        ("four-way AAL5", ReassemblyMode::FourWay { lanes: 4 }),
    ] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 64 * 1024;
        cfg.messages = 12;
        cfg.warmup = 3;
        cfg.reassembly = mode;
        let r = receive_throughput(&cfg);
        rows.push(vec![label.to_string(), format!("{:.0}", r.mbps)]);
    }
    println!(
        "{}",
        report::table(
            "Ablation 5: reassembly strategy firmware tax (receive Mbps, no skew)",
            &["strategy", "Mbps"],
            &rows
        )
    );

    // ── 6. What would a cheaper interrupt buy? (forward-looking) ──────
    let mut rows = Vec::new();
    for us in [75u64, 30, 10] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.machine.costs.interrupt_service = osiris::sim::SimDuration::from_us(us);
        cfg.msg_size = 4096;
        cfg.messages = 24;
        cfg.warmup = 3;
        let r = receive_throughput(&cfg);
        rows.push(vec![format!("{us} us"), format!("{:.0}", r.mbps)]);
    }
    println!(
        "{}",
        report::table(
            "Ablation 6: hypothetical interrupt cost (4 KB receive Mbps, 5000/200)",
            &["interrupt service", "Mbps"],
            &rows
        )
    );
}
