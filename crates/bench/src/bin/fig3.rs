//! Regenerates **Figure 3: DEC 3000/600 UDP/IP/OSIRIS receive-side
//! throughput** (Mbps vs message size).
//!
//! "With double cell length DMA, the throughput now approaches the full
//! link bandwidth of 516 Mbps for message sizes of 16 KB and larger. With
//! UDP checksumming turned on, the throughput decreases slightly to 438
//! Mbps … network data can be read and checksummed at close to 90 % of
//! the network link speed" — possible because the Alpha's crossbar lets
//! the checksum run concurrently with DMA and its cache is DMA-coherent.

use osiris::board::dma::DmaMode;
use osiris::config::TestbedConfig;
use osiris::experiments::{receive_throughput, stage_anatomy};
use osiris::report;
use osiris::Scenario;
use osiris_bench::{
    at_size, bench_out_path, figure_sizes, json_requested, BenchSnapshot, Better, ExperimentResult,
};

fn main() {
    let sizes = figure_sizes();
    let mut series = vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for &size in &sizes {
        let base = at_size(TestbedConfig::dec3000_600_udp(), size);
        for (i, (dma, cksum)) in [
            (DmaMode::DoubleCell, false),
            (DmaMode::DoubleCell, true),
            (DmaMode::SingleCell, false),
            (DmaMode::SingleCell, true),
        ]
        .into_iter()
        .enumerate()
        {
            let mut cfg = base.clone();
            cfg.rx_dma = dma;
            cfg.udp_checksum = cksum;
            // Checksummed runs need enough messages to reach the cache's
            // warm steady state (the coherent cache absorbs re-reads).
            if cksum {
                cfg.messages = cfg.messages.max(16);
            }
            series[i].push(receive_throughput(&cfg).mbps);
        }
    }
    let mut r = ExperimentResult::new("fig3", "DEC 3000/600 receive throughput", "Mbps");
    for (name, col) in ["double", "double+cs", "single", "single+cs"]
        .iter()
        .zip(&series)
    {
        r.push_series(name, &sizes, col, None);
    }
    if let Some(path) = bench_out_path() {
        let mut snap = BenchSnapshot::new("fig3");
        snap.headline(
            "peak_double_cell_mbps",
            *series[0].last().unwrap(),
            "Mbps",
            Better::Higher,
        );
        snap.headline(
            "peak_double_cell_checksum_mbps",
            *series[1].last().unwrap(),
            "Mbps",
            Better::Higher,
        );
        snap.push_result(&r);
        let mut cfg = at_size(TestbedConfig::dec3000_600_udp(), 16 * 1024);
        cfg.rx_dma = DmaMode::DoubleCell;
        snap.set_anatomy(&stage_anatomy(Scenario::RxBench, &cfg));
        std::fs::write(&path, snap.to_json()).expect("write bench snapshot");
        eprintln!("wrote {path}");
    }
    if json_requested() {
        println!("{}", r.to_json());
        return;
    }
    let kb: Vec<u64> = sizes.iter().map(|s| s / 1024).collect();
    if std::env::args().any(|a| a == "--plot") {
        println!(
            "{}",
            report::ascii_plot(
                "Figure 3 (plot): DEC 3000/600 receive Mbps",
                "Throughput in Mbps",
                &kb,
                &[
                    "double-cell",
                    "double-cell + UDP-CS",
                    "single-cell",
                    "single-cell + UDP-CS"
                ],
                &series,
                14,
            )
        );
        return;
    }
    println!(
        "{}",
        report::series(
            "Figure 3: DEC 3000/600 UDP/IP receive throughput (Mbps)",
            "KB",
            &kb,
            &[
                "double-cell",
                "double-cell + UDP-CS",
                "single-cell",
                "single-cell + UDP-CS"
            ],
            &series,
        )
    );
    println!(
        "{}",
        report::compare(
            "peak double-cell (link-bound)",
            516.0,
            *series[0].last().unwrap()
        )
    );
    println!(
        "{}",
        report::compare(
            "peak double-cell + checksum",
            438.0,
            *series[1].last().unwrap()
        )
    );
}
