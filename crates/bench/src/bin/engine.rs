//! Regenerates the **event-engine** snapshot: how many events per second
//! the simulator's queue backends sustain, and how fast a real receive
//! bench runs end to end.
//!
//! Two workloads:
//!
//! * A classic *hold model* — prefill a large pending set, then pop one
//!   event and push its successor, over and over. This is the steady
//!   state of a saturated simulation and isolates the queue: the binary
//!   heap pays `O(log n)` sift per operation against the pending-set
//!   size, the calendar queue pays amortised `O(1)` bucket insertion.
//!   The `calendar_speedup` headline is their ratio; it is what the
//!   hot-path refactor bought and what CI guards (a ratio of two runs on
//!   the same machine, so it is far more stable than absolute ns).
//! * The quick Figure-2 receive bench under the calendar queue (the
//!   default backend) — real events through the real dispatcher, with
//!   the slab cell arena and interned timeline keys on the path. Its
//!   events/sec headline guards the end-to-end hot path, not just the
//!   queue in isolation.
//!
//! The simulated *results* are identical under either backend — the
//! queue's `(time, seq)` FIFO contract fixes the pop order — so this
//! bench guards wall-clock only. Timing is wall-clock and therefore
//! noisy; CI compares with a generous threshold.

use std::time::Instant;

use osiris::config::TestbedConfig;
use osiris::sim::{EventQueue, QueueKind, SimRng, SimTime};
use osiris_bench::{
    bench_out_path, json_requested, quick_requested, BenchSnapshot, Better, ExperimentResult,
};

/// One hold-model pass: `ops` pop+push cycles against a pending set of
/// `pending` events, times drawn from a deterministic RNG. Returns
/// events per second (one op = one event dispatched).
fn hold_model(kind: QueueKind, pending: usize, ops: u64) -> f64 {
    let mut q: EventQueue<u32> = EventQueue::with_kind(kind);
    let mut rng = SimRng::new(0x0517_1994);
    // Mean inter-event gap of ~1 µs in picoseconds (the testbed's
    // cell-time cadence); the pending set then spans `pending` µs, and
    // drawing successor deltas over that same spread keeps the process
    // stationary — the spread neither compresses nor drifts, which is
    // the regime a long saturated simulation sits in.
    let spread = pending as u64 * 1_000_000;
    for i in 0..pending {
        q.push(SimTime(rng.next_u64() % spread), i as u32);
    }
    let t0 = Instant::now();
    for _ in 0..ops {
        let (now, ev) = q.pop().expect("hold model never drains");
        q.push(
            now + osiris::sim::SimDuration::from_ps(1 + rng.next_u64() % spread),
            ev,
        );
    }
    let secs = t0.elapsed().as_secs_f64();
    ops as f64 / secs
}

/// The receive bench wall-clock under `kind`, best of three runs (least
/// scheduler noise): returns `(events_per_sec, wall_ms, events)`.
fn rx_bench_wall(kind: QueueKind, messages: u64) -> (f64, f64, u64) {
    let mut best: Option<(f64, f64, u64)> = None;
    for _ in 0..3 {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 16 * 1024;
        cfg.messages = messages;
        cfg.warmup = 2;
        cfg.sim.queue = kind;
        let t0 = Instant::now();
        let events = {
            let mut sim = osiris::Scenario::RxBench.launch(cfg);
            sim.model.meter = osiris::sim::stats::ThroughputMeter::new(2);
            while !sim.model.done && sim.step() {}
            assert!(sim.model.done, "rx bench did not complete");
            assert_eq!(sim.model.verify_failures, 0);
            sim.queue.total_pushed()
        };
        let secs = t0.elapsed().as_secs_f64();
        if best.is_none_or(|(_, ms, _)| secs * 1e3 < ms) {
            best = Some((events as f64 / secs, secs * 1e3, events));
        }
    }
    best.expect("three runs")
}

fn main() {
    let quick = quick_requested();
    // The pending set is what separates the backends; the full profile
    // uses a set deep enough to show the 10× target, quick a smaller one
    // that still clears 3×.
    let (pending, ops) = if quick {
        (1 << 20, 400_000)
    } else {
        (1 << 22, 2_000_000)
    };
    let messages = if quick { 24 } else { 96 };

    // Best of two passes per backend — same noise treatment as the
    // micro harness (report the least-disturbed measurement).
    let best = |kind| {
        (0..2)
            .map(|_| hold_model(kind, pending, ops))
            .fold(0.0, f64::max)
    };
    let heap = best(QueueKind::Heap);
    let calendar = best(QueueKind::Calendar);
    let speedup = calendar / heap;

    let (rx_eps, rx_ms, rx_events) = rx_bench_wall(QueueKind::Calendar, messages);

    let mut r = ExperimentResult::new(
        "engine",
        "Event-engine throughput (hold model + quick rx bench)",
        "events/s",
    );
    let x = [pending as u64];
    r.push_series("heap", &x, &[heap], None);
    r.push_series("calendar", &x, &[calendar], None);
    r.push_series("rx_bench_calendar", &[rx_events], &[rx_eps], None);

    if let Some(path) = bench_out_path() {
        let mut snap = BenchSnapshot::new("engine");
        snap.headline(
            "hold_calendar_events_per_sec",
            calendar,
            "events/s",
            Better::Higher,
        );
        snap.headline("hold_heap_events_per_sec", heap, "events/s", Better::Higher);
        snap.headline("calendar_speedup", speedup, "x", Better::Higher);
        snap.headline(
            "rx_bench_events_per_sec",
            rx_eps,
            "events/s",
            Better::Higher,
        );
        snap.headline("rx_bench_wall_ms", rx_ms, "ms", Better::Lower);
        snap.push_result(&r);
        std::fs::write(&path, snap.to_json()).expect("write bench snapshot");
        eprintln!("wrote {path}");
    }
    if json_requested() {
        println!("{}", r.to_json());
        return;
    }
    println!("event engine, hold model ({pending} pending, {ops} ops):");
    println!("  heap      {heap:>12.0} events/s");
    println!("  calendar  {calendar:>12.0} events/s   ({speedup:.1}x)");
    println!(
        "quick rx bench (calendar): {rx_events} events in {rx_ms:.1} ms = {rx_eps:.0} events/s"
    );
}
