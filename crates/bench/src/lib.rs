//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary prints the same rows/series the paper reports, side by side
//! with the paper's numbers where the paper gives them, so EXPERIMENTS.md
//! can be refreshed by re-running:
//!
//! ```text
//! cargo run --release -p osiris-bench --bin table1
//! cargo run --release -p osiris-bench --bin fig2
//! cargo run --release -p osiris-bench --bin fig3
//! cargo run --release -p osiris-bench --bin fig4
//! cargo run --release -p osiris-bench --bin lessons
//! ```

use osiris::config::TestbedConfig;

pub mod micro;
pub mod results;
pub mod snapshot;
pub use results::{json_requested, ExperimentResult};
pub use snapshot::{bench_out_path, quick_requested, BenchSnapshot, Better};

/// The message sizes of Figures 2–4 (bytes): 1 KB to 256 KB, or a
/// three-point subset spanning the sweep under `--quick` (CI smoke).
pub fn figure_sizes() -> Vec<u64> {
    if quick_requested() {
        vec![1024, 16 * 1024, 64 * 1024]
    } else {
        (0..=8).map(|i| 1024u64 << i).collect()
    }
}

/// Messages per sweep point, scaled down for large messages so a full
/// sweep stays interactive while keeping several steady-state cycles.
/// `--quick` cuts each point to the minimum that still covers warm-up.
pub fn messages_for(size: u64) -> u64 {
    let full = match size {
        0..=4096 => 40,
        4097..=32768 => 24,
        32769..=131072 => 16,
        _ => 12,
    };
    if quick_requested() {
        (full / 4).max(6)
    } else {
        full
    }
}

/// Standard warm-up per sweep point.
pub const WARMUP: u64 = 3;

/// Applies sweep bookkeeping to a config.
pub fn at_size(mut cfg: TestbedConfig, size: u64) -> TestbedConfig {
    cfg.msg_size = size;
    cfg.messages = messages_for(size);
    cfg.warmup = WARMUP;
    cfg
}
