//! `BENCH_*.json` performance snapshots and the regression comparator.
//!
//! Every regeneration binary accepts `--bench-out <path>`; it then
//! writes a [`BenchSnapshot`] — its named headline metrics, the full
//! series it printed, a registry counter read-out, and the critical-path
//! stage percentiles of a traced representative run — as one JSON
//! document. `osiris-bench regress <old.json> <new.json>` compares two
//! snapshots headline by headline and exits non-zero when any metric
//! moved the wrong way by more than the threshold, which is what CI runs
//! against the committed baseline.

use osiris::experiments::StageAnatomy;
use osiris::sim::{Json, Snapshot};

use crate::results::ExperimentResult;

/// Which direction is good for a headline metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Throughput-like: a drop is a regression.
    Higher,
    /// Latency-like: a rise is a regression.
    Lower,
}

impl Better {
    fn as_str(self) -> &'static str {
        match self {
            Better::Higher => "higher",
            Better::Lower => "lower",
        }
    }

    fn parse(s: &str) -> Option<Better> {
        match s {
            "higher" => Some(Better::Higher),
            "lower" => Some(Better::Lower),
            _ => None,
        }
    }
}

/// One named headline metric — the numbers `regress` guards.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Stable metric name (e.g. `peak_double_cell_mbps`).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit ("Mbps", "us").
    pub unit: String,
    /// Which direction is good.
    pub better: Better,
}

/// One stage row of the critical-path percentiles (µs).
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Stage label (`protocol CPU`, `DMA transfer`, …) or `end-to-end`.
    pub stage: String,
    /// Mean over the traced PDUs.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
}

/// The snapshot document a bench binary emits for `--bench-out`.
#[derive(Debug, Clone)]
pub struct BenchSnapshot {
    /// Which bench produced it ("fig2", "table1", …).
    pub name: String,
    /// The guarded metrics.
    pub headlines: Vec<Headline>,
    /// The full series the bench printed (same shape as `--json`).
    pub results: Vec<ExperimentResult>,
    /// Critical-path stage percentiles from a traced representative run
    /// (ends with the `end-to-end` row when present).
    pub stages: Vec<StageRow>,
    /// Registry counters of the traced run.
    pub counters: Vec<(String, u64)>,
    /// Timeline evictions during the traced run (non-zero taints the
    /// stage rows).
    pub dropped_spans: u64,
}

impl BenchSnapshot {
    /// An empty snapshot for bench `name`.
    pub fn new(name: &str) -> BenchSnapshot {
        BenchSnapshot {
            name: name.to_string(),
            headlines: Vec::new(),
            results: Vec::new(),
            stages: Vec::new(),
            counters: Vec::new(),
            dropped_spans: 0,
        }
    }

    /// Adds one guarded headline metric.
    pub fn headline(&mut self, name: &str, value: f64, unit: &str, better: Better) {
        self.headlines.push(Headline {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
            better,
        });
    }

    /// Archives a full series document next to the headlines.
    pub fn push_result(&mut self, r: &ExperimentResult) {
        self.results.push(r.clone());
    }

    /// Fills the stage-percentile rows, counters, and the drop count
    /// from a traced run's anatomy.
    pub fn set_anatomy(&mut self, a: &StageAnatomy) {
        self.stages = a
            .stages
            .iter()
            .map(|(s, h)| StageRow {
                stage: s.label().to_string(),
                mean_us: h.time_weighted_mean,
                p50_us: h.p50,
                p95_us: h.p95,
                p99_us: h.p99,
            })
            .collect();
        self.stages.push(StageRow {
            stage: "end-to-end".to_string(),
            mean_us: a.e2e.time_weighted_mean,
            p50_us: a.e2e.p50,
            p95_us: a.e2e.p95,
            p99_us: a.e2e.p99,
        });
        self.dropped_spans = a.dropped_spans;
        self.set_counters(&a.snapshot);
    }

    /// Archives every non-zero counter of a registry read-out.
    pub fn set_counters(&mut self, snap: &Snapshot) {
        self.counters = snap
            .counters
            .iter()
            .filter(|(_, &v)| v != 0)
            .map(|(k, &v)| (k.clone(), v))
            .collect();
    }

    /// Serialises to pretty JSON (the `BENCH_<name>.json` file body).
    pub fn to_json(&self) -> String {
        let headlines = self
            .headlines
            .iter()
            .map(|h| {
                Json::obj()
                    .with("name", h.name.as_str())
                    .with("value", h.value)
                    .with("unit", h.unit.as_str())
                    .with("better", h.better.as_str())
            })
            .collect();
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::obj()
                    .with("stage", s.stage.as_str())
                    .with("mean_us", s.mean_us)
                    .with("p50_us", s.p50_us)
                    .with("p95_us", s.p95_us)
                    .with("p99_us", s.p99_us)
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| Json::obj().with("name", k.as_str()).with("value", *v))
            .collect();
        let results = self.results.iter().map(|r| r.to_json_value()).collect();
        Json::obj()
            .with("name", self.name.as_str())
            .with("headlines", Json::Arr(headlines))
            .with("stages", Json::Arr(stages))
            .with("dropped_spans", self.dropped_spans)
            .with("counters", Json::Arr(counters))
            .with("results", Json::Arr(results))
            .render_pretty()
    }

    /// Parses the fields the comparator needs (name, headlines, stages,
    /// counters, drop count) back out of a snapshot document. The
    /// archived `results` series are not reconstructed.
    pub fn parse(text: &str) -> Result<BenchSnapshot, String> {
        let v = Json::parse(text).map_err(|e| format!("bad snapshot JSON: {e:?}"))?;
        let name = v
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("snapshot has no name")?
            .to_string();
        let mut out = BenchSnapshot::new(&name);
        for h in v.get("headlines").map(|h| h.items()).unwrap_or(&[]) {
            let get_str = |k: &str| h.get(k).and_then(|x| x.as_str());
            let headline = Headline {
                name: get_str("name").ok_or("headline without name")?.to_string(),
                value: h
                    .get("value")
                    .and_then(|x| x.as_f64())
                    .ok_or("headline without value")?,
                unit: get_str("unit").unwrap_or("").to_string(),
                better: Better::parse(get_str("better").unwrap_or("higher"))
                    .ok_or("bad better direction")?,
            };
            out.headlines.push(headline);
        }
        for s in v.get("stages").map(|s| s.items()).unwrap_or(&[]) {
            let num = |k: &str| s.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
            out.stages.push(StageRow {
                stage: s
                    .get("stage")
                    .and_then(|x| x.as_str())
                    .unwrap_or("")
                    .to_string(),
                mean_us: num("mean_us"),
                p50_us: num("p50_us"),
                p95_us: num("p95_us"),
                p99_us: num("p99_us"),
            });
        }
        for c in v.get("counters").map(|c| c.items()).unwrap_or(&[]) {
            if let (Some(k), Some(n)) = (
                c.get("name").and_then(|x| x.as_str()),
                c.get("value").and_then(|x| x.as_u64()),
            ) {
                out.counters.push((k.to_string(), n));
            }
        }
        out.dropped_spans = v.get("dropped_spans").and_then(|d| d.as_u64()).unwrap_or(0);
        Ok(out)
    }
}

/// One headline's old-vs-new comparison.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed change in percent of the baseline.
    pub delta_pct: f64,
    /// True when the metric moved the wrong way past the threshold.
    pub regressed: bool,
}

/// The comparator's verdict over two snapshots.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-headline rows, in baseline order.
    pub rows: Vec<CompareRow>,
    /// Baseline headlines the candidate no longer reports (each counts
    /// as a failure: a silently vanished metric must not pass CI).
    pub missing: Vec<String>,
    /// The regression threshold used, in percent.
    pub threshold_pct: f64,
}

impl CompareReport {
    /// Number of failed checks (regressed rows + missing metrics).
    pub fn failures(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count() + self.missing.len()
    }

    /// Human-readable verdict table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.rows {
            let verdict = if r.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "  {:<32} {:>10.1} -> {:>10.1}  ({:>+6.1}%)  {verdict}",
                r.name, r.old, r.new, r.delta_pct
            );
        }
        for m in &self.missing {
            let _ = writeln!(out, "  {m:<32} MISSING from the new snapshot");
        }
        let _ = writeln!(
            out,
            "  {} headline metric(s), threshold {}%, {} failure(s)",
            self.rows.len() + self.missing.len(),
            self.threshold_pct,
            self.failures()
        );
        out
    }
}

/// Compares every baseline headline against the candidate. A metric
/// regresses when it moves in its bad direction by more than
/// `threshold_pct` percent of the baseline value.
pub fn compare(old: &BenchSnapshot, new: &BenchSnapshot, threshold_pct: f64) -> CompareReport {
    let mut report = CompareReport {
        rows: Vec::new(),
        missing: Vec::new(),
        threshold_pct,
    };
    for h in &old.headlines {
        let Some(n) = new.headlines.iter().find(|n| n.name == h.name) else {
            report.missing.push(h.name.clone());
            continue;
        };
        let delta_pct = if h.value != 0.0 {
            (n.value - h.value) / h.value * 100.0
        } else {
            0.0
        };
        let regressed = match h.better {
            Better::Higher => delta_pct < -threshold_pct,
            Better::Lower => delta_pct > threshold_pct,
        };
        report.rows.push(CompareRow {
            name: h.name.clone(),
            old: h.value,
            new: n.value,
            delta_pct,
            regressed,
        });
    }
    report
}

/// The path given with `--bench-out <path>`, when the process arguments
/// request a snapshot.
pub fn bench_out_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--bench-out" {
            return Some(args.next().expect("--bench-out needs a path"));
        }
    }
    None
}

/// True if the process arguments request the reduced `--quick` sweep
/// (CI smoke: a subset of sizes with fewer messages each).
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        let mut s = BenchSnapshot::new("fig2");
        s.headline("peak_double_cell_mbps", 380.0, "Mbps", Better::Higher);
        s.headline("rtt_us", 600.0, "us", Better::Lower);
        s.stages.push(StageRow {
            stage: "DMA transfer".into(),
            mean_us: 40.0,
            p50_us: 39.0,
            p95_us: 44.0,
            p99_us: 45.0,
        });
        s.counters.push(("node0.board.rx.cells".into(), 1234));
        s
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = sample();
        let parsed = BenchSnapshot::parse(&s.to_json()).unwrap();
        assert_eq!(parsed.name, "fig2");
        assert_eq!(parsed.headlines.len(), 2);
        assert_eq!(parsed.headlines[0].name, "peak_double_cell_mbps");
        assert_eq!(parsed.headlines[0].value, 380.0);
        assert_eq!(parsed.headlines[1].better, Better::Lower);
        assert_eq!(parsed.stages.len(), 1);
        assert_eq!(parsed.stages[0].p95_us, 44.0);
        assert_eq!(parsed.counters, vec![("node0.board.rx.cells".into(), 1234)]);
    }

    #[test]
    fn identical_snapshots_pass() {
        let s = sample();
        let r = compare(&s, &s, 5.0);
        assert_eq!(r.failures(), 0);
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn injected_ten_percent_slowdown_is_caught() {
        let old = sample();
        let mut new = sample();
        // Throughput down 10%, latency up 10%: both must trip a 5% gate.
        new.headlines[0].value = 380.0 * 0.9;
        new.headlines[1].value = 600.0 * 1.1;
        let r = compare(&old, &new, 5.0);
        assert_eq!(r.failures(), 2, "{}", r.render());
        assert!(r.rows.iter().all(|row| row.regressed));
        // The same movement is fine under a sloppier 15% gate.
        assert_eq!(compare(&old, &new, 15.0).failures(), 0);
    }

    #[test]
    fn improvements_never_fail() {
        let old = sample();
        let mut new = sample();
        new.headlines[0].value = 380.0 * 1.2; // faster
        new.headlines[1].value = 600.0 * 0.8; // lower latency
        assert_eq!(compare(&old, &new, 5.0).failures(), 0);
    }

    #[test]
    fn vanished_metric_fails() {
        let old = sample();
        let mut new = sample();
        new.headlines.remove(1);
        let r = compare(&old, &new, 5.0);
        assert_eq!(r.failures(), 1);
        assert_eq!(r.missing, vec!["rtt_us".to_string()]);
        assert!(r.render().contains("MISSING"));
    }
}
