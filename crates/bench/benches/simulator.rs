//! Whole-system benches: how fast the DES reproduces the paper's
//! experiments (wall-clock per simulated experiment). These are the
//! costs a user pays when sweeping parameters.

use osiris::board::dma::DmaMode;
use osiris::config::{TestbedConfig, TouchMode};
use osiris::experiments::{receive_throughput, round_trip_latency, transmit_throughput};
use osiris_bench::micro::bench;

fn bench_latency_experiment() {
    for size in [1u64, 4096] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = size;
        cfg.messages = 6;
        cfg.touch = TouchMode::WritePerMessage;
        bench(&format!("sim_round_trip/{size}"), None, || {
            round_trip_latency(std::hint::black_box(&cfg))
        });
    }
}

fn bench_rx_experiment() {
    for dma in [DmaMode::SingleCell, DmaMode::DoubleCell] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 16 * 1024;
        cfg.messages = 10;
        cfg.warmup = 2;
        cfg.rx_dma = dma;
        bench(&format!("sim_receive_throughput/{dma:?}"), None, || {
            receive_throughput(std::hint::black_box(&cfg))
        });
    }
}

fn bench_tx_experiment() {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 16 * 1024;
    cfg.messages = 10;
    cfg.warmup = 2;
    bench("sim_transmit_throughput/16KB", None, || {
        transmit_throughput(std::hint::black_box(&cfg))
    });
}

fn main() {
    bench_latency_experiment();
    bench_rx_experiment();
    bench_tx_experiment();
}
