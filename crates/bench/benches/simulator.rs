//! Criterion benches of the whole-system simulator: how fast the DES
//! reproduces the paper's experiments (wall-clock per simulated
//! experiment). These are the costs a user pays when sweeping parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use osiris::board::dma::DmaMode;
use osiris::config::{TestbedConfig, TouchMode};
use osiris::experiments::{receive_throughput, round_trip_latency, transmit_throughput};

fn bench_latency_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_round_trip");
    g.sample_size(10);
    for size in [1u64, 4096] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = size;
        cfg.messages = 6;
        cfg.touch = TouchMode::WritePerMessage;
        g.bench_with_input(BenchmarkId::from_parameter(size), &cfg, |b, cfg| {
            b.iter(|| round_trip_latency(std::hint::black_box(cfg)))
        });
    }
    g.finish();
}

fn bench_rx_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_receive_throughput");
    g.sample_size(10);
    for dma in [DmaMode::SingleCell, DmaMode::DoubleCell] {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 16 * 1024;
        cfg.messages = 10;
        cfg.warmup = 2;
        cfg.rx_dma = dma;
        g.bench_with_input(BenchmarkId::from_parameter(format!("{dma:?}")), &cfg, |b, cfg| {
            b.iter(|| receive_throughput(std::hint::black_box(cfg)))
        });
    }
    g.finish();
}

fn bench_tx_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_transmit_throughput");
    g.sample_size(10);
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 16 * 1024;
    cfg.messages = 10;
    cfg.warmup = 2;
    g.bench_function("16KB", |b| b.iter(|| transmit_throughput(std::hint::black_box(&cfg))));
    g.finish();
}

criterion_group!(benches, bench_latency_experiment, bench_rx_experiment, bench_tx_experiment);
criterion_main!(benches);
