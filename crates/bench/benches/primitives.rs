//! Microbenches for the hot data structures and algorithms of the
//! reproduction: the things a production driver would care about.
//! Runs on the in-tree harness (`osiris_bench::micro`) so the whole
//! suite works with zero external dependencies.

use osiris::atm::sar::{FramingMode, Reassembler, ReassemblyMode, SegmentUnit, Segmenter};
use osiris::atm::{crc32, Vci};
use osiris::board::descriptor::{DescRing, Descriptor};
use osiris::board::dma::{plan_dma, DmaMode};
use osiris::board::spsc::SpscRing;
use osiris::host::machine::internet_checksum;
use osiris::mem::VirtAddr;
use osiris::mem::{CacheSpec, DataCache, PhysAddr, PhysMemory};
use osiris::proto::msg::Message;
use osiris_bench::micro::bench;

fn bench_crc32() {
    for size in [44usize, 4096, 65536] {
        let data = vec![0xA5u8; size];
        bench(&format!("crc32/{size}"), Some(size as u64), || {
            crc32(std::hint::black_box(&data))
        });
    }
}

fn bench_checksum() {
    for size in [44usize, 16384] {
        let data = vec![0x5Au8; size];
        bench(
            &format!("internet_checksum/{size}"),
            Some(size as u64),
            || internet_checksum(std::hint::black_box(&data)),
        );
    }
}

fn bench_desc_ring() {
    let d = Descriptor::tx(PhysAddr(0x1000), 4096, Vci(1), true);
    let mut ring = DescRing::new(64);
    bench("desc_ring_push_pop", None, || {
        ring.push(std::hint::black_box(d)).unwrap();
        ring.pop()
    });
}

fn bench_spsc() {
    let ring = SpscRing::new(64);
    bench("spsc_push_pop", None, || {
        ring.push(std::hint::black_box(7u64)).unwrap();
        ring.pop()
    });
}

fn bench_segmentation() {
    let data = vec![0x3Cu8; 16 * 1024];
    for framing in [FramingMode::EndOfPdu, FramingMode::FourWay { lanes: 4 }] {
        let seg = Segmenter {
            framing,
            unit: SegmentUnit::Pdu,
        };
        bench(
            &format!("segment_16KB/{framing:?}"),
            Some(data.len() as u64),
            || seg.segment(Vci(1), &[std::hint::black_box(&data)]),
        );
    }
}

fn bench_reassembly() {
    let data = vec![0x3Cu8; 16 * 1024];
    for (name, framing, mode) in [
        ("in_order", FramingMode::EndOfPdu, ReassemblyMode::InOrder),
        (
            "four_way",
            FramingMode::FourWay { lanes: 4 },
            ReassemblyMode::FourWay { lanes: 4 },
        ),
    ] {
        let cells = Segmenter {
            framing,
            unit: SegmentUnit::Pdu,
        }
        .segment(Vci(1), &[&data]);
        bench(
            &format!("reassemble_16KB/{name}"),
            Some(data.len() as u64),
            || {
                let mut r = Reassembler::new(mode, 1 << 20, true);
                let mut out = None;
                for (i, cell) in cells.iter().enumerate() {
                    let lane = match mode {
                        ReassemblyMode::FourWay { lanes } => i % lanes as usize,
                        _ => 0,
                    };
                    out = r.receive(lane, cell).unwrap().completed.or(out);
                }
                out
            },
        );
    }
}

fn bench_dma_planning() {
    bench("plan_dma_double_cell_page_edge", None, || {
        plan_dma(
            DmaMode::DoubleCell,
            std::hint::black_box(PhysAddr(4096 - 20)),
            88,
            4096,
        )
    });
}

fn bench_cache_model() {
    let mut cache = DataCache::new(CacheSpec::dec_3000_600());
    let mem = PhysMemory::new(1 << 20, 4096);
    let mut buf = vec![0u8; 16 * 1024];
    cache.read(&mem, PhysAddr(0), &mut buf); // warm it
    bench("cache_read_16KB/warm", Some(16 * 1024), || {
        cache.read(&mem, PhysAddr(0), &mut buf)
    });
}

fn bench_message_tool() {
    bench("msg_push_pop_split", None, || {
        let mut m = Message::single(VirtAddr(0x1000), 16 * 1024);
        m.push_header(VirtAddr(0x9000), 24);
        let front = m.split_off_front(4096);
        let mut whole = front;
        whole.join(m);
        whole.pop_header(24)
    });
}

fn bench_wire_codec() {
    use osiris::atm::wire::{decode, encode};
    let mut cell = osiris::atm::Cell::data(Vci(9), 3, &[0x5A; 44]);
    cell.header.last_cell = true;
    bench("cell_wire_roundtrip", None, || {
        let bytes = encode(std::hint::black_box(&cell));
        decode(&bytes).unwrap()
    });
}

fn bench_switch_forward() {
    use osiris::atm::switch::{Switch, SwitchSpec};
    use osiris::sim::SimTime;
    let mut sw = Switch::new(SwitchSpec::sts3c_16port());
    sw.route(Vci(1), 3);
    let cell = osiris::atm::Cell::data(Vci(1), 0, &[1; 44]);
    let mut t = 0u64;
    bench("switch_forward", None, || {
        t += 2727;
        sw.forward(SimTime::from_ns(t), &cell)
    });
}

fn bench_sgmap() {
    use osiris::mem::PhysBuffer;
    use osiris::mem::SgMap;
    let mut m = SgMap::new(64, 4096);
    bench("sgmap_map_translate_invalidate", None, || {
        let bus = m
            .map_buffer(PhysBuffer::new(PhysAddr(7 * 4096), 16 * 1024))
            .unwrap();
        std::hint::black_box(m.translate(bus).unwrap());
        m.invalidate_all();
    });
}

fn bench_traffic_source() {
    use osiris::atm::traffic::{TrafficModel, TrafficSource};
    use osiris::sim::SimTime;
    let mut s = TrafficSource::new(
        TrafficModel::OnOff {
            mean_burst: 10,
            mean_gap: 20,
        },
        155_520_000,
        SimTime::ZERO,
        5,
    );
    bench("onoff_arrivals", None, || s.next_arrival());
}

fn main() {
    bench_crc32();
    bench_checksum();
    bench_desc_ring();
    bench_spsc();
    bench_segmentation();
    bench_reassembly();
    bench_dma_planning();
    bench_cache_model();
    bench_message_tool();
    bench_wire_codec();
    bench_switch_forward();
    bench_sgmap();
    bench_traffic_source();
}
