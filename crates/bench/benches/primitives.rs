//! Criterion microbenches for the hot data structures and algorithms of
//! the reproduction: the things a production driver would care about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osiris::atm::sar::{FramingMode, ReassemblyMode, Reassembler, SegmentUnit, Segmenter};
use osiris::atm::{crc32, Vci};
use osiris::board::descriptor::{DescRing, Descriptor};
use osiris::board::dma::{plan_dma, DmaMode};
use osiris::board::spsc::SpscRing;
use osiris::host::machine::internet_checksum;
use osiris::mem::{CacheSpec, DataCache, PhysAddr, PhysMemory};
use osiris::proto::msg::Message;
use osiris::mem::VirtAddr;

fn bench_crc32(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    for size in [44usize, 4096, 65536] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| crc32(std::hint::black_box(d)))
        });
    }
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("internet_checksum");
    for size in [44usize, 16384] {
        let data = vec![0x5Au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| internet_checksum(std::hint::black_box(d)))
        });
    }
    g.finish();
}

fn bench_desc_ring(c: &mut Criterion) {
    let d = Descriptor::tx(PhysAddr(0x1000), 4096, Vci(1), true);
    c.bench_function("desc_ring_push_pop", |b| {
        let mut ring = DescRing::new(64);
        b.iter(|| {
            ring.push(std::hint::black_box(d)).unwrap();
            std::hint::black_box(ring.pop())
        })
    });
}

fn bench_spsc(c: &mut Criterion) {
    c.bench_function("spsc_push_pop", |b| {
        let ring = SpscRing::new(64);
        b.iter(|| {
            ring.push(std::hint::black_box(7u64)).unwrap();
            std::hint::black_box(ring.pop())
        })
    });
}

fn bench_segmentation(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_16KB");
    let data = vec![0x3Cu8; 16 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    for framing in [FramingMode::EndOfPdu, FramingMode::FourWay { lanes: 4 }] {
        let seg = Segmenter { framing, unit: SegmentUnit::Pdu };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{framing:?}")),
            &data,
            |b, d| b.iter(|| seg.segment(Vci(1), &[std::hint::black_box(d)])),
        );
    }
    g.finish();
}

fn bench_reassembly(c: &mut Criterion) {
    let mut g = c.benchmark_group("reassemble_16KB");
    let data = vec![0x3Cu8; 16 * 1024];
    for (name, framing, mode) in [
        ("in_order", FramingMode::EndOfPdu, ReassemblyMode::InOrder),
        ("four_way", FramingMode::FourWay { lanes: 4 }, ReassemblyMode::FourWay { lanes: 4 }),
    ] {
        let cells = Segmenter { framing, unit: SegmentUnit::Pdu }.segment(Vci(1), &[&data]);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &cells, |b, cells| {
            b.iter(|| {
                let mut r = Reassembler::new(mode, 1 << 20, true);
                let mut out = None;
                for (i, cell) in cells.iter().enumerate() {
                    let lane = match mode {
                        ReassemblyMode::FourWay { lanes } => i % lanes as usize,
                        _ => 0,
                    };
                    out = r.receive(lane, cell).unwrap().completed.or(out);
                }
                std::hint::black_box(out)
            })
        });
    }
    g.finish();
}

fn bench_dma_planning(c: &mut Criterion) {
    c.bench_function("plan_dma_double_cell_page_edge", |b| {
        b.iter(|| {
            plan_dma(
                DmaMode::DoubleCell,
                std::hint::black_box(PhysAddr(4096 - 20)),
                88,
                4096,
            )
        })
    });
}

fn bench_cache_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_read_16KB");
    g.throughput(Throughput::Bytes(16 * 1024));
    g.bench_function("warm", |b| {
        let mut cache = DataCache::new(CacheSpec::dec_3000_600());
        let mem = PhysMemory::new(1 << 20, 4096);
        let mut buf = vec![0u8; 16 * 1024];
        cache.read(&mem, PhysAddr(0), &mut buf); // warm it
        b.iter(|| {
            std::hint::black_box(cache.read(&mem, PhysAddr(0), &mut buf));
        })
    });
    g.finish();
}

fn bench_message_tool(c: &mut Criterion) {
    c.bench_function("msg_push_pop_split", |b| {
        b.iter(|| {
            let mut m = Message::single(VirtAddr(0x1000), 16 * 1024);
            m.push_header(VirtAddr(0x9000), 24);
            let front = m.split_off_front(4096);
            let mut whole = front;
            whole.join(m);
            std::hint::black_box(whole.pop_header(24))
        })
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    use osiris::atm::wire::{decode, encode};
    let mut cell = osiris::atm::Cell::data(Vci(9), 3, &[0x5A; 44]);
    cell.header.last_cell = true;
    c.bench_function("cell_wire_roundtrip", |b| {
        b.iter(|| {
            let bytes = encode(std::hint::black_box(&cell));
            std::hint::black_box(decode(&bytes).unwrap())
        })
    });
}

fn bench_switch_forward(c: &mut Criterion) {
    use osiris::atm::switch::{Switch, SwitchSpec};
    use osiris::sim::SimTime;
    c.bench_function("switch_forward", |b| {
        let mut sw = Switch::new(SwitchSpec::sts3c_16port());
        sw.route(Vci(1), 3);
        let cell = osiris::atm::Cell::data(Vci(1), 0, &[1; 44]);
        let mut t = 0u64;
        b.iter(|| {
            t += 2727;
            std::hint::black_box(sw.forward(SimTime::from_ns(t), &cell))
        })
    });
}

fn bench_sgmap(c: &mut Criterion) {
    use osiris::mem::SgMap;
    use osiris::mem::PhysBuffer;
    c.bench_function("sgmap_map_translate_invalidate", |b| {
        let mut m = SgMap::new(64, 4096);
        b.iter(|| {
            let bus = m.map_buffer(PhysBuffer::new(PhysAddr(7 * 4096), 16 * 1024)).unwrap();
            std::hint::black_box(m.translate(bus).unwrap());
            m.invalidate_all();
        })
    });
}

fn bench_traffic_source(c: &mut Criterion) {
    use osiris::atm::traffic::{TrafficModel, TrafficSource};
    use osiris::sim::SimTime;
    c.bench_function("onoff_arrivals", |b| {
        let mut s = TrafficSource::new(
            TrafficModel::OnOff { mean_burst: 10, mean_gap: 20 },
            155_520_000,
            SimTime::ZERO,
            5,
        );
        b.iter(|| std::hint::black_box(s.next_arrival()))
    });
}

criterion_group!(
    benches,
    bench_crc32,
    bench_checksum,
    bench_desc_ring,
    bench_spsc,
    bench_segmentation,
    bench_reassembly,
    bench_dma_planning,
    bench_cache_model,
    bench_message_tool,
    bench_wire_codec,
    bench_switch_forward,
    bench_sgmap,
    bench_traffic_source,
);
criterion_main!(benches);
