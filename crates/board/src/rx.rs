//! The receive processor — reassembly firmware on the receive-side i80960.
//!
//! "The microprocessor reads from a FIFO the VCI and AAL information that
//! is stripped from cells as they are received. By examining this
//! information, and using other information from the host (such as a list
//! of reassembly buffers), the microprocessor determines the appropriate
//! host memory address at which the payload of each received cell is to be
//! stored." (§1)
//!
//! The pieces reproduced here:
//!
//! * **Early demultiplexing** (§3.1): the VCI selects a queue page — and
//!   therefore a free-buffer queue pre-loaded with buffers already mapped
//!   for the right path (fbufs) or owned by the right application (ADCs).
//! * **Interrupt suppression** (§2.1.2): an interrupt is asserted only per
//!   the configured [`InterruptPolicy`].
//! * **Double-cell DMA combining** (§2.5.1): "the microprocessor can look
//!   at two cell headers before deciding what to do with their associated
//!   payloads" — a pending payload is held briefly and merged with its
//!   successor when the two land contiguously in host memory. Skew defeats
//!   the optimisation by making successive cells non-contiguous, which the
//!   skew experiments quantify.
//! * **Page-boundary-stop DMA** (§2.5.2), via [`plan_dma`].
//! * **Overload shedding** (§3.1): when a path's free-buffer queue is
//!   empty, the PDU is dropped *on the board*, "before they have consumed
//!   any processing resources on the host".

use std::collections::{HashMap, HashSet};

use osiris_atm::sar::{CellDisposition, Reassembler, ReassemblyMode};
use osiris_atm::{Cell, CellRef, CellSlab, Vci};
use osiris_mem::{DataCache, MemorySystem, PhysAddr, PhysMemory};
use osiris_sim::obs::{Counter, Probe};
use osiris_sim::{FifoResource, SimDuration, SimTime, SymId, Timeline, TraceCtx};

use crate::descriptor::{DescRing, Descriptor};

/// One cell's worth of payload (merge-window arithmetic).
const CELL_MAX: usize = 44;
use crate::dma::{plan_dma, DmaMode};
use crate::dpram::{DpramLayout, QUEUE_PAGES};
use crate::interrupt::{InterruptPolicy, InterruptStats};
use crate::tx::FirmwareSpec;

/// Receive-half configuration.
#[derive(Debug, Clone, Copy)]
pub struct RxConfig {
    /// DMA transfer-length rule for storing payloads to host memory.
    pub dma_mode: DmaMode,
    /// Reassembly strategy (§2.6).
    pub reassembly: ReassemblyMode,
    /// Interrupt policy (§2.1.2).
    pub interrupt_policy: InterruptPolicy,
    /// Host page size (page-boundary-stop rule).
    pub page_size: u64,
    /// Receive buffer size supplied by the host (paper: 16 KB).
    pub buffer_bytes: u32,
    /// How long a pending payload may wait for a combinable successor
    /// before being flushed (double-cell mode).
    pub lookahead_window: SimDuration,
    /// Largest PDU the reassembler accepts.
    pub max_pdu_bytes: u32,
    /// Per-VCI reassembly timeout: a PDU whose first cell is older than
    /// this without completing is abandoned and its physical buffers
    /// reclaimed (see [`RxProcessor::reap_stale`]). `None` (the paper's
    /// firmware) waits forever — a dropped cell wedges the VCI.
    pub reassembly_timeout: Option<SimDuration>,
    /// Firmware budgets.
    pub fw: FirmwareSpec,
}

impl RxConfig {
    /// The configuration the paper measured with (single-cell DMA, 16 KB
    /// buffers, transition interrupts, in-order reassembly).
    pub fn paper_default() -> Self {
        RxConfig {
            dma_mode: DmaMode::SingleCell,
            reassembly: ReassemblyMode::InOrder,
            interrupt_policy: InterruptPolicy::OnTransition,
            page_size: 4096,
            buffer_bytes: 16 * 1024,
            lookahead_window: SimDuration::from_us(6),
            max_pdu_bytes: 256 * 1024,
            reassembly_timeout: None,
            fw: FirmwareSpec::paper_default(),
        }
    }
}

/// Receive statistics — a point-in-time copy of the processor's
/// registry counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RxStats {
    /// Cells processed by the firmware.
    pub cells: u64,
    /// PDUs completed and delivered (descriptors pushed).
    pub pdus_delivered: u64,
    /// PDUs dropped for lack of free buffers.
    pub pdus_dropped_no_buffer: u64,
    /// PDUs delivered with a failed CRC (`err` flag set).
    pub pdus_crc_failed: u64,
    /// Cells rejected by the reassembler (typed errors).
    pub cells_rejected: u64,
    /// Cells dropped because their VCI had no demultiplexing entry.
    pub cells_unknown_vci: u64,
    /// PDUs abandoned by the reassembly timeout (buffers reclaimed).
    pub pdus_dropped_timeout: u64,
    /// DMA transactions issued.
    pub dma_transactions: u64,
    /// Payload pairs merged into double-cell transactions.
    pub double_cell_merges: u64,
}

/// Completion information surfaced to the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxPduInfo {
    /// The PDU's VCI.
    pub vci: Vci,
    /// Reassembler-local PDU number.
    pub pdu: u64,
    /// Data length.
    pub len: u32,
    /// CRC verdict.
    pub crc_ok: bool,
    /// True if the PDU was shed for lack of buffers (nothing delivered).
    pub dropped: bool,
}

/// What one cell's processing did.
#[derive(Debug, Default)]
pub struct RxOutcome {
    /// Descriptors pushed to receive rings: `(push_time, page, descriptor)`.
    pub pushed: Vec<(SimTime, usize, Descriptor)>,
    /// If an interrupt must be asserted: when.
    pub interrupt_at: Option<SimTime>,
    /// If a payload is now pending for double-cell combining: the deadline
    /// by which [`RxProcessor::flush_pending`] must be called.
    pub flush_deadline: Option<(u64, SimTime)>,
    /// Set when the cell completed (or finished shedding) a PDU.
    pub completed: Option<RxPduInfo>,
}

#[derive(Debug)]
struct PduBufState {
    page: usize,
    bufs: Vec<Option<Descriptor>>,
    buf_fill: Vec<u32>,
    pushed_upto: usize,
    poisoned: bool,
    /// Trace identity carried by the PDU's cells (first cell wins).
    ctx: Option<TraceCtx>,
    /// When the PDU's first cell reached the firmware — the start of its
    /// reassembly window on the timeline.
    first_at: SimTime,
}

impl PduBufState {
    fn new(page: usize, first_at: SimTime) -> Self {
        PduBufState {
            page,
            bufs: Vec::new(),
            buf_fill: Vec::new(),
            pushed_upto: 0,
            poisoned: false,
            ctx: None,
            first_at,
        }
    }
}

/// The receive half's registry-visible counters (scope `<probe>.rx`).
#[derive(Debug, Clone)]
struct RxCounters {
    cells: Counter,
    pdus_delivered: Counter,
    pdus_dropped_no_buffer: Counter,
    pdus_crc_failed: Counter,
    cells_rejected: Counter,
    cells_unknown_vci: Counter,
    pdus_dropped_timeout: Counter,
    dma_transactions: Counter,
    double_cell_merges: Counter,
    /// Interrupt opportunities: descriptor pushes that would interrupt
    /// under a fire-always policy.
    intr_raised: Counter,
    /// Opportunities the configured policy elected not to assert; the
    /// host takes exactly `intr_raised - intr_suppressed` rx interrupts.
    intr_suppressed: Counter,
    violations: Counter,
}

impl RxCounters {
    fn with_probe(probe: &Probe) -> Self {
        let p = probe.scoped("rx");
        RxCounters {
            cells: p.counter("cells"),
            pdus_delivered: p.counter("pdus_delivered"),
            pdus_dropped_no_buffer: p.counter("pdus_dropped_no_buffer"),
            pdus_crc_failed: p.counter("pdus_crc_failed"),
            cells_rejected: p.counter("cells_rejected"),
            cells_unknown_vci: p.counter("cells_unknown_vci"),
            pdus_dropped_timeout: p.counter("pdus_dropped_timeout"),
            dma_transactions: p.counter("dma_transactions"),
            double_cell_merges: p.counter("double_cell_merges"),
            intr_raised: p.counter("intr_raised"),
            intr_suppressed: p.counter("intr_suppressed"),
            violations: p.counter("violations"),
        }
    }
}

#[derive(Debug)]
struct PendingDma {
    key: (Vci, u64),
    addr: PhysAddr,
    data: Vec<u8>,
    buf_index: usize,
    gen: u64,
    ready: SimTime,
    ctx: Option<TraceCtx>,
}

/// The receive half of the board.
#[derive(Debug)]
pub struct RxProcessor {
    cfg: RxConfig,
    engine: FifoResource,
    free_rings: Vec<DescRing>,
    rx_rings: Vec<DescRing>,
    vci_to_page: HashMap<Vci, usize>,
    reassemblers: HashMap<Vci, Reassembler>,
    pdu_state: HashMap<(Vci, u64), PduBufState>,
    pending: Option<PendingDma>,
    pending_gen: u64,
    authorized: Vec<Option<HashSet<u64>>>,
    stats: RxCounters,
    /// Per-PDU tracing sink (detached/disabled until the harness installs
    /// a shared timeline via [`RxProcessor::set_timeline`]).
    timeline: Timeline,
    /// Track prefix for this processor's spans (`<scope>.rx`).
    track: String,
    /// Interned track/name keys for hot-path span emission — no string
    /// allocation per cell; the symbols resolve back to the exact same
    /// strings at export time.
    syms: RxSyms,
    /// End of the last DMA grant this processor issued — bus-wait spans
    /// are clamped to start here so same-track spans never overlap.
    last_dma_end: SimTime,
    /// End of the last `sar.reasm` span — fragments pipeline through the
    /// reassembler, so each window is clamped to start after the previous
    /// one closed (the clipped head is genuine waiting, attributed to the
    /// neighbouring stages by the critical-path analyzer).
    sar_span_floor: SimTime,
}

/// Interned timeline keys for the receive hot path (see [`SymId`]).
#[derive(Debug, Clone, Copy)]
struct RxSyms {
    track: SymId,
    dma_track: SymId,
    sar_reasm: SymId,
    reasm_timeout: SymId,
    bus_wait: SymId,
    dma_rx: SymId,
}

impl RxSyms {
    fn intern(timeline: &Timeline, track: &str) -> RxSyms {
        RxSyms {
            track: timeline.intern(track),
            dma_track: timeline.intern(&format!("{track}.dma")),
            sar_reasm: timeline.intern("sar.reasm"),
            reasm_timeout: timeline.intern("reasm.timeout"),
            bus_wait: timeline.intern("bus.wait"),
            dma_rx: timeline.intern("dma.rx"),
        }
    }
}

impl RxProcessor {
    /// A receive processor with one free/receive ring pair per page and
    /// detached counters (standalone use).
    pub fn new(cfg: RxConfig, layout: DpramLayout) -> Self {
        RxProcessor::with_probe(cfg, layout, &Probe::detached())
    }

    /// A receive processor publishing its counters under `<scope>.rx`.
    pub fn with_probe(cfg: RxConfig, layout: DpramLayout, probe: &Probe) -> Self {
        let timeline = Timeline::default();
        let track = probe.scoped("rx").scope().to_string();
        let syms = RxSyms::intern(&timeline, &track);
        RxProcessor {
            cfg,
            engine: FifoResource::new("rx-80960"),
            free_rings: (0..QUEUE_PAGES)
                .map(|_| DescRing::new(layout.free_ring_slots))
                .collect(),
            rx_rings: (0..QUEUE_PAGES)
                .map(|_| DescRing::new(layout.rx_ring_slots))
                .collect(),
            vci_to_page: HashMap::new(),
            reassemblers: HashMap::new(),
            pdu_state: HashMap::new(),
            pending: None,
            pending_gen: 0,
            authorized: vec![None; QUEUE_PAGES],
            stats: RxCounters::with_probe(probe),
            timeline,
            track,
            syms,
            last_dma_end: SimTime::ZERO,
            sar_span_floor: SimTime::ZERO,
        }
    }

    /// Installs the shared timeline this processor opens its per-PDU
    /// spans on (`sar.reasm` on `<scope>.rx`, `bus.wait`/`dma.rx` on
    /// `<scope>.rx.dma`).
    pub fn set_timeline(&mut self, timeline: &Timeline) {
        self.timeline = timeline.clone();
        self.syms = RxSyms::intern(&self.timeline, &self.track);
    }

    /// The configuration in force.
    pub fn config(&self) -> &RxConfig {
        &self.cfg
    }

    /// Binds a VCI to a queue page (the early-demultiplexing table).
    ///
    /// While the table is empty the board is promiscuous: every VCI lands
    /// on the kernel page (0). Once any binding exists, cells on unbound
    /// VCIs are dropped on the board and counted (`cells_unknown_vci`) —
    /// they must not silently alias onto page 0's buffers.
    pub fn bind_vci(&mut self, vci: Vci, page: usize) {
        assert!(page < QUEUE_PAGES);
        self.vci_to_page.insert(vci, page);
    }

    /// Removes a VCI binding.
    pub fn unbind_vci(&mut self, vci: Vci) {
        self.vci_to_page.remove(&vci);
    }

    /// Restricts `page`'s free buffers to the given frames (§3.2).
    /// Unauthorized free-buffer descriptors are discarded (and counted as
    /// violations) instead of being used for DMA.
    pub fn set_authorized_frames(&mut self, page: usize, frames: Option<HashSet<u64>>) {
        self.authorized[page] = frames;
    }

    /// Protection violations detected on free-buffer queues.
    pub fn violations(&self) -> u64 {
        self.stats.violations.get()
    }

    /// Host-side access to the free-buffer ring of `page`.
    pub fn free_ring_mut(&mut self, page: usize) -> &mut DescRing {
        &mut self.free_rings[page]
    }

    /// Host-side access to the receive ring of `page`.
    pub fn rx_ring_mut(&mut self, page: usize) -> &mut DescRing {
        &mut self.rx_rings[page]
    }

    /// Read-only receive-ring access.
    pub fn rx_ring(&self, page: usize) -> &DescRing {
        &self.rx_rings[page]
    }

    /// Read-only free-ring access.
    pub fn free_ring(&self, page: usize) -> &DescRing {
        &self.free_rings[page]
    }

    /// Receive statistics (a copy of the current counter values).
    pub fn stats(&self) -> RxStats {
        RxStats {
            cells: self.stats.cells.get(),
            pdus_delivered: self.stats.pdus_delivered.get(),
            pdus_dropped_no_buffer: self.stats.pdus_dropped_no_buffer.get(),
            pdus_crc_failed: self.stats.pdus_crc_failed.get(),
            cells_rejected: self.stats.cells_rejected.get(),
            cells_unknown_vci: self.stats.cells_unknown_vci.get(),
            pdus_dropped_timeout: self.stats.pdus_dropped_timeout.get(),
            dma_transactions: self.stats.dma_transactions.get(),
            double_cell_merges: self.stats.double_cell_merges.get(),
        }
    }

    /// Interrupt statistics (a copy of the current counter values).
    pub fn interrupt_stats(&self) -> InterruptStats {
        InterruptStats {
            rx_interrupts: self.stats.intr_raised.get() - self.stats.intr_suppressed.get(),
            tx_interrupts: 0,
            pdus_delivered: self.stats.pdus_delivered.get(),
            violations: self.stats.violations.get(),
        }
    }

    /// Interrupt opportunities seen by the receive half (pushes that a
    /// fire-always policy would have interrupted on).
    pub fn interrupts_raised(&self) -> u64 {
        self.stats.intr_raised.get()
    }

    /// Opportunities the configured policy suppressed (§2.1.2).
    pub fn interrupts_suppressed(&self) -> u64 {
        self.stats.intr_suppressed.get()
    }

    /// When the receive engine next goes idle.
    pub fn engine_free_at(&self) -> SimTime {
        self.engine.free_at()
    }

    /// Processes one cell arriving on `lane` at `now`.
    /// Slab-handle entry point: consumes `r`, returning its slot to the
    /// slab's free list after processing (cells move by [`CellRef`] on
    /// the hot path; the payload is copied exactly once — into the host
    /// buffer by DMA).
    #[allow(clippy::too_many_arguments)]
    pub fn receive_cell_ref(
        &mut self,
        now: SimTime,
        lane: usize,
        r: CellRef,
        slab: &mut CellSlab,
        mem: &mut MemorySystem,
        cache: &mut DataCache,
        phys: &mut PhysMemory,
    ) -> RxOutcome {
        let cell = slab.remove(r);
        self.receive_cell(now, lane, &cell, mem, cache, phys)
    }

    pub fn receive_cell(
        &mut self,
        now: SimTime,
        lane: usize,
        cell: &Cell,
        mem: &mut MemorySystem,
        cache: &mut DataCache,
        phys: &mut PhysMemory,
    ) -> RxOutcome {
        self.stats.cells.incr();
        let mut out = RxOutcome::default();

        // Firmware budget for this cell.
        let extra = match self.cfg.reassembly {
            ReassemblyMode::InOrder => 0,
            _ => self.cfg.fw.rx_reorder_extra_cycles,
        };
        let fw = self.engine.acquire(
            now,
            self.cfg.fw.clock.cycles(self.cfg.fw.rx_cell_cycles + extra),
        );
        let t_fw = fw.finish;

        let vci = cell.header.vci;
        // Early demultiplexing: an unbound VCI must not alias onto page 0's
        // buffers once any binding exists — drop it on the board, counted.
        // (An empty table means promiscuous standalone use: everything is
        // kernel traffic on page 0.)
        let page = match self.vci_to_page.get(&vci) {
            Some(&p) => p,
            None if self.vci_to_page.is_empty() => 0,
            None => {
                self.stats.cells_unknown_vci.incr();
                return out;
            }
        };
        let mode = self.cfg.reassembly;
        let max_pdu = self.cfg.max_pdu_bytes;
        let reasm = self
            .reassemblers
            .entry(vci)
            .or_insert_with(|| Reassembler::new(mode, max_pdu, false));
        let disp: CellDisposition = match reasm.receive(lane, cell) {
            Ok(d) => d,
            Err(_) => {
                self.stats.cells_rejected.incr();
                return out;
            }
        };

        let key = (vci, disp.pdu);
        let state = self
            .pdu_state
            .entry(key)
            .or_insert_with(|| PduBufState::new(page, now));
        if state.ctx.is_none() {
            state.ctx = cell.ctx;
        }

        // Store the payload unless the PDU is being shed.
        let poisoned = self.pdu_state[&key].poisoned;
        let mut t_done = t_fw;
        if !poisoned {
            t_done = self.store_payload(t_fw, key, disp.offset, cell, mem, cache, phys, &mut out);
        }

        // Completion (also reached while shedding: the reassembler still
        // tracks cell counts so the stream stays framed).
        if let Some(complete) = disp.completed {
            // The completion bookkeeping runs on the 80960 right after the
            // cell's own processing; the descriptor push additionally
            // waits for the payload DMA to land (t_done).
            let pdu_fw = self
                .engine
                .acquire(t_fw, self.cfg.fw.clock.cycles(self.cfg.fw.rx_pdu_cycles));
            let t_pdu = pdu_fw.finish.max(t_done);
            let state = self.pdu_state.remove(&key).expect("state exists");
            if state.poisoned {
                // Shed: recycle the buffers we still hold.
                for d in state.bufs.into_iter().flatten().skip(state.pushed_upto) {
                    let _ = self.free_rings[state.page].push(d);
                }
                self.stats.pdus_dropped_no_buffer.incr();
                out.completed = Some(RxPduInfo {
                    vci,
                    pdu: disp.pdu,
                    len: complete.len,
                    crc_ok: complete.crc_ok,
                    dropped: true,
                });
            } else {
                // The PDU's reassembly window: first cell at the firmware
                // to descriptor push. DMA/bus spans nest inside it; the
                // residue is genuine waiting for the PDU's other cells.
                if let Some(ctx) = state.ctx {
                    let from = state.first_at.max(self.sar_span_floor);
                    if t_pdu > from {
                        self.timeline.span_ctx_sym(
                            self.syms.track,
                            self.syms.sar_reasm,
                            ctx,
                            from,
                            t_pdu,
                        );
                    }
                    self.sar_span_floor = self.sar_span_floor.max(t_pdu);
                }
                // Push the remaining buffers in order; EOP on the last.
                self.finish_pdu(t_pdu, state, vci, complete.len, complete.crc_ok, &mut out);
                self.stats.pdus_delivered.incr();
                if !complete.crc_ok {
                    self.stats.pdus_crc_failed.incr();
                }
                out.completed = Some(RxPduInfo {
                    vci,
                    pdu: disp.pdu,
                    len: complete.len,
                    crc_ok: complete.crc_ok,
                    dropped: false,
                });
            }
        }
        out
    }

    /// Flushes the pending double-cell payload if `gen` still names it.
    /// Returns true if a flush happened.
    pub fn flush_pending(
        &mut self,
        now: SimTime,
        gen: u64,
        mem: &mut MemorySystem,
        cache: &mut DataCache,
        phys: &mut PhysMemory,
    ) -> bool {
        match &self.pending {
            Some(p) if p.gen == gen => {}
            _ => return false,
        }
        let p = self.pending.take().expect("checked");
        self.issue_dma(now.max(p.ready), p.addr, &p.data, p.ctx, mem, cache, phys);
        true
    }

    /// Number of PDU reassemblies currently holding state (and possibly
    /// physical buffers). The harness keeps its reap tick armed while
    /// this is nonzero.
    pub fn partial_pdus(&self) -> usize {
        self.pdu_state.len()
    }

    /// Abandons reassemblies whose first cell arrived more than the
    /// configured [`RxConfig::reassembly_timeout`] ago: the per-VCI
    /// reassembler is resynchronised ([`Reassembler::abort`]) and the
    /// PDU's physical buffers are reclaimed. Counted as
    /// `pdus_dropped_timeout`.
    ///
    /// Buffers not yet handed to the host go straight back to the page's
    /// free ring. If part of the PDU's chain was already pushed to the
    /// receive ring (multi-buffer PDUs), the chain is closed with an
    /// errored EOP descriptor so the host driver recycles the whole chain
    /// through its normal error path — buffer conservation holds either
    /// way. A no-op when no timeout is configured.
    pub fn reap_stale(&mut self, now: SimTime) -> RxOutcome {
        let mut out = RxOutcome::default();
        let Some(timeout) = self.cfg.reassembly_timeout else {
            return out;
        };
        let mut stale: Vec<(Vci, u64)> = self
            .pdu_state
            .iter()
            .filter(|(_, s)| s.first_at + timeout <= now)
            .map(|(&k, _)| k)
            .collect();
        // HashMap iteration order is arbitrary; sort for determinism.
        stale.sort_unstable_by_key(|&(v, p)| (v.0, p));
        for key in stale {
            let state = self.pdu_state.remove(&key).expect("listed above");
            let page = state.page;
            let pushed_upto = state.pushed_upto;
            let ctx = state.ctx;
            let mut unpushed = state.bufs.into_iter().flatten().skip(pushed_upto);
            if pushed_upto > 0 {
                // Close the host-side chain. Reuse the first unpushed
                // buffer as the errored-EOP carrier; if the PDU stalled
                // exactly at a buffer boundary there is none, so borrow
                // one from the free ring (the driver recycles it right
                // back along with the rest of the chain).
                let closer = unpushed
                    .next()
                    .or_else(|| self.free_rings[page].pop().map(|(d, _)| d));
                match closer {
                    Some(d) => {
                        let desc = Descriptor {
                            addr: d.addr,
                            len: 0,
                            vci: key.0,
                            eop: true,
                            err: true,
                            ctx,
                        };
                        self.push_rx(now, page, desc, &mut out);
                    }
                    None => {
                        // Nothing anywhere to carry the EOP (free ring
                        // drained and no unpushed buffer). Keep the state
                        // and retry at the next sweep, once the host has
                        // returned buffers.
                        self.pdu_state.insert(
                            key,
                            PduBufState {
                                page,
                                bufs: Vec::new(),
                                buf_fill: Vec::new(),
                                pushed_upto,
                                poisoned: true,
                                ctx,
                                first_at: state.first_at,
                            },
                        );
                        continue;
                    }
                }
            }
            for d in unpushed {
                let _ = self.free_rings[page].push(d);
            }
            // Drop a pending double-cell payload aimed at the dead PDU so
            // it is not flushed into a recycled buffer later.
            if self.pending.as_ref().is_some_and(|p| p.key == key) {
                self.pending = None;
            }
            if let Some(r) = self.reassemblers.get_mut(&key.0) {
                r.abort(key.1);
            }
            self.stats.pdus_dropped_timeout.incr();
            if let Some(c) = ctx {
                self.timeline
                    .instant_ctx_sym(self.syms.track, self.syms.reasm_timeout, c, now);
            }
        }
        out
    }

    /// Stores one cell's payload, handling buffer allocation, buffer-
    /// boundary straddles, double-cell combining, and buffer-full pushes.
    /// Returns when the payload is in host memory.
    #[allow(clippy::too_many_arguments)]
    fn store_payload(
        &mut self,
        t_fw: SimTime,
        key: (Vci, u64),
        offset: u32,
        cell: &Cell,
        mem: &mut MemorySystem,
        cache: &mut DataCache,
        phys: &mut PhysMemory,
        out: &mut RxOutcome,
    ) -> SimTime {
        let bb = self.cfg.buffer_bytes;
        let data = cell.data_bytes();
        let ctx = self.pdu_state[&key].ctx;
        let mut t_done = t_fw;

        // Split the payload at receive-buffer boundaries.
        let mut pieces: Vec<(usize, u32, &[u8])> = Vec::with_capacity(2); // (buf_index, off_in_buf, bytes)
        {
            let mut off = offset;
            let mut rest = data;
            while !rest.is_empty() {
                let bi = (off / bb) as usize;
                let in_buf = off % bb;
                let take = ((bb - in_buf) as usize).min(rest.len());
                pieces.push((bi, in_buf, &rest[..take]));
                off += take as u32;
                rest = &rest[take..];
            }
        }

        // Make sure every touched buffer is allocated.
        for &(bi, _, _) in &pieces {
            if !self.ensure_buffer(key, bi) {
                // No free buffer: shed the whole PDU from here on.
                let state = self.pdu_state.get_mut(&key).expect("state exists");
                state.poisoned = true;
                return t_fw;
            }
        }

        let is_last = cell.aal.eom || cell.header.last_cell;
        for (i, &(bi, in_buf, bytes)) in pieces.iter().enumerate() {
            let state = self.pdu_state.get_mut(&key).expect("state exists");
            let buf = state.bufs[bi].expect("ensured");
            let addr = buf.addr.offset(in_buf as u64);
            state.buf_fill[bi] += bytes.len() as u32;
            let fills_buffer = state.buf_fill[bi] >= bb;
            let must_issue = is_last || fills_buffer || i + 1 < pieces.len();

            if self.cfg.dma_mode != DmaMode::SingleCell {
                t_done = t_done.max(self.double_cell_store(
                    t_fw, key, bi, addr, bytes, ctx, must_issue, mem, cache, phys, out,
                ));
            } else {
                t_done = t_done.max(self.issue_dma(t_fw, addr, bytes, ctx, mem, cache, phys));
            }

            // Push buffers that are now full (in order).
            let state = self.pdu_state.get_mut(&key).expect("state exists");
            if fills_buffer && state.pushed_upto == bi {
                let page = state.page;
                let desc = Descriptor {
                    addr: buf.addr,
                    len: bb,
                    vci: key.0,
                    eop: false,
                    err: false,
                    ctx,
                };
                state.pushed_upto = bi + 1;
                self.push_rx(t_done, page, desc, out);
            }
        }
        t_done
    }

    /// The double-cell combining path. Holds a lone mid-buffer payload as
    /// pending; merges a contiguous successor into one 88-byte transaction.
    #[allow(clippy::too_many_arguments)]
    fn double_cell_store(
        &mut self,
        t_fw: SimTime,
        key: (Vci, u64),
        bi: usize,
        addr: PhysAddr,
        bytes: &[u8],
        ctx: Option<TraceCtx>,
        must_issue: bool,
        mem: &mut MemorySystem,
        cache: &mut DataCache,
        phys: &mut PhysMemory,
        out: &mut RxOutcome,
    ) -> SimTime {
        // Try to merge with the pending payload. DoubleCell caps the
        // combined transaction at 88 bytes; the ideal Arbitrary
        // controller has no cap (it still stops at page boundaries via
        // plan_dma).
        // Merging beyond a page buys nothing (plan_dma splits there), so
        // the ideal controller issues once a page's worth has gathered.
        let cap = self
            .cfg
            .dma_mode
            .max_len()
            .map(|c| c as usize)
            .unwrap_or(self.cfg.page_size as usize);
        if let Some(p) = self.pending.take() {
            let contiguous = p.key == key
                && p.buf_index == bi
                && p.addr.offset(p.data.len() as u64) == addr
                && p.data.len() + bytes.len() <= cap;
            if contiguous {
                let mut merged = p.data;
                merged.extend_from_slice(bytes);
                self.stats.double_cell_merges.incr();
                if must_issue || merged.len() + CELL_MAX > cap {
                    return self.issue_dma(
                        t_fw.max(p.ready),
                        p.addr,
                        &merged,
                        ctx,
                        mem,
                        cache,
                        phys,
                    );
                }
                // Arbitrary mode: keep accumulating.
                self.pending_gen += 1;
                let gen = self.pending_gen;
                let ready = p.ready;
                self.pending = Some(PendingDma {
                    key,
                    addr: p.addr,
                    data: merged,
                    buf_index: bi,
                    gen,
                    ready,
                    ctx,
                });
                out.flush_deadline = Some((gen, t_fw + self.cfg.lookahead_window));
                return t_fw;
            }
            // Not combinable: flush the pending payload on its own.
            self.issue_dma(t_fw.max(p.ready), p.addr, &p.data, p.ctx, mem, cache, phys);
        }

        if must_issue {
            return self.issue_dma(t_fw, addr, bytes, ctx, mem, cache, phys);
        }

        // Hold this payload, waiting for a combinable successor.
        self.pending_gen += 1;
        let gen = self.pending_gen;
        self.pending = Some(PendingDma {
            key,
            addr,
            data: bytes.to_vec(),
            buf_index: bi,
            gen,
            ready: t_fw,
            ctx,
        });
        out.flush_deadline = Some((gen, t_fw + self.cfg.lookahead_window));
        // The data is not yet in memory; the caller must not treat the
        // buffer as complete (it cannot be: pending is always mid-buffer).
        t_fw
    }

    /// Issues the DMA transactions for one contiguous payload (page-
    /// boundary-stop rule applies) and writes the bytes through the
    /// coherence model. Returns the completion time.
    #[allow(clippy::too_many_arguments)]
    fn issue_dma(
        &mut self,
        at: SimTime,
        addr: PhysAddr,
        data: &[u8],
        ctx: Option<TraceCtx>,
        mem: &mut MemorySystem,
        cache: &mut DataCache,
        phys: &mut PhysMemory,
    ) -> SimTime {
        let mut t = at;
        let mut off = 0usize;
        let traced = ctx.filter(|_| self.timeline.is_enabled());
        for xfer in plan_dma(
            self.cfg.dma_mode,
            addr,
            data.len() as u32,
            self.cfg.page_size,
        ) {
            let g = mem.dma_write(t, xfer.len as u64);
            if let Some(c) = traced {
                // Bus arbitration (clamped behind our previous grant so
                // spans on the DMA track never overlap), then the data.
                let wait_from = t.max(self.last_dma_end);
                if g.start > wait_from {
                    self.timeline.span_ctx_sym(
                        self.syms.dma_track,
                        self.syms.bus_wait,
                        c,
                        wait_from,
                        g.start,
                    );
                }
                self.timeline.span_ctx_sym(
                    self.syms.dma_track,
                    self.syms.dma_rx,
                    c,
                    g.start,
                    g.finish,
                );
            }
            self.last_dma_end = self.last_dma_end.max(g.finish);
            t = g.finish;
            cache.dma_write(phys, xfer.addr, &data[off..off + xfer.len as usize]);
            off += xfer.len as usize;
            self.stats.dma_transactions.incr();
        }
        t
    }

    /// Allocates buffer `bi` for a PDU from its page's free ring.
    fn ensure_buffer(&mut self, key: (Vci, u64), bi: usize) -> bool {
        let state = self.pdu_state.get_mut(&key).expect("state exists");
        if state.bufs.len() <= bi {
            state.bufs.resize(bi + 1, None);
            state.buf_fill.resize(bi + 1, 0);
        }
        if state.bufs[bi].is_some() {
            return true;
        }
        let page = state.page;
        loop {
            match self.free_rings[page].pop() {
                Some((desc, _cost)) => {
                    // §3.2: an ADC may only offer buffers inside its
                    // authorized page list; others are rejected on the
                    // board and the violation reported to the kernel.
                    if let Some(frames) = &self.authorized[page] {
                        let ps = self.cfg.page_size;
                        let first = desc.addr.0 / ps;
                        let last = (desc.addr.0 + desc.len.max(1) as u64 - 1) / ps;
                        if (first..=last).any(|f| !frames.contains(&f)) {
                            self.stats.violations.incr();
                            continue; // discard, try the next buffer
                        }
                    }
                    debug_assert!(
                        desc.len >= self.cfg.buffer_bytes,
                        "undersized receive buffer"
                    );
                    self.pdu_state.get_mut(&key).expect("state exists").bufs[bi] = Some(desc);
                    return true;
                }
                None => return false,
            }
        }
    }

    /// Pushes remaining buffers of a completed PDU (EOP + error flag on the
    /// last) to the receive ring.
    fn finish_pdu(
        &mut self,
        t: SimTime,
        state: PduBufState,
        vci: Vci,
        pdu_len: u32,
        crc_ok: bool,
        out: &mut RxOutcome,
    ) {
        let bb = self.cfg.buffer_bytes;
        let page = state.page;
        let n_bufs = (pdu_len as usize).div_ceil(bb as usize).max(1);
        for bi in state.pushed_upto..n_bufs {
            let buf = state.bufs[bi].expect("filled buffer exists");
            let is_last = bi == n_bufs - 1;
            let len = if is_last {
                pdu_len - bi as u32 * bb
            } else {
                bb
            };
            let desc = Descriptor {
                addr: buf.addr,
                len,
                vci,
                eop: is_last,
                err: is_last && !crc_ok,
                ctx: state.ctx,
            };
            self.push_rx(t, page, desc, out);
        }
        // Over-allocated buffers (can happen when a shed/short PDU grabbed
        // more slots than its final length needed) go back to the free ring.
        for d in state
            .bufs
            .into_iter()
            .flatten()
            .skip(n_bufs.max(state.pushed_upto))
        {
            let _ = self.free_rings[page].push(d);
        }
    }

    /// Pushes one descriptor to a receive ring and applies the interrupt
    /// policy.
    fn push_rx(&mut self, t: SimTime, page: usize, desc: Descriptor, out: &mut RxOutcome) {
        let len_before = self.rx_rings[page].len();
        self.rx_rings[page]
            .push(desc)
            .expect("receive ring overflow: host not draining");
        out.pushed.push((t, page, desc));
        let fire = match self.cfg.interrupt_policy {
            InterruptPolicy::PerPdu => desc.eop,
            InterruptPolicy::OnTransition => len_before == 0,
        };
        self.stats.intr_raised.incr();
        if fire {
            out.interrupt_at = Some(match out.interrupt_at {
                Some(existing) => existing.min(t),
                None => t,
            });
        } else {
            self.stats.intr_suppressed.incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_atm::sar::{FramingMode, SegmentUnit, Segmenter};
    use osiris_mem::{BusSpec, CacheSpec};

    struct Rig {
        rx: RxProcessor,
        mem: MemorySystem,
        cache: DataCache,
        phys: PhysMemory,
    }

    fn rig(cfg: RxConfig) -> Rig {
        let mut rx = RxProcessor::new(cfg, DpramLayout::paper_default());
        let phys = PhysMemory::new(4 << 20, 4096);
        // Load the kernel page's free ring with 16 KB buffers at known
        // addresses (physically contiguous, as the paper's driver uses).
        for i in 0..32u64 {
            rx.free_ring_mut(0)
                .push(Descriptor::tx(
                    PhysAddr(0x10_0000 + i * 0x4000),
                    16 * 1024,
                    Vci(0),
                    false,
                ))
                .unwrap();
        }
        Rig {
            rx,
            mem: MemorySystem::new(BusSpec::ds5000_200()),
            cache: DataCache::new(CacheSpec::dec_3000_600()),
            phys,
        }
    }

    fn cells_for(data: &[u8], vci: Vci) -> Vec<Cell> {
        Segmenter {
            framing: FramingMode::EndOfPdu,
            unit: SegmentUnit::Pdu,
        }
        .segment(vci, &[data])
    }

    fn feed(rig: &mut Rig, cells: &[Cell], start: SimTime) -> (Vec<RxOutcome>, SimTime) {
        let mut outs = Vec::new();
        let mut t = start;
        for c in cells {
            let out = rig
                .rx
                .receive_cell(t, 0, c, &mut rig.mem, &mut rig.cache, &mut rig.phys);
            // Pace arrivals at link speed-ish to keep the engine realistic.
            t += SimDuration::from_ns(700);
            outs.push(out);
        }
        (outs, t)
    }

    #[test]
    fn single_pdu_lands_in_host_memory() {
        let mut r = rig(RxConfig::paper_default());
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let cells = cells_for(&data, Vci(0));
        let (outs, _) = feed(&mut r, &cells, SimTime::ZERO);
        let last = outs.last().unwrap();
        let info = last.completed.expect("PDU completes");
        assert!(info.crc_ok);
        assert_eq!(info.len, 1000);
        // One buffer pushed, EOP set, correct length, data intact.
        let pushed: Vec<_> = outs.iter().flat_map(|o| o.pushed.iter()).collect();
        assert_eq!(pushed.len(), 1);
        let (_, page, desc) = pushed[0];
        assert_eq!(*page, 0);
        assert!(desc.eop);
        assert!(!desc.err);
        assert_eq!(desc.len, 1000);
        assert_eq!(r.phys.read(desc.addr, 1000), &data[..]);
    }

    #[test]
    fn transition_interrupt_fires_once_for_burst() {
        let mut r = rig(RxConfig::paper_default());
        let data = vec![7u8; 500];
        let mut interrupts = 0;
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            let cells = cells_for(&data, Vci(0));
            let (outs, t2) = feed(&mut r, &cells, t);
            t = t2;
            interrupts += outs.iter().filter(|o| o.interrupt_at.is_some()).count();
        }
        // The host never drains the ring, so only the first PDU fires.
        assert_eq!(interrupts, 1);
        assert_eq!(r.rx.interrupt_stats().rx_interrupts, 1);
        assert_eq!(r.rx.interrupt_stats().pdus_delivered, 5);
    }

    #[test]
    fn per_pdu_interrupt_fires_every_time() {
        let mut cfg = RxConfig::paper_default();
        cfg.interrupt_policy = InterruptPolicy::PerPdu;
        let mut r = rig(cfg);
        let data = vec![7u8; 500];
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            let cells = cells_for(&data, Vci(0));
            let (_, t2) = feed(&mut r, &cells, t);
            t = t2;
        }
        assert_eq!(r.rx.interrupt_stats().rx_interrupts, 5);
    }

    #[test]
    fn early_demux_routes_by_vci() {
        let mut r = rig(RxConfig::paper_default());
        r.rx.bind_vci(Vci(42), 3);
        for i in 0..4u64 {
            r.rx.free_ring_mut(3)
                .push(Descriptor::tx(
                    PhysAddr(0x20_0000 + i * 0x4000),
                    16 * 1024,
                    Vci(0),
                    false,
                ))
                .unwrap();
        }
        let data = vec![1u8; 200];
        let cells = cells_for(&data, Vci(42));
        let (outs, _) = feed(&mut r, &cells, SimTime::ZERO);
        let pushed: Vec<_> = outs.iter().flat_map(|o| o.pushed.iter()).collect();
        assert_eq!(pushed.len(), 1);
        assert_eq!(pushed[0].1, 3, "descriptor must land on the bound page");
        assert_eq!(r.rx.rx_ring(3).len(), 1);
        assert_eq!(r.rx.rx_ring(0).len(), 0);
    }

    #[test]
    fn no_free_buffer_sheds_pdu_on_board() {
        let mut cfg = RxConfig::paper_default();
        cfg.interrupt_policy = InterruptPolicy::OnTransition;
        let mut rx = RxProcessor::new(cfg, DpramLayout::paper_default());
        let mut mem = MemorySystem::new(BusSpec::ds5000_200());
        let mut cache = DataCache::new(CacheSpec::dec_3000_600());
        let mut phys = PhysMemory::new(1 << 20, 4096);
        // No buffers in any free ring.
        let data = vec![9u8; 300];
        let cells = cells_for(&data, Vci(0));
        let mut completed = None;
        let mut t = SimTime::ZERO;
        for c in &cells {
            let out = rx.receive_cell(t, 0, c, &mut mem, &mut cache, &mut phys);
            t += SimDuration::from_ns(700);
            assert!(out.pushed.is_empty(), "shed PDU must not reach the host");
            assert!(out.interrupt_at.is_none());
            completed = out.completed.or(completed);
        }
        let info = completed.expect("shedding still frames the stream");
        assert!(info.dropped);
        assert_eq!(rx.stats().pdus_dropped_no_buffer, 1);
        assert_eq!(rx.stats().pdus_delivered, 0);
    }

    #[test]
    fn multi_buffer_pdu_spans_and_sets_eop_on_last() {
        let mut r = rig(RxConfig::paper_default());
        let n = 40_000usize; // > 2 buffers of 16 KB
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        let cells = cells_for(&data, Vci(0));
        let (outs, _) = feed(&mut r, &cells, SimTime::ZERO);
        let pushed: Vec<_> = outs.iter().flat_map(|o| o.pushed.iter().copied()).collect();
        assert_eq!(pushed.len(), 3);
        assert_eq!(pushed[0].2.len, 16 * 1024);
        assert!(!pushed[0].2.eop);
        assert_eq!(pushed[1].2.len, 16 * 1024);
        let last = pushed[2].2;
        assert!(last.eop);
        assert_eq!(last.len as usize, n - 2 * 16 * 1024);
        // Reconstruct and verify the whole PDU from host memory.
        let mut rebuilt = Vec::new();
        for (_, _, d) in &pushed {
            rebuilt.extend_from_slice(r.phys.read(d.addr, d.len as usize));
        }
        assert_eq!(rebuilt, data);
        // Push times are non-decreasing (buffers delivered in order).
        assert!(pushed.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn corrupted_pdu_delivers_err_flag() {
        let mut r = rig(RxConfig::paper_default());
        let data = vec![3u8; 400];
        let mut cells = cells_for(&data, Vci(0));
        cells[1].corrupt_bit(5, 1);
        let (outs, _) = feed(&mut r, &cells, SimTime::ZERO);
        let info = outs.last().unwrap().completed.unwrap();
        assert!(!info.crc_ok);
        let pushed: Vec<_> = outs.iter().flat_map(|o| o.pushed.iter()).collect();
        assert!(
            pushed.last().unwrap().2.err,
            "EOP descriptor must carry the error"
        );
        assert_eq!(r.rx.stats().pdus_crc_failed, 1);
    }

    #[test]
    fn double_cell_mode_merges_contiguous_payloads() {
        let mut cfg = RxConfig::paper_default();
        cfg.dma_mode = DmaMode::DoubleCell;
        let mut r = rig(cfg);
        let data = vec![5u8; 44 * 8]; // 8 full cells
        let cells = cells_for(&data, Vci(0));
        let (outs, _) = feed(&mut r, &cells, SimTime::ZERO);
        assert!(outs.last().unwrap().completed.unwrap().crc_ok);
        // 8 cells pair into 4 merges.
        assert_eq!(r.rx.stats().double_cell_merges, 4);
        assert!(
            r.rx.stats().dma_transactions < 8,
            "fewer transactions than cells"
        );
        // Data integrity preserved through merging.
        let pushed: Vec<_> = outs.iter().flat_map(|o| o.pushed.iter()).collect();
        assert_eq!(r.phys.read(pushed[0].2.addr, data.len()), &data[..]);
    }

    #[test]
    fn pending_payload_flushes_on_deadline() {
        let mut cfg = RxConfig::paper_default();
        cfg.dma_mode = DmaMode::DoubleCell;
        let mut r = rig(cfg);
        // A 3-cell PDU: cells 0+1 merge; cell 2 (EOM) issues immediately;
        // but feed only cell 0 and verify the pending flush path.
        let data = vec![8u8; 44 * 3];
        let cells = cells_for(&data, Vci(0));
        let out = r.rx.receive_cell(
            SimTime::ZERO,
            0,
            &cells[0],
            &mut r.mem,
            &mut r.cache,
            &mut r.phys,
        );
        let (gen, deadline) = out.flush_deadline.expect("first cell must pend");
        assert!(out.pushed.is_empty());
        // Before the flush the bytes are NOT in host memory yet.
        let flushed =
            r.rx.flush_pending(deadline, gen, &mut r.mem, &mut r.cache, &mut r.phys);
        assert!(flushed);
        // A second flush with the same generation is a no-op.
        assert!(!r
            .rx
            .flush_pending(deadline, gen, &mut r.mem, &mut r.cache, &mut r.phys));
    }

    #[test]
    fn stale_flush_generation_is_ignored() {
        let mut cfg = RxConfig::paper_default();
        cfg.dma_mode = DmaMode::DoubleCell;
        let mut r = rig(cfg);
        let data = vec![8u8; 44 * 2];
        let cells = cells_for(&data, Vci(0));
        let out1 = r.rx.receive_cell(
            SimTime::ZERO,
            0,
            &cells[0],
            &mut r.mem,
            &mut r.cache,
            &mut r.phys,
        );
        let (gen1, _) = out1.flush_deadline.unwrap();
        // Cell 1 (EOM) merges and clears the pending slot.
        let out2 = r.rx.receive_cell(
            SimTime::from_us(1),
            0,
            &cells[1],
            &mut r.mem,
            &mut r.cache,
            &mut r.phys,
        );
        assert!(out2.completed.is_some());
        assert!(!r.rx.flush_pending(
            SimTime::from_us(9),
            gen1,
            &mut r.mem,
            &mut r.cache,
            &mut r.phys
        ));
    }

    #[test]
    fn unknown_vci_cells_are_counted_drops_once_bound() {
        let mut r = rig(RxConfig::paper_default());
        r.rx.bind_vci(Vci(42), 0);
        let data = vec![1u8; 200];
        let cells = cells_for(&data, Vci(7)); // unbound
        let (outs, _) = feed(&mut r, &cells, SimTime::ZERO);
        assert!(outs
            .iter()
            .all(|o| o.pushed.is_empty() && o.completed.is_none()));
        assert_eq!(r.rx.stats().cells_unknown_vci, cells.len() as u64);
        assert_eq!(r.rx.stats().pdus_delivered, 0);
        // Bound traffic still flows.
        let cells = cells_for(&data, Vci(42));
        let (outs, _) = feed(&mut r, &cells, SimTime::from_ms(1));
        assert!(outs.last().unwrap().completed.unwrap().crc_ok);
    }

    #[test]
    fn reassembly_timeout_reclaims_buffers_and_unwedges_the_vci() {
        let mut cfg = RxConfig::paper_default();
        cfg.reassembly_timeout = Some(SimDuration::from_ms(1));
        let mut r = rig(cfg);
        let free_before = r.rx.free_ring(0).len();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let cells = cells_for(&data, Vci(0));
        // Lose the tail: the PDU can never complete on its own.
        let (outs, t) = feed(&mut r, &cells[..cells.len() - 1], SimTime::ZERO);
        assert!(outs.iter().all(|o| o.completed.is_none()));
        assert_eq!(r.rx.partial_pdus(), 1);
        assert_eq!(r.rx.free_ring(0).len(), free_before - 1);

        // Before the deadline nothing is reaped.
        let out = r.rx.reap_stale(SimTime::from_us(100));
        assert!(out.pushed.is_empty());
        assert_eq!(r.rx.partial_pdus(), 1);

        // After it, the buffer returns to the free ring and the VCI works
        // again.
        let out = r.rx.reap_stale(t + SimDuration::from_ms(1));
        assert!(out.pushed.is_empty(), "nothing was host-visible yet");
        assert_eq!(r.rx.partial_pdus(), 0);
        assert_eq!(r.rx.free_ring(0).len(), free_before);
        assert_eq!(r.rx.stats().pdus_dropped_timeout, 1);

        let (outs, _) = feed(&mut r, &cells, t + SimDuration::from_ms(2));
        let info = outs.last().unwrap().completed.expect("VCI unwedged");
        assert!(info.crc_ok);
        assert_eq!(info.len, 1000);
    }

    #[test]
    fn timeout_closes_a_partially_pushed_chain_with_an_errored_eop() {
        let mut cfg = RxConfig::paper_default();
        cfg.reassembly_timeout = Some(SimDuration::from_ms(1));
        let mut r = rig(cfg);
        let n = 40_000usize;
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        let cells = cells_for(&data, Vci(0));
        // Feed enough cells to push the first 16 KB buffer, then stall.
        let (outs, t) = feed(&mut r, &cells[..400], SimTime::ZERO);
        let pushed: Vec<_> = outs.iter().flat_map(|o| o.pushed.iter()).collect();
        assert_eq!(pushed.len(), 1, "first buffer reached the host");
        let out = r.rx.reap_stale(t + SimDuration::from_ms(1));
        // The chain is closed host-side with an errored EOP descriptor.
        assert_eq!(out.pushed.len(), 1);
        let (_, _, closer) = out.pushed[0];
        assert!(closer.eop && closer.err);
        assert_eq!(r.rx.stats().pdus_dropped_timeout, 1);
        assert_eq!(r.rx.partial_pdus(), 0);
        // Conservation: two descriptors live in the rx-ring chain, every
        // other buffer is back on (or still in) the free ring.
        assert_eq!(r.rx.free_ring(0).len() + r.rx.rx_ring(0).len(), 32);
    }

    #[test]
    fn single_cell_mode_issues_one_dma_per_cell() {
        let mut r = rig(RxConfig::paper_default());
        let data = vec![1u8; 44 * 4];
        let cells = cells_for(&data, Vci(0));
        feed(&mut r, &cells, SimTime::ZERO);
        assert_eq!(r.rx.stats().double_cell_merges, 0);
        assert_eq!(r.rx.stats().dma_transactions, 4);
    }
}
