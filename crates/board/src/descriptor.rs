//! Buffer descriptors and the shared queues of §2.1.1.
//!
//! The dual-port memory "guarantees atomicity of individual 32-bit load
//! and store operations only". The paper's queues exploit exactly that: a
//! one-reader-one-writer ring where **the head pointer is only modified by
//! the writer and the tail pointer only by the reader**, so no lock is
//! needed:
//!
//! ```text
//! head == tail                    → queue is empty
//! (head + 1) mod size == tail     → queue is full
//! ```
//!
//! Every operation returns its cost in 32-bit loads and stores so the
//! caller can charge the right number of (expensive) TURBOchannel accesses
//! — minimising those was design goal (1) of §2.1.
//!
//! [`LockedRing`] is the rejected alternative: the same ring guarded by the
//! board's test-and-set register. Its cost includes the lock round trips,
//! and because host and board must serialise, it creates the contention the
//! lock-free design avoids.
//!
//! # Example
//!
//! ```
//! use osiris_board::descriptor::{DescRing, Descriptor};
//! use osiris_mem::PhysAddr;
//! use osiris_atm::Vci;
//!
//! let mut ring = DescRing::new(64);
//! // Host side: one load to check, then the descriptor + head pointer.
//! let (full, check) = ring.producer_check();
//! assert!(!full);
//! assert_eq!(check.loads, 1);
//! let cost = ring.push(Descriptor::tx(PhysAddr(0x4000), 1500, Vci(9), true)).unwrap();
//! assert_eq!(cost.stores, 4); // 3 descriptor words + head pointer
//! // Board side: pop and transmit.
//! let (desc, _) = ring.pop().unwrap();
//! assert_eq!(desc.len, 1500);
//! ```

use osiris_atm::Vci;
use osiris_mem::PhysAddr;
use osiris_sim::resource::Grant;
use osiris_sim::{FifoResource, SimDuration, SimTime, TraceCtx};

/// 32-bit words per descriptor: packed address, length+flags, VCI.
pub const DESC_WORDS: u64 = 3;

/// A buffer descriptor exchanged through the dual-port memory.
///
/// Each element "describes a single buffer in main memory by its physical
/// address and length". The end-of-PDU flag lets the host pass a PDU as a
/// chain of discontiguous buffers (§2.5.2), and the VCI carries the
/// demultiplexing decision (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Physical address of the buffer.
    pub addr: PhysAddr,
    /// Buffer length in bytes.
    pub len: u32,
    /// Virtual circuit this buffer belongs to.
    pub vci: Vci,
    /// True on the last buffer of a PDU.
    pub eop: bool,
    /// Receive direction only: set on the EOP descriptor when the PDU
    /// failed its AAL CRC (the host must discard and recycle the buffers).
    pub err: bool,
    /// Simulation-side causal identity of the PDU this buffer belongs to
    /// (per-PDU tracing metadata; not part of the 3 descriptor words and
    /// never charged as a load or store).
    pub ctx: Option<TraceCtx>,
}

impl Descriptor {
    /// A transmit-direction descriptor (no error flag).
    pub fn tx(addr: PhysAddr, len: u32, vci: Vci, eop: bool) -> Self {
        Descriptor {
            addr,
            len,
            vci,
            eop,
            err: false,
            ctx: None,
        }
    }

    /// The same descriptor tagged with a PDU's trace identity.
    pub fn with_ctx(mut self, ctx: Option<TraceCtx>) -> Self {
        self.ctx = ctx;
        self
    }
}

/// Error: push attempted on a full ring — a protocol violation by the
/// producer, which must check [`DescRing::producer_check`] first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

impl std::fmt::Display for RingFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("descriptor ring full")
    }
}

impl std::error::Error for RingFull {}

/// Loads and stores one queue operation performed (charged to the
/// accessing side — the host pays TURBOchannel prices, the board pays
/// local dual-port prices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingCosts {
    /// 32-bit loads.
    pub loads: u64,
    /// 32-bit stores.
    pub stores: u64,
}

impl RingCosts {
    fn new(loads: u64, stores: u64) -> Self {
        RingCosts { loads, stores }
    }
}

/// The lock-free one-reader-one-writer descriptor ring.
#[derive(Debug, Clone)]
pub struct DescRing {
    slots: Vec<Option<Descriptor>>,
    head: u32,
    tail: u32,
    size: u32,
    high_water: u32,
}

impl DescRing {
    /// A ring with `size` slots; one slot is sacrificed to distinguish
    /// full from empty, so capacity is `size - 1`.
    pub fn new(size: u32) -> Self {
        assert!(size >= 2, "ring needs at least 2 slots");
        DescRing {
            slots: vec![None; size as usize],
            head: 0,
            tail: 0,
            size,
            high_water: 0,
        }
    }

    /// Usable capacity (`size - 1`).
    pub fn capacity(&self) -> u32 {
        self.size - 1
    }

    /// Entries currently queued.
    pub fn len(&self) -> u32 {
        (self.head + self.size - self.tail) % self.size
    }

    /// `head == tail`.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// `(head + 1) mod size == tail`.
    pub fn is_full(&self) -> bool {
        (self.head + 1) % self.size == self.tail
    }

    /// True once the queue has drained to half capacity or less — the
    /// level at which the transmit processor wakes a blocked host (§2.1.2).
    pub fn at_most_half_full(&self) -> bool {
        self.len() <= self.capacity() / 2
    }

    /// Producer: the writer's fullness check (one load of the tail; the
    /// head is the writer's own variable and costs nothing to read).
    pub fn producer_check(&self) -> (bool, RingCosts) {
        (self.is_full(), RingCosts::new(1, 0))
    }

    /// Producer: queue a descriptor and advance the head.
    ///
    /// Returns the store/load cost, or `Err` if full (the caller should
    /// have checked; a full push is a protocol violation by the writer).
    pub fn push(&mut self, d: Descriptor) -> Result<RingCosts, RingFull> {
        if self.is_full() {
            return Err(RingFull);
        }
        self.slots[self.head as usize] = Some(d);
        self.head = (self.head + 1) % self.size;
        self.high_water = self.high_water.max(self.len());
        // Descriptor words + the head-pointer store. The fullness load is
        // charged by `producer_check`.
        Ok(RingCosts::new(0, DESC_WORDS + 1))
    }

    /// Consumer: the reader's emptiness check (one load of the head).
    pub fn consumer_check(&self) -> (bool, RingCosts) {
        (self.is_empty(), RingCosts::new(1, 0))
    }

    /// Consumer: dequeue the descriptor at the tail and advance it.
    pub fn pop(&mut self) -> Option<(Descriptor, RingCosts)> {
        if self.is_empty() {
            return None;
        }
        let d = self.slots[self.tail as usize]
            .take()
            .expect("slot must be occupied");
        self.tail = (self.tail + 1) % self.size;
        // Descriptor words loaded + the tail-pointer store.
        Some((d, RingCosts::new(DESC_WORDS, 1)))
    }

    /// Consumer peek without consuming (used by the transmit processor to
    /// look at a chain's next buffer).
    pub fn peek(&self) -> Option<&Descriptor> {
        if self.is_empty() {
            None
        } else {
            self.slots[self.tail as usize].as_ref()
        }
    }

    /// Largest occupancy ever observed.
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    /// Iterates over queued descriptors, oldest (tail) first. Used by the
    /// board side, which can scan its local dual-port memory cheaply.
    pub fn iter_live(&self) -> impl Iterator<Item = &Descriptor> + '_ {
        (0..self.len()).map(move |i| {
            let idx = (self.tail + i) % self.size;
            self.slots[idx as usize]
                .as_ref()
                .expect("live slot occupied")
        })
    }
}

/// The rejected design: the same ring guarded by the board's test-and-set
/// register. Host and board must serialise on the lock, so every operation
/// pays lock round trips *and* possibly waits out the other side — the
/// contention §2.1.1 set out to avoid.
#[derive(Debug)]
pub struct LockedRing {
    ring: DescRing,
    lock: FifoResource,
    /// Extra loads for acquiring the test-and-set register (≥ 1; more
    /// under contention) and one store to release.
    pub lock_acquire_loads: u64,
}

impl LockedRing {
    /// A locked ring with `size` slots.
    pub fn new(size: u32) -> Self {
        LockedRing {
            ring: DescRing::new(size),
            lock: FifoResource::new("tset-lock"),
            lock_acquire_loads: 1,
        }
    }

    /// Access to the underlying ring state (checks only).
    pub fn ring(&self) -> &DescRing {
        &self.ring
    }

    /// Performs `op` under the lock. `hold` is how long the critical
    /// section occupies the lock; the returned grant tells the caller when
    /// it actually ran (queueing behind the other side included), and the
    /// extra lock costs are added to the operation's own.
    pub fn with_lock<T>(
        &mut self,
        now: SimTime,
        hold: SimDuration,
        op: impl FnOnce(&mut DescRing) -> T,
    ) -> (T, Grant, RingCosts) {
        let grant = self.lock.acquire(now, hold);
        let out = op(&mut self.ring);
        (out, grant, RingCosts::new(self.lock_acquire_loads, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(len: u32) -> Descriptor {
        Descriptor::tx(PhysAddr(0x1000), len, Vci(5), true)
    }

    #[test]
    fn empty_and_full_conditions() {
        let mut r = DescRing::new(4);
        assert!(r.is_empty());
        assert!(!r.is_full());
        assert_eq!(r.capacity(), 3);
        for i in 0..3 {
            r.push(d(i)).unwrap();
        }
        assert!(r.is_full());
        assert_eq!(r.len(), 3);
        assert!(r.push(d(9)).is_err());
    }

    #[test]
    fn fifo_order() {
        let mut r = DescRing::new(8);
        for i in 0..5 {
            r.push(d(i)).unwrap();
        }
        for i in 0..5 {
            let (desc, _) = r.pop().unwrap();
            assert_eq!(desc.len, i);
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn wraparound_many_times() {
        let mut r = DescRing::new(4);
        for round in 0..100u32 {
            r.push(d(round)).unwrap();
            r.push(d(round + 1000)).unwrap();
            assert_eq!(r.pop().unwrap().0.len, round);
            assert_eq!(r.pop().unwrap().0.len, round + 1000);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn cost_accounting_minimises_loads_and_stores() {
        let mut r = DescRing::new(8);
        let (_, check) = r.producer_check();
        assert_eq!(check, RingCosts::new(1, 0));
        let push = r.push(d(1)).unwrap();
        // 3 descriptor words + head pointer = 4 stores, no loads.
        assert_eq!(push, RingCosts::new(0, 4));
        let (_, pop) = r.pop().unwrap();
        assert_eq!(pop, RingCosts::new(3, 1));
    }

    #[test]
    fn half_full_threshold() {
        let mut r = DescRing::new(9); // capacity 8
        assert!(r.at_most_half_full());
        for i in 0..8 {
            r.push(d(i)).unwrap();
        }
        assert!(!r.at_most_half_full());
        for _ in 0..4 {
            r.pop().unwrap();
        }
        assert!(r.at_most_half_full(), "4 of 8 left = half");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = DescRing::new(4);
        r.push(d(42)).unwrap();
        assert_eq!(r.peek().unwrap().len, 42);
        assert_eq!(r.len(), 1);
        assert_eq!(r.pop().unwrap().0.len, 42);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut r = DescRing::new(8);
        r.push(d(0)).unwrap();
        r.push(d(1)).unwrap();
        r.pop().unwrap();
        r.push(d(2)).unwrap();
        assert_eq!(r.high_water(), 2);
    }

    #[test]
    fn locked_ring_serialises_sides() {
        let mut r = LockedRing::new(8);
        let hold = SimDuration::from_us(2);
        // "Host" grabs the lock at t=0 for 2 us.
        let (_, g1, c1) = r.with_lock(SimTime::ZERO, hold, |ring| ring.push(d(1)).unwrap());
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(c1.loads, 1);
        assert_eq!(c1.stores, 1);
        // "Board" arrives at t=1 us and must wait until 2 us.
        let (got, g2, _) = r.with_lock(SimTime::from_us(1), hold, |ring| ring.pop());
        assert_eq!(g2.start, SimTime::from_us(2));
        assert!(got.is_some());
    }
}
