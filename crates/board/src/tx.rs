//! The transmit processor — segmentation firmware on the send-side i80960.
//!
//! "The general paradigm is that the host passes buffer descriptors to the
//! microprocessor through the dual-port RAM, and the microprocessor
//! executes a segmentation algorithm to determine the order in which cells
//! are sent." (§1)
//!
//! One descriptor chain (ending in an end-of-PDU flag) describes one PDU as
//! a list of discontiguous physical buffers (§2.5.2). Servicing a PDU:
//!
//! 1. pop the chain from the highest-priority non-empty transmit queue
//!    (ADC queues carry priorities, §3.2);
//! 2. plan the DMA fetch of the PDU's bytes under the configured
//!    [`DmaMode`] and the page-boundary-stop rule;
//! 3. issue the fetch transactions on the host bus (each pays the 13-cycle
//!    TURBOchannel read overhead);
//! 4. segment into cells, each costing a firmware budget on the 80960, and
//!    hand them to the striped link as their bytes land on board;
//! 5. advance the tail pointer — *that*, not an interrupt, is how the host
//!    learns the buffers are reusable (§2.1.2); the only transmit
//!    interrupt is the full → half-empty wakeup for a blocked host.

use std::collections::{HashMap, HashSet};

use osiris_atm::sar::{FramingMode, SegmentUnit, Segmenter};
use osiris_atm::{CellRef, CellSlab, StripedLink, Vci};
use osiris_mem::{MemorySystem, PhysBuffer, PhysMemory};
use osiris_sim::obs::{Counter, Probe};
use osiris_sim::{Clock, FifoResource, SimTime, SymId, Timeline};

use crate::descriptor::{DescRing, Descriptor};
use crate::dma::{plan_dma, DmaMode};
use crate::dpram::{DpramLayout, QUEUE_PAGES};

/// Cycle budgets for the on-board microprocessors.
#[derive(Debug, Clone, Copy)]
pub struct FirmwareSpec {
    /// The i80960's clock.
    pub clock: Clock,
    /// Cycles to process one outgoing cell (build header, command DMA,
    /// command the cell generator).
    pub tx_cell_cycles: u64,
    /// Cycles of per-PDU work (descriptor chain pop, queue scan, tail
    /// update).
    pub tx_pdu_cycles: u64,
    /// Cycles to process one incoming cell in the common, in-order case
    /// (read VCI/AAL FIFO, table lookup, command DMA).
    pub rx_cell_cycles: u64,
    /// Extra per-cell cycles when a skew-tolerant reassembly strategy is
    /// active — the "tight instruction budget" cost of §2.6.
    pub rx_reorder_extra_cycles: u64,
    /// Cycles of per-PDU completion work (queue append, interrupt check).
    pub rx_pdu_cycles: u64,
}

impl FirmwareSpec {
    /// Calibrated so that in-order reassembly sustains roughly OC-12 cell
    /// rate in firmware, matching §5: "we were still able to reassemble ATM
    /// cells ... at approximately OC-12 speeds in software".
    pub fn paper_default() -> Self {
        FirmwareSpec {
            clock: Clock::from_mhz(33),
            tx_cell_cycles: 22,
            tx_pdu_cycles: 120,
            rx_cell_cycles: 20,
            rx_reorder_extra_cycles: 14,
            rx_pdu_cycles: 100,
        }
    }
}

/// Transmit-half configuration.
#[derive(Debug, Clone, Copy)]
pub struct TxConfig {
    /// DMA transfer-length rule for fetching PDU bytes from host memory.
    /// The paper's hardware was still single-cell on the transmit side
    /// ("a hardware change to allow longer DMA transfers in this direction
    /// is underway", §4).
    pub dma_mode: DmaMode,
    /// End-of-PDU framing written into the cells.
    pub framing: FramingMode,
    /// Whether cells may span buffer boundaries (§2.5.2).
    pub unit: SegmentUnit,
    /// Host page size (page-boundary-stop rule).
    pub page_size: u64,
    /// Firmware budgets.
    pub fw: FirmwareSpec,
}

impl TxConfig {
    /// The configuration the paper measured (Figure 4).
    pub fn paper_default() -> Self {
        TxConfig {
            dma_mode: DmaMode::SingleCell,
            framing: FramingMode::EndOfPdu,
            unit: SegmentUnit::Pdu,
            page_size: 4096,
            fw: FirmwareSpec::paper_default(),
        }
    }
}

/// The result of servicing one PDU.
#[derive(Debug)]
pub struct TxOutcome {
    /// Which transmit queue the PDU came from.
    pub queue: usize,
    /// The PDU's VCI.
    pub vci: Vci,
    /// Data bytes transmitted.
    pub pdu_bytes: u64,
    /// Cells that arrive at the peer: `(arrival_at_peer, lane, cell)`,
    /// where the cell is a slab handle into the [`CellSlab`] passed to
    /// [`TxProcessor::service`] — cells move by reference, not by clone.
    /// Cells the link dropped have no entry here (their slots are freed
    /// back to the slab) — they are counted in
    /// [`TxOutcome::cells_dropped`] instead.
    pub arrivals: Vec<(SimTime, usize, CellRef)>,
    /// Cells the link dropped in flight. The PDU still completes on the
    /// transmit side — the tail pointer advances and the host reuses the
    /// buffers (completed-with-error, never leaked); recovering the data
    /// is the protocol stack's job.
    pub cells_dropped: u32,
    /// When the transmit engine finished the PDU (tail visible to host).
    pub finished_at: SimTime,
    /// If the host was blocked on a full queue that has now drained to
    /// half: the time to deliver the wakeup interrupt.
    pub wake_host_at: Option<SimTime>,
    /// True if at least one more complete PDU chain is queued.
    pub more_work: bool,
    /// §3.2 protection: the chain referenced memory outside the queue's
    /// authorized page list. Nothing was transmitted; the board asserts a
    /// violation interrupt and the OS raises an exception in the
    /// offending application.
    pub violation: bool,
}

/// The transmit half of the board.
#[derive(Debug)]
pub struct TxProcessor {
    cfg: TxConfig,
    queues: Vec<DescRing>,
    priorities: Vec<u8>,
    host_waiting: Vec<bool>,
    authorized: Vec<Option<HashSet<u64>>>,
    violations: Counter,
    engine: FifoResource,
    pdus_sent: Counter,
    cells_sent: Counter,
    cells_dropped: Counter,
    bytes_sent: Counter,
    wakeups: Counter,
    /// Per-PDU tracing sink (disabled until the harness installs one).
    timeline: Timeline,
    /// Track prefix for this processor's spans (`<scope>.tx`).
    track: String,
    /// Interned span keys, re-interned whenever a timeline is installed,
    /// so hot-path span emission is an array-index push — no `String`
    /// allocation or hashing per cell.
    syms: TxSyms,
    /// Per-lane track symbols (`<track>.lane<i>`), grown on demand.
    lane_tracks: Vec<SymId>,
    /// End of the last DMA grant issued — bus-wait spans are clamped
    /// behind it so same-track spans never overlap.
    last_dma_end: SimTime,
}

/// The transmit processor's interned track/name symbols.
#[derive(Debug, Clone, Copy)]
struct TxSyms {
    track: SymId,
    dma_track: SymId,
    bus_wait: SymId,
    dma_tx: SymId,
    fw_tx: SymId,
    lane_tx: SymId,
}

impl TxSyms {
    fn intern(timeline: &Timeline, track: &str) -> TxSyms {
        TxSyms {
            track: timeline.intern(track),
            dma_track: timeline.intern(&format!("{track}.dma")),
            bus_wait: timeline.intern("bus.wait"),
            dma_tx: timeline.intern("dma.tx"),
            fw_tx: timeline.intern("fw.tx"),
            lane_tx: timeline.intern("lane.tx"),
        }
    }
}

impl TxProcessor {
    /// A transmit processor with one ring per dual-port page and detached
    /// counters (standalone use).
    pub fn new(cfg: TxConfig, layout: DpramLayout) -> Self {
        TxProcessor::with_probe(cfg, layout, &Probe::detached())
    }

    /// A transmit processor publishing its counters under `<scope>.tx`.
    pub fn with_probe(cfg: TxConfig, layout: DpramLayout, probe: &Probe) -> Self {
        let p = probe.scoped("tx");
        let timeline = Timeline::default();
        let track = p.scope().to_string();
        let syms = TxSyms::intern(&timeline, &track);
        TxProcessor {
            cfg,
            queues: (0..QUEUE_PAGES)
                .map(|_| DescRing::new(layout.tx_ring_slots))
                .collect(),
            priorities: vec![0; QUEUE_PAGES],
            host_waiting: vec![false; QUEUE_PAGES],
            authorized: vec![None; QUEUE_PAGES],
            violations: p.counter("violations"),
            engine: FifoResource::new("tx-80960"),
            pdus_sent: p.counter("pdus_sent"),
            cells_sent: p.counter("cells_sent"),
            cells_dropped: p.counter("cells_dropped"),
            bytes_sent: p.counter("bytes_sent"),
            wakeups: p.counter("wakeups"),
            timeline,
            track,
            syms,
            lane_tracks: Vec::new(),
            last_dma_end: SimTime::ZERO,
        }
    }

    /// Installs the shared timeline this processor opens its per-PDU
    /// spans on (`fw.tx` on `<scope>.tx`, `bus.wait`/`dma.tx` on
    /// `<scope>.tx.dma`, per-lane wire spans on `<scope>.tx.lane<i>`).
    pub fn set_timeline(&mut self, timeline: &Timeline) {
        self.timeline = timeline.clone();
        self.syms = TxSyms::intern(&self.timeline, &self.track);
        self.lane_tracks.clear();
    }

    /// The interned track symbol for `<track>.lane<lane>`, grown lazily
    /// (lane count is a link property the processor doesn't know).
    fn lane_track(&mut self, lane: usize) -> SymId {
        while self.lane_tracks.len() <= lane {
            let l = self.lane_tracks.len();
            self.lane_tracks
                .push(self.timeline.intern(&format!("{}.lane{l}", self.track)));
        }
        self.lane_tracks[lane]
    }

    /// The configuration in force.
    pub fn config(&self) -> &TxConfig {
        &self.cfg
    }

    /// Host-side access to transmit queue `q` (the driver pays the
    /// TURBOchannel costs reported by the ring operations).
    pub fn queue_mut(&mut self, q: usize) -> &mut DescRing {
        &mut self.queues[q]
    }

    /// Read-only queue access.
    pub fn queue(&self, q: usize) -> &DescRing {
        &self.queues[q]
    }

    /// Sets the transmit priority of queue `q` (higher wins; §3.2).
    pub fn set_priority(&mut self, q: usize, prio: u8) {
        self.priorities[q] = prio;
    }

    /// Marks the host as blocked on queue `q` being full; the processor
    /// will raise a wakeup when the queue drains to half empty (§2.1.2).
    pub fn set_host_waiting(&mut self, q: usize) {
        self.host_waiting[q] = true;
    }

    /// Restricts queue `q` to DMA within the given page frames (§3.2's
    /// "list of physical pages … determines which pages the application
    /// can legally use"). `None` removes the restriction (kernel queues).
    pub fn set_authorized_frames(&mut self, q: usize, frames: Option<HashSet<u64>>) {
        self.authorized[q] = frames;
    }

    /// Protection violations detected on transmit queues.
    pub fn violations(&self) -> u64 {
        self.violations.get()
    }

    /// PDUs transmitted over the processor's lifetime.
    pub fn pdus_sent(&self) -> u64 {
        self.pdus_sent.get()
    }

    /// Cells transmitted.
    pub fn cells_sent(&self) -> u64 {
        self.cells_sent.get()
    }

    /// Cells the link dropped in flight (lifetime total).
    pub fn cells_dropped(&self) -> u64 {
        self.cells_dropped.get()
    }

    /// Data bytes transmitted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }

    /// Full → half-empty wakeup interrupts raised (§2.1.2).
    pub fn wakeups(&self) -> u64 {
        self.wakeups.get()
    }

    /// When the transmit engine next goes idle.
    pub fn engine_free_at(&self) -> SimTime {
        self.engine.free_at()
    }

    /// True if some queue holds a complete descriptor chain.
    pub fn has_work(&self) -> bool {
        self.queues.iter().any(has_complete_chain)
    }

    /// Services one PDU: pops the highest-priority complete chain, fetches
    /// its bytes over the host bus, segments, and hands cells to `link`.
    /// Outgoing cells are parked in `slab` and travel as [`CellRef`]
    /// handles (see [`TxOutcome::arrivals`]). Returns `None` when no
    /// complete chain is queued.
    pub fn service(
        &mut self,
        now: SimTime,
        mem: &mut MemorySystem,
        phys: &PhysMemory,
        link: &mut StripedLink,
        slab: &mut CellSlab,
    ) -> Option<TxOutcome> {
        let q = self.pick_queue()?;

        // Pop the descriptor chain (board-local accesses, folded into the
        // per-PDU firmware budget).
        let mut chain: Vec<Descriptor> = Vec::new();
        loop {
            let (d, _cost) = self.queues[q].pop().expect("chain verified complete");
            let eop = d.eop;
            chain.push(d);
            if eop {
                break;
            }
        }
        let vci = chain[0].vci;
        let pdu_bytes: u64 = chain.iter().map(|d| d.len as u64).sum();

        // §3.2: enforce the authorized page list before touching memory.
        if let Some(frames) = &self.authorized[q] {
            let ps = self.cfg.page_size;
            let bad = chain.iter().any(|d| {
                let first = d.addr.0 / ps;
                let last = (d.addr.0 + d.len.max(1) as u64 - 1) / ps;
                (first..=last).any(|f| !frames.contains(&f))
            });
            if bad {
                self.violations.incr();
                let g = self
                    .engine
                    .acquire(now, self.cfg.fw.clock.cycles(self.cfg.fw.tx_pdu_cycles));
                return Some(TxOutcome {
                    queue: q,
                    vci,
                    pdu_bytes: 0,
                    arrivals: Vec::new(),
                    cells_dropped: 0,
                    finished_at: g.finish,
                    wake_host_at: None,
                    more_work: self.has_work(),
                    violation: true,
                });
            }
        }

        // Per-PDU firmware work.
        let pdu_grant = self
            .engine
            .acquire(now, self.cfg.fw.clock.cycles(self.cfg.fw.tx_pdu_cycles));
        let mut fw_cursor = pdu_grant.finish;
        let ctx = chain.iter().find_map(|d| d.ctx);
        let traced = ctx.filter(|_| self.timeline.is_enabled());

        // Fetch plan: every physically contiguous piece, split by DMA mode
        // and the page-boundary-stop rule.
        let pieces: Vec<PhysBuffer> = chain
            .iter()
            .map(|d| PhysBuffer::new(d.addr, d.len))
            .collect();
        let mut fetch_done_at: Vec<(u64, SimTime)> = Vec::new(); // (cumulative bytes, time)
        let mut fetched = 0u64;
        for piece in &pieces {
            for xfer in plan_dma(self.cfg.dma_mode, piece.addr, piece.len, self.cfg.page_size) {
                let g = mem.dma_read(fw_cursor, xfer.len as u64);
                if let Some(c) = traced {
                    // Bus arbitration (clamped behind the previous grant
                    // so spans on the DMA track never overlap), then the
                    // fetch itself.
                    let wait_from = fw_cursor.max(self.last_dma_end);
                    if g.start > wait_from {
                        self.timeline.span_ctx_sym(
                            self.syms.dma_track,
                            self.syms.bus_wait,
                            c,
                            wait_from,
                            g.start,
                        );
                    }
                    self.timeline.span_ctx_sym(
                        self.syms.dma_track,
                        self.syms.dma_tx,
                        c,
                        g.start,
                        g.finish,
                    );
                }
                self.last_dma_end = self.last_dma_end.max(g.finish);
                fetched += xfer.len as u64;
                fetch_done_at.push((fetched, g.finish));
            }
        }

        // Gather the actual bytes (contents; timing handled above).
        let buffers: Vec<Vec<u8>> = chain
            .iter()
            .map(|d| phys.read(d.addr, d.len as usize).to_vec())
            .collect();
        let slices: Vec<&[u8]> = buffers.iter().map(|b| b.as_slice()).collect();
        let segmenter = Segmenter {
            framing: self.cfg.framing,
            unit: self.cfg.unit,
        };
        let cells = segmenter.segment(vci, &slices);

        // Launch cells: each needs its firmware slot and its bytes fetched.
        let mut arrivals = Vec::with_capacity(cells.len());
        let mut dropped = 0u32;
        let mut data_cursor = 0u64;
        let mut fetch_idx = 0usize;
        let mut last_finish = fw_cursor;
        // Per-lane wire window for this PDU: first cell handed to the
        // lane → last arrival at the peer.
        let mut lane_win: HashMap<usize, (SimTime, SimTime)> = HashMap::new();
        for (i, mut cell) in cells.into_iter().enumerate() {
            let fw_grant = self.engine.acquire(
                fw_cursor,
                self.cfg.fw.clock.cycles(self.cfg.fw.tx_cell_cycles),
            );
            fw_cursor = fw_grant.finish;
            data_cursor += cell.aal.fill as u64;
            while fetch_idx < fetch_done_at.len() && fetch_done_at[fetch_idx].0 < data_cursor {
                fetch_idx += 1;
            }
            let data_ready = fetch_done_at
                .get(fetch_idx)
                .map(|&(_, t)| t)
                .unwrap_or_else(|| fetch_done_at.last().map(|&(_, t)| t).unwrap_or(fw_cursor));
            let ready = fw_grant.finish.max(data_ready);
            last_finish = last_finish.max(ready);
            self.cells_sent.incr();
            cell.ctx = ctx;
            let r = slab.insert(cell);
            if let Some((lane, arrival)) = link.send_cell_ref(ready, i as u32, r, slab) {
                lane_win
                    .entry(lane)
                    .and_modify(|w| {
                        w.0 = w.0.min(ready);
                        w.1 = w.1.max(arrival);
                    })
                    .or_insert((ready, arrival));
                arrivals.push((arrival, lane, r));
            } else {
                dropped += 1;
                self.cells_dropped.incr();
            }
        }

        self.pdus_sent.incr();
        self.bytes_sent.add(pdu_bytes);

        if let Some(c) = traced {
            // The segmentation umbrella: per-PDU firmware work up to the
            // last cell launched. DMA and wire spans nest inside; the
            // residue is firmware cycles and fetch pipelining.
            self.timeline.span_ctx_sym(
                self.syms.track,
                self.syms.fw_tx,
                c,
                pdu_grant.start,
                last_finish,
            );
            let mut lanes: Vec<_> = lane_win.into_iter().collect();
            lanes.sort_unstable_by_key(|&(l, _)| l);
            for (lane, (from, to)) in lanes {
                let lane_track = self.lane_track(lane);
                self.timeline
                    .span_ctx_sym(lane_track, self.syms.lane_tx, c, from, to);
            }
        }

        // Full → half-empty wakeup.
        let wake_host_at = if self.host_waiting[q] && self.queues[q].at_most_half_full() {
            self.host_waiting[q] = false;
            self.wakeups.incr();
            Some(last_finish)
        } else {
            None
        };

        Some(TxOutcome {
            queue: q,
            vci,
            pdu_bytes,
            arrivals,
            cells_dropped: dropped,
            finished_at: last_finish,
            wake_host_at,
            more_work: self.has_work(),
            violation: false,
        })
    }

    /// Highest-priority queue holding a complete chain (ties → lowest
    /// index; the kernel queue is index 0).
    fn pick_queue(&self) -> Option<usize> {
        (0..self.queues.len())
            .filter(|&q| has_complete_chain(&self.queues[q]))
            .max_by_key(|&q| (self.priorities[q], std::cmp::Reverse(q)))
    }
}

/// Does the ring hold at least one full chain (an EOP descriptor)?
fn has_complete_chain(ring: &DescRing) -> bool {
    // Scan from tail to head. DescRing has no iterator over live slots;
    // emulate with peeks via a cheap clone of indices.
    ring.iter_live().any(|d| d.eop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_atm::stripe::SkewConfig;
    use osiris_atm::LinkSpec;
    use osiris_mem::{BusSpec, PhysAddr};

    fn setup() -> (TxProcessor, MemorySystem, PhysMemory, StripedLink, CellSlab) {
        let tx = TxProcessor::new(TxConfig::paper_default(), DpramLayout::paper_default());
        let mem = MemorySystem::new(BusSpec::ds5000_200());
        let mut phys = PhysMemory::new(1 << 20, 4096);
        // A recognisable pattern at 0x4000.
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        phys.write(PhysAddr(0x4000), &data);
        let link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
        (tx, mem, phys, link, CellSlab::new())
    }

    fn queue_pdu(tx: &mut TxProcessor, q: usize, bufs: &[(u64, u32)], vci: Vci) {
        let n = bufs.len();
        for (i, &(addr, len)) in bufs.iter().enumerate() {
            tx.queue_mut(q)
                .push(Descriptor::tx(PhysAddr(addr), len, vci, i == n - 1))
                .unwrap();
        }
    }

    #[test]
    fn no_work_returns_none() {
        let (mut tx, mut mem, phys, mut link, mut slab) = setup();
        assert!(tx
            .service(SimTime::ZERO, &mut mem, &phys, &mut link, &mut slab)
            .is_none());
        assert!(!tx.has_work());
    }

    #[test]
    fn incomplete_chain_is_not_serviced() {
        let (mut tx, mut mem, phys, mut link, mut slab) = setup();
        tx.queue_mut(0)
            .push(Descriptor::tx(PhysAddr(0x4000), 100, Vci(7), false))
            .unwrap();
        assert!(tx
            .service(SimTime::ZERO, &mut mem, &phys, &mut link, &mut slab)
            .is_none());
    }

    #[test]
    fn single_buffer_pdu_transmits_all_cells() {
        let (mut tx, mut mem, phys, mut link, mut slab) = setup();
        queue_pdu(&mut tx, 0, &[(0x4000, 1000)], Vci(7));
        let out = tx
            .service(SimTime::ZERO, &mut mem, &phys, &mut link, &mut slab)
            .unwrap();
        assert_eq!(out.pdu_bytes, 1000);
        assert_eq!(out.arrivals.len(), 1000usize.div_ceil(44));
        assert_eq!(out.vci, Vci(7));
        assert!(!out.more_work);
        assert_eq!(tx.pdus_sent(), 1);
        // Data integrity: cells carry the memory contents in order.
        let mut rebuilt = Vec::new();
        for &(_, _, r) in &out.arrivals {
            rebuilt.extend_from_slice(slab.get(r).data_bytes());
        }
        assert_eq!(rebuilt.len(), 1000);
        assert_eq!(&rebuilt[..], phys.read(PhysAddr(0x4000), 1000));
    }

    #[test]
    fn chain_of_buffers_is_one_pdu() {
        let (mut tx, mut mem, phys, mut link, mut slab) = setup();
        queue_pdu(&mut tx, 0, &[(0x4000, 100), (0x5000, 60)], Vci(3));
        let out = tx
            .service(SimTime::ZERO, &mut mem, &phys, &mut link, &mut slab)
            .unwrap();
        assert_eq!(out.pdu_bytes, 160);
        // Pdu unit: 160 bytes → 4 cells (44+44+44+28), spanning buffers.
        assert_eq!(out.arrivals.len(), 4);
        let last = slab.get(out.arrivals[3].2);
        assert!(last.header.last_cell);
        assert!(last.aal.eom);
    }

    #[test]
    fn arrivals_are_time_ordered_per_lane_and_paced_by_bus() {
        let (mut tx, mut mem, phys, mut link, mut slab) = setup();
        queue_pdu(&mut tx, 0, &[(0x4000, 16 * 1024)], Vci(1));
        let t0 = SimTime::from_us(10);
        let out = tx
            .service(t0, &mut mem, &phys, &mut link, &mut slab)
            .unwrap();
        let n = out.arrivals.len() as u64;
        assert_eq!(n, (16 * 1024u64).div_ceil(44));
        // Sustained rate can't beat the single-cell DMA ceiling (367 Mbps).
        let span = out.finished_at.since(t0);
        let mbps = span.mbps_for_bytes(16 * 1024);
        assert!(mbps < 370.0, "tx rate {mbps} exceeds single-cell ceiling");
        assert!(mbps > 250.0, "tx rate {mbps} implausibly slow");
    }

    #[test]
    fn priority_queue_wins() {
        let (mut tx, mut mem, phys, mut link, mut slab) = setup();
        queue_pdu(&mut tx, 0, &[(0x4000, 44)], Vci(1));
        queue_pdu(&mut tx, 3, &[(0x5000, 44)], Vci(2));
        tx.set_priority(3, 9);
        let out = tx
            .service(SimTime::ZERO, &mut mem, &phys, &mut link, &mut slab)
            .unwrap();
        assert_eq!(out.queue, 3);
        assert_eq!(out.vci, Vci(2));
        assert!(out.more_work, "queue 0 still has a PDU");
        let out2 = tx
            .service(out.finished_at, &mut mem, &phys, &mut link, &mut slab)
            .unwrap();
        assert_eq!(out2.queue, 0);
    }

    #[test]
    fn half_empty_wakeup_fires_once() {
        let (mut tx, mut mem, phys, mut link, mut slab) = setup();
        // Fill queue 0 with several one-buffer PDUs, then mark host blocked.
        for _ in 0..8 {
            queue_pdu(&mut tx, 0, &[(0x4000, 44)], Vci(1));
        }
        tx.set_host_waiting(0);
        let mut woke = 0;
        let mut t = SimTime::ZERO;
        while let Some(out) = tx.service(t, &mut mem, &phys, &mut link, &mut slab) {
            if out.wake_host_at.is_some() {
                woke += 1;
            }
            t = out.finished_at;
        }
        assert_eq!(woke, 1, "exactly one wakeup for a blocked host");
    }

    #[test]
    fn dropped_cells_complete_with_error_instead_of_leaking() {
        let (mut tx, mut mem, phys, _, mut slab) = setup();
        // A link that drops every cell.
        let skew = SkewConfig {
            drop_prob: 1.0,
            ..SkewConfig::none()
        };
        let mut link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &skew);
        queue_pdu(&mut tx, 0, &[(0x4000, 1000)], Vci(7));
        let out = tx
            .service(SimTime::ZERO, &mut mem, &phys, &mut link, &mut slab)
            .unwrap();
        // Nothing arrives, but the PDU is still completed: the drop is
        // surfaced, the tail advances, and the queue slot is reusable.
        assert!(out.arrivals.is_empty());
        assert_eq!(out.cells_dropped, 1000u32.div_ceil(44));
        assert_eq!(tx.cells_dropped(), out.cells_dropped as u64);
        assert!(out.finished_at > SimTime::ZERO);
        assert!(!out.more_work);
        assert!(!tx.has_work(), "chain must be consumed, not stuck");
        // The queue accepts and services the next PDU normally.
        queue_pdu(&mut tx, 0, &[(0x4000, 44)], Vci(7));
        let out2 = tx
            .service(out.finished_at, &mut mem, &phys, &mut link, &mut slab)
            .unwrap();
        assert_eq!(out2.cells_dropped, 1);
    }

    #[test]
    fn double_cell_mode_speeds_up_fetch() {
        let (_, mut mem_a, phys, mut link_a, mut slab) = setup();
        let mut tx_a = TxProcessor::new(TxConfig::paper_default(), DpramLayout::paper_default());
        queue_pdu(&mut tx_a, 0, &[(0x4000, 16 * 1024)], Vci(1));
        let single = tx_a
            .service(SimTime::ZERO, &mut mem_a, &phys, &mut link_a, &mut slab)
            .unwrap();

        let mut cfg = TxConfig::paper_default();
        cfg.dma_mode = DmaMode::DoubleCell;
        let mut tx_b = TxProcessor::new(cfg, DpramLayout::paper_default());
        let mut mem_b = MemorySystem::new(BusSpec::ds5000_200());
        let mut link_b = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
        queue_pdu(&mut tx_b, 0, &[(0x4000, 16 * 1024)], Vci(1));
        let double = tx_b
            .service(SimTime::ZERO, &mut mem_b, &phys, &mut link_b, &mut slab)
            .unwrap();

        assert!(
            double.finished_at < single.finished_at,
            "double-cell DMA must finish sooner: {} vs {}",
            double.finished_at,
            single.finished_at
        );
    }
}
