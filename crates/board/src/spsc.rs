//! The §2.1.1 queue discipline on real hardware.
//!
//! The paper's claim: a one-reader-one-writer ring is correct given only
//! atomic 32-bit loads and stores, because the head pointer has a single
//! writer (the producer) and the tail a single writer (the consumer). On a
//! modern memory model "plain atomic store" must be release and "plain
//! atomic load" acquire for the payload to be visible; this module encodes
//! the discipline with exactly those orderings and the test suite hammers
//! it from two real threads (see `tests/` at the workspace root for the
//! cross-thread stress test).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

/// A fixed-capacity single-producer single-consumer ring of `T`.
///
/// Safety contract: at most one thread calls [`SpscRing::push`]
/// (the producer) and at most one thread calls [`SpscRing::pop`]
/// (the consumer), concurrently.
pub struct SpscRing<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
    head: AtomicU32,
    tail: AtomicU32,
    size: u32,
}

// SAFETY: the SPSC discipline (one producer thread, one consumer thread)
// partitions slot access: the producer only writes slots in
// [head, head+1) when they are empty (consumer has advanced past), the
// consumer only reads slots in [tail, tail+1) when they are full. The
// acquire/release pairs on head/tail order the payload accesses.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring with `size` slots (capacity `size - 1`).
    pub fn new(size: u32) -> Self {
        assert!(size >= 2);
        let slots: Vec<UnsafeCell<Option<T>>> = (0..size).map(|_| UnsafeCell::new(None)).collect();
        SpscRing {
            slots: slots.into_boxed_slice(),
            head: AtomicU32::new(0),
            tail: AtomicU32::new(0),
            size,
        }
    }

    /// Usable capacity.
    pub fn capacity(&self) -> u32 {
        self.size - 1
    }

    /// Producer side: attempts to enqueue. Returns the value back if full.
    pub fn push(&self, value: T) -> Result<(), T> {
        // The producer owns `head`; a relaxed read of our own variable is
        // fine. The `tail` load is acquire so we observe the consumer's
        // slot release before reusing it.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if (head + 1) % self.size == tail {
            return Err(value); // full
        }
        // SAFETY: SPSC discipline — this slot is outside the consumer's
        // visible window until the release store below.
        unsafe { *self.slots[head as usize].get() = Some(value) };
        self.head.store((head + 1) % self.size, Ordering::Release);
        Ok(())
    }

    /// Consumer side: attempts to dequeue.
    pub fn pop(&self) -> Option<T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if head == tail {
            return None; // empty
        }
        // SAFETY: SPSC discipline — the producer released this slot with
        // the head store we just acquired.
        let value = unsafe { (*self.slots[tail as usize].get()).take() };
        self.tail.store((tail + 1) % self.size, Ordering::Release);
        Some(value.expect("occupied slot in [tail, head)"))
    }

    /// Snapshot of the occupancy (approximate under concurrency).
    pub fn len(&self) -> u32 {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        (head + self.size - tail) % self.size
    }

    /// True if a snapshot sees no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_fifo() {
        let r = SpscRing::new(4);
        assert!(r.push(1).is_ok());
        assert!(r.push(2).is_ok());
        assert!(r.push(3).is_ok());
        assert_eq!(r.push(4), Err(4), "capacity is size-1");
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), Some(2));
        assert!(r.push(4).is_ok());
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(4));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn two_thread_stress_preserves_fifo_and_loses_nothing() {
        const N: u64 = 10_000;
        let ring = Arc::new(SpscRing::<u64>::new(64));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while i < N {
                    if ring.push(i).is_ok() {
                        i += 1;
                    } else {
                        // One yield per failed attempt: on a single-core
                        // host a pure spin loop starves the peer thread.
                        std::thread::yield_now();
                    }
                }
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut expected = 0u64;
                while expected < N {
                    match ring.pop() {
                        Some(v) => {
                            assert_eq!(v, expected, "FIFO violation");
                            expected += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(ring.is_empty());
    }

    #[test]
    fn payload_visibility_with_boxed_values() {
        // Heap payloads catch missing release/acquire pairs under tools
        // like Miri; under normal runs this is a smoke test.
        const N: u64 = 10_000;
        let ring = Arc::new(SpscRing::<Box<u64>>::new(8));
        let r2 = Arc::clone(&ring);
        let producer = std::thread::spawn(move || {
            let mut i = 0u64;
            while i < N {
                if r2.push(Box::new(i * 3)).is_ok() {
                    i += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        let mut seen = 0u64;
        while seen < N {
            if let Some(b) = ring.pop() {
                assert_eq!(*b, seen * 3);
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }
}
