//! DMA transaction planning (§2.5).
//!
//! The DMA controller's transfer-length rules were the most-revised part of
//! OSIRIS ("the logic for this component is by far the most complex part").
//! Four generations are modelled:
//!
//! * [`DmaMode::SingleCell`] — exactly one 44-byte cell payload per
//!   transaction (the original logic). 42 % bus overhead in the transmit
//!   direction.
//! * [`DmaMode::DoubleCell`] — the implemented modification: the receive
//!   processor looks at two cell headers and, when the payloads land
//!   contiguously, issues one 88-byte transaction (26 % → 12 % overhead;
//!   587 Mbps ceiling — "more than the payload of an OC-12 channel").
//! * [`DmaMode::Arbitrary`] — the ideal controller the programmable logic
//!   could not afford.
//!
//! Orthogonally, the **page-boundary-stop rule** (§2.5.2): "if the address
//! handed to the DMA controller is within 44 bytes of a page boundary, the
//! DMA will stop when it reaches the boundary", taking a second address to
//! fill the remainder of the cell. That is what lets the host pass PDUs as
//! chains of page-aligned buffers without partially filled cells mid-PDU.
//!
//! # Example
//!
//! ```
//! use osiris_board::dma::{plan_dma, DmaMode};
//! use osiris_mem::PhysAddr;
//!
//! // 88 bytes starting 20 bytes before a page boundary: the controller
//! // stops at the boundary and takes a second address (§2.5.2).
//! let plan = plan_dma(DmaMode::DoubleCell, PhysAddr(4096 - 20), 88, 4096);
//! assert_eq!(plan.len(), 2);
//! assert_eq!(plan[0].len, 20);
//! assert_eq!(plan[1].addr, PhysAddr(4096));
//! ```

use osiris_mem::PhysAddr;

/// Maximum bytes the DMA controller moves per transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaMode {
    /// One cell payload (44 B) per transaction.
    SingleCell,
    /// Up to two contiguous cell payloads (88 B) per transaction.
    DoubleCell,
    /// Any length (ideal hardware; used as an ablation baseline).
    Arbitrary,
}

impl DmaMode {
    /// Largest transfer this mode may issue, if bounded.
    pub fn max_len(self) -> Option<u32> {
        match self {
            DmaMode::SingleCell => Some(44),
            DmaMode::DoubleCell => Some(88),
            DmaMode::Arbitrary => None,
        }
    }
}

/// One planned DMA transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaXfer {
    /// Start address.
    pub addr: PhysAddr,
    /// Length in bytes.
    pub len: u32,
}

/// Plans the bus transactions needed to move `len` bytes starting at
/// `addr`, under `mode`, stopping at `page_size` boundaries (the §2.5.2
/// rule). Each returned transaction pays the fixed per-transaction bus
/// overhead, so the plan length is the cost model's input.
pub fn plan_dma(mode: DmaMode, addr: PhysAddr, len: u32, page_size: u64) -> Vec<DmaXfer> {
    assert!(page_size.is_power_of_two());
    let mut out = Vec::with_capacity(2);
    let mut cur = addr.0;
    let mut remaining = len as u64;
    let chunk_cap = mode.max_len().map(u64::from).unwrap_or(u64::MAX);
    while remaining > 0 {
        let to_page_end = page_size - (cur & (page_size - 1));
        let take = remaining.min(chunk_cap).min(to_page_end);
        out.push(DmaXfer {
            addr: PhysAddr(cur),
            len: take as u32,
        });
        cur += take;
        remaining -= take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 4096;

    #[test]
    fn single_cell_fits_one_transaction() {
        let plan = plan_dma(DmaMode::SingleCell, PhysAddr(1000), 44, PAGE);
        assert_eq!(
            plan,
            vec![DmaXfer {
                addr: PhysAddr(1000),
                len: 44
            }]
        );
    }

    #[test]
    fn single_cell_splits_at_page_boundary() {
        // 44 bytes starting 20 bytes before a page boundary: stop at the
        // boundary, second transaction fills the remainder of the cell.
        let start = PAGE - 20;
        let plan = plan_dma(DmaMode::SingleCell, PhysAddr(start), 44, PAGE);
        assert_eq!(
            plan,
            vec![
                DmaXfer {
                    addr: PhysAddr(start),
                    len: 20
                },
                DmaXfer {
                    addr: PhysAddr(PAGE),
                    len: 24
                },
            ]
        );
    }

    #[test]
    fn double_cell_is_one_transaction_when_aligned() {
        let plan = plan_dma(DmaMode::DoubleCell, PhysAddr(0), 88, PAGE);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].len, 88);
    }

    #[test]
    fn double_cell_respects_page_boundary() {
        let start = PAGE - 44;
        let plan = plan_dma(DmaMode::DoubleCell, PhysAddr(start), 88, PAGE);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].len, 44);
        assert_eq!(plan[1].addr, PhysAddr(PAGE));
        assert_eq!(plan[1].len, 44);
    }

    #[test]
    fn arbitrary_mode_only_splits_on_pages() {
        let plan = plan_dma(DmaMode::Arbitrary, PhysAddr(100), 16 * 1024, PAGE);
        // 100..4096, then three full pages, then the tail.
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.iter().map(|x| x.len as u64).sum::<u64>(), 16 * 1024);
        for w in plan.windows(2) {
            assert_eq!(w[0].addr.0 + w[0].len as u64, w[1].addr.0);
        }
    }

    #[test]
    fn plan_conserves_bytes_and_never_crosses_pages() {
        for mode in [DmaMode::SingleCell, DmaMode::DoubleCell, DmaMode::Arbitrary] {
            for start in [
                0u64,
                1,
                43,
                44,
                PAGE - 1,
                PAGE - 44,
                PAGE - 45,
                3 * PAGE - 7,
            ] {
                for len in [1u32, 43, 44, 45, 88, 89, 4096, 10_000] {
                    let plan = plan_dma(mode, PhysAddr(start), len, PAGE);
                    assert_eq!(
                        plan.iter().map(|x| x.len as u64).sum::<u64>(),
                        len as u64,
                        "{mode:?} {start} {len}"
                    );
                    for x in &plan {
                        let first_page = x.addr.0 / PAGE;
                        let last_page = (x.addr.0 + x.len as u64 - 1) / PAGE;
                        assert_eq!(first_page, last_page, "crossed a page: {x:?}");
                        if let Some(cap) = mode.max_len() {
                            assert!(x.len <= cap);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn exactly_at_boundary_starts_fresh() {
        let plan = plan_dma(DmaMode::SingleCell, PhysAddr(PAGE), 44, PAGE);
        assert_eq!(plan.len(), 1);
    }
}
