//! # osiris-board — the OSIRIS network adaptor
//!
//! The adaptor consists of "two mostly independent halves — send and
//! receive — each controlled by an Intel 80960 microprocessor", attached to
//! the host through a 128 KB dual-port memory region on the TURBOchannel.
//! Software defines everything: the host/board interface is the shared
//! data structures this crate implements, and the SAR algorithms are the
//! firmware state machines in [`tx`] and [`rx`].
//!
//! Layout of the reproduction:
//!
//! * [`descriptor`] — buffer descriptors and the **lock-free
//!   one-reader-one-writer FIFO queues** of §2.1.1, with exact load/store
//!   accounting so the cost of crossing the TURBOchannel is charged
//!   faithfully; plus the spin-lock-guarded baseline queue the paper
//!   rejected.
//! * [`spsc`] — the same queue discipline implemented with real atomics
//!   and run on real threads, validating that head/tail ownership plus
//!   acquire/release ordering is sufficient (the paper's claim that only
//!   load/store atomicity is needed).
//! * [`dpram`] — the dual-port memory layout: 16 × 4 KB pages per half,
//!   one transmit queue or free/receive queue pair per page (§3.2's ADC
//!   substrate).
//! * [`dma`] — DMA transaction planning: single-cell, double-cell
//!   combining, the page-boundary-stop rule, and ideal arbitrary-length
//!   transfers (§2.5).
//! * [`interrupt`] — interrupt suppression policies (§2.1.2).
//! * [`tx`] / [`rx`] — the firmware: segmentation with per-queue
//!   priorities, reassembly with early demultiplexing by VCI, free-buffer
//!   management, and the fictitious-PDU generator used by the paper's
//!   receive-side experiments (§4).

pub mod descriptor;
pub mod dma;
pub mod dpram;
pub mod interrupt;
pub mod rx;
pub mod spsc;
pub mod tx;

pub use descriptor::{DescRing, Descriptor, LockedRing, RingCosts, RingFull, DESC_WORDS};
pub use dma::{plan_dma, DmaMode, DmaXfer};
pub use dpram::{DpramLayout, QUEUE_PAGES};
pub use interrupt::{InterruptPolicy, InterruptStats};
pub use rx::{RxConfig, RxOutcome, RxProcessor};
pub use tx::{FirmwareSpec, TxConfig, TxOutcome, TxProcessor};
