//! Interrupt policies (§2.1.2).
//!
//! "Handling a host interrupt asserted by the OSIRIS board takes
//! approximately 75 µs in Mach on a DECstation 5000/200", versus 200 µs to
//! service a whole UDP/IP PDU — so interrupts are a large fraction of
//! per-packet cost, and the paper's discipline is built around suppressing
//! them:
//!
//! * receive: interrupt only on the receive queue's empty → non-empty
//!   transition, so a burst of n PDUs costs one interrupt;
//! * transmit: no completion interrupts at all; the host polls the tail
//!   pointer during other driver activity, and the board interrupts only
//!   when a previously full transmit queue drains to half empty.
//!
//! [`InterruptPolicy::PerPdu`] is the traditional baseline the paper
//! compares against.

/// When the receive processor asserts a host interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptPolicy {
    /// Traditional: one interrupt per received PDU.
    PerPdu,
    /// OSIRIS: interrupt only when the receive queue transitions from
    /// empty to non-empty.
    OnTransition,
}

impl InterruptPolicy {
    /// Given the receive queue's occupancy *before* this PDU was enqueued,
    /// should an interrupt be asserted?
    pub fn should_interrupt(self, queue_len_before: u32) -> bool {
        match self {
            InterruptPolicy::PerPdu => true,
            InterruptPolicy::OnTransition => queue_len_before == 0,
        }
    }
}

/// Interrupt accounting for an experiment run.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterruptStats {
    /// Interrupts asserted by the receive half.
    pub rx_interrupts: u64,
    /// Interrupts asserted by the transmit half (queue-drain wakeups).
    pub tx_interrupts: u64,
    /// PDUs delivered to the host.
    pub pdus_delivered: u64,
    /// Access-violation interrupts (ADC protection, §3.2).
    pub violations: u64,
}

impl InterruptStats {
    /// Interrupts per delivered PDU — the paper's figure of merit ("much
    /// lower than the traditional one-per-PDU" under bursts).
    pub fn rx_interrupts_per_pdu(&self) -> f64 {
        if self.pdus_delivered == 0 {
            0.0
        } else {
            self.rx_interrupts as f64 / self.pdus_delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_pdu_always_fires() {
        assert!(InterruptPolicy::PerPdu.should_interrupt(0));
        assert!(InterruptPolicy::PerPdu.should_interrupt(5));
    }

    #[test]
    fn transition_fires_only_from_empty() {
        assert!(InterruptPolicy::OnTransition.should_interrupt(0));
        assert!(!InterruptPolicy::OnTransition.should_interrupt(1));
        assert!(!InterruptPolicy::OnTransition.should_interrupt(63));
    }

    #[test]
    fn stats_ratio() {
        let s = InterruptStats {
            rx_interrupts: 5,
            pdus_delivered: 100,
            ..Default::default()
        };
        assert!((s.rx_interrupts_per_pdu() - 0.05).abs() < 1e-12);
        assert_eq!(InterruptStats::default().rx_interrupts_per_pdu(), 0.0);
    }
}
