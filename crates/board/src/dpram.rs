//! Dual-port memory layout (§3.2).
//!
//! "From the host's perspective, the adaptor looks like a 128 KB region of
//! memory." Each half (transmit / receive) exposes 16 pages of 4 KB:
//!
//! * transmit half: one transmit queue per page;
//! * receive half: one free-buffer queue **and** one receive queue per page.
//!
//! Page 0 of each half belongs to the operating system; the remaining
//! pages are grouped into (transmit, receive) pairs that can be mapped
//! directly into application address spaces to form application device
//! channels. This module only captures the geometry; queue behaviour lives
//! in [`crate::descriptor`], and the protection rules in `osiris-adc`.

/// Queue pages per half (16 × 4 KB = 64 KB per half, 128 KB total).
pub const QUEUE_PAGES: usize = 16;

/// Bytes per dual-port page.
pub const DPRAM_PAGE_BYTES: usize = 4096;

/// Geometry of the shared memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpramLayout {
    /// Descriptor ring slots per transmit queue.
    pub tx_ring_slots: u32,
    /// Slots per free-buffer ring.
    pub free_ring_slots: u32,
    /// Slots per receive ring.
    pub rx_ring_slots: u32,
}

impl DpramLayout {
    /// The paper's configuration: 64-entry free and receive queues
    /// (§2.3: "a free buffer queue and a receive queue with a length of 64
    /// buffers each"); transmit rings sized to match.
    pub fn paper_default() -> Self {
        DpramLayout {
            tx_ring_slots: 64,
            free_ring_slots: 64,
            rx_ring_slots: 64,
        }
    }

    /// Index of the queue page owned by the kernel.
    pub const KERNEL_PAGE: usize = 0;

    /// Queue-page indices available for application device channels.
    pub fn adc_pages() -> impl Iterator<Item = usize> {
        1..QUEUE_PAGES
    }

    /// Verifies the rings fit their 4 KB pages (descriptors are 3 words +
    /// head/tail pointers).
    pub fn fits(&self) -> bool {
        let desc_bytes = (crate::descriptor::DESC_WORDS as usize) * 4;
        let tx = self.tx_ring_slots as usize * desc_bytes + 8;
        let rxpair = (self.free_ring_slots + self.rx_ring_slots) as usize * desc_bytes + 16;
        tx <= DPRAM_PAGE_BYTES && rxpair <= DPRAM_PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_fits_pages() {
        let l = DpramLayout::paper_default();
        assert!(l.fits());
        assert_eq!(l.tx_ring_slots, 64);
    }

    #[test]
    fn adc_pages_exclude_kernel_page() {
        let pages: Vec<usize> = DpramLayout::adc_pages().collect();
        assert_eq!(pages.len(), QUEUE_PAGES - 1);
        assert!(!pages.contains(&DpramLayout::KERNEL_PAGE));
    }

    #[test]
    fn oversized_rings_do_not_fit() {
        let l = DpramLayout {
            tx_ring_slots: 4096,
            free_ring_slots: 64,
            rx_ring_slots: 64,
        };
        assert!(!l.fits());
    }
}
