//! Cross-checks between the simulated lock-free ring (with its
//! TURBOchannel cost accounting) and the real-atomics SPSC ring: the two
//! implementations of the §2.1.1 discipline must agree on semantics.
//!
//! Requires the `proptest-tests` feature (and its dev-dependencies,
//! which offline builds cannot fetch — see the manifest note).
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use osiris_board::descriptor::{DescRing, Descriptor, DESC_WORDS};
use osiris_board::spsc::SpscRing;
use osiris_mem::PhysAddr;

proptest! {
    /// The DES ring and the atomic ring accept/refuse the exact same
    /// operation sequences and yield the same values.
    #[test]
    fn both_rings_agree(ops in proptest::collection::vec(any::<bool>(), 1..300),
                        size in 2u32..32) {
        let mut des = DescRing::new(size);
        let spsc = SpscRing::<u32>::new(size);
        let mut n = 0u32;
        for push in ops {
            if push {
                let des_ok = des
                    .push(Descriptor::tx(PhysAddr(n as u64), n, osiris_atm::Vci(1), false))
                    .is_ok();
                let spsc_ok = spsc.push(n).is_ok();
                prop_assert_eq!(des_ok, spsc_ok, "full disagreement at {}", n);
                n += 1;
            } else {
                let a = des.pop().map(|(d, _)| d.len);
                let b = spsc.pop();
                prop_assert_eq!(a, b, "pop disagreement");
            }
            prop_assert_eq!(des.len(), spsc.len());
        }
    }

    /// Ring cost accounting is constant per operation: the §2.1 goal of
    /// "minimizing the number of load and store operations" is a fixed,
    /// verifiable budget (2 loads + 4 stores per producer cycle; 4 loads +
    /// 1 store per consumer cycle).
    #[test]
    fn ring_costs_are_constant(count in 1u32..60) {
        let mut ring = DescRing::new(64);
        let mut loads = 0;
        let mut stores = 0;
        for i in 0..count {
            let (_, c) = ring.producer_check();
            loads += c.loads;
            stores += c.stores;
            let c = ring
                .push(Descriptor::tx(PhysAddr(0), i, osiris_atm::Vci(1), true))
                .unwrap();
            loads += c.loads;
            stores += c.stores;
        }
        prop_assert_eq!(loads, count as u64);
        prop_assert_eq!(stores, count as u64 * (DESC_WORDS + 1));
        let mut loads = 0;
        let mut stores = 0;
        for _ in 0..count {
            let (_, c) = ring.consumer_check();
            loads += c.loads;
            stores += c.stores;
            let (_, c) = ring.pop().unwrap();
            loads += c.loads;
            stores += c.stores;
        }
        prop_assert_eq!(loads, count as u64 * (1 + DESC_WORDS));
        prop_assert_eq!(stores, count as u64);
    }
}

#[test]
fn wraparound_equivalence_long_run() {
    // Deterministic long interleaving crossing the wrap point many times.
    let mut des = DescRing::new(5);
    let spsc = SpscRing::<u32>::new(5);
    let mut next = 0u32;
    for round in 0..1000u32 {
        let pushes = (round % 4) + 1;
        for _ in 0..pushes {
            let a = des
                .push(Descriptor::tx(PhysAddr(0), next, osiris_atm::Vci(1), false))
                .is_ok();
            let b = spsc.push(next).is_ok();
            assert_eq!(a, b);
            if a {
                next += 1;
            }
        }
        let pops = (round % 3) + 1;
        for _ in 0..pops {
            assert_eq!(des.pop().map(|(d, _)| d.len), spsc.pop());
        }
    }
}
