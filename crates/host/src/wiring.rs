//! Page wiring services (§2.4).
//!
//! "Whenever the address of a buffer is passed to the OSIRIS on-board
//! processors for use in DMA transfers, the corresponding pages must be
//! wired." Two services are modelled:
//!
//! * [`WiringMode::MachStandard`] — Mach's `vm_wire`-style service, which
//!   "provides stronger guarantees than are actually needed" (it also
//!   protects page-table pages) and showed "surprisingly high overhead";
//! * [`WiringMode::LowLevel`] — the pmap-level path the authors switched
//!   to, "with acceptable performance".
//!
//! Costs are charged per page whose wiring state actually changes; pages
//! already wired are free (the driver keeps its receive pool permanently
//! wired, so the cost shows up on the transmit path).

use osiris_mem::{AddressSpace, MapError, VirtAddr};
use osiris_sim::resource::Grant;
use osiris_sim::{SimDuration, SimTime};

use crate::machine::HostMachine;

/// Which wiring service the driver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WiringMode {
    /// Mach's standard service (heavyweight).
    MachStandard,
    /// Low-level pmap functionality (what the paper converged on).
    LowLevel,
}

impl WiringMode {
    /// Cost per page whose state changes, on the given machine. The Mach
    /// path is dominated by machine-independent VM bookkeeping, so it is
    /// taken as ~6× the low-level path (no absolute figure is published;
    /// the ratio is an estimate recorded in DESIGN.md).
    pub fn cost_per_page(self, h: &HostMachine) -> SimDuration {
        let base = match h.spec.bus.topology {
            osiris_mem::MemTopology::SharedBus => SimDuration::from_us(9),
            osiris_mem::MemTopology::Crossbar => SimDuration::from_us(4),
        };
        match self {
            WiringMode::LowLevel => base,
            WiringMode::MachStandard => SimDuration::from_ps(base.as_ps() * 6),
        }
    }
}

/// Charges wiring costs and tracks state through the address space.
#[derive(Debug, Clone, Copy)]
pub struct WiringService {
    /// The service in use.
    pub mode: WiringMode,
}

impl WiringService {
    /// Wires `[va, va+len)` in `asp`, charging CPU time for each page that
    /// changed state. Returns the completion grant and pages changed.
    pub fn wire(
        &self,
        now: SimTime,
        h: &mut HostMachine,
        asp: &mut AddressSpace,
        va: VirtAddr,
        len: u64,
    ) -> Result<(Grant, u64), MapError> {
        let changed = asp.wire(va, len)?;
        let cost = SimDuration::from_ps(self.mode.cost_per_page(h).as_ps() * changed);
        Ok((h.run_cpu(now, cost), changed))
    }

    /// Unwires, charging a quarter of the wire cost per changed page
    /// (release is cheaper than acquire in both services).
    pub fn unwire(
        &self,
        now: SimTime,
        h: &mut HostMachine,
        asp: &mut AddressSpace,
        va: VirtAddr,
        len: u64,
    ) -> Result<(Grant, u64), MapError> {
        let changed = asp.unwire(va, len)?;
        let cost = SimDuration::from_ps(self.mode.cost_per_page(h).as_ps() * changed / 4);
        Ok((h.run_cpu(now, cost), changed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    fn setup() -> (HostMachine, AddressSpace) {
        let h = HostMachine::boot(MachineSpec::ds5000_200(), 3);
        let asp = AddressSpace::new(h.spec.page_size);
        (h, asp)
    }

    #[test]
    fn mach_standard_is_much_slower() {
        let (mut h, mut asp) = setup();
        let r = asp.alloc_and_map(4 * 4096, &mut h.alloc).unwrap();
        let std_svc = WiringService {
            mode: WiringMode::MachStandard,
        };
        let (g1, n1) = std_svc
            .wire(SimTime::ZERO, &mut h, &mut asp, r.base, r.len)
            .unwrap();
        assert_eq!(n1, 4);
        let t_std = g1.finish.since(g1.start);

        let (mut h2, mut asp2) = setup();
        let r2 = asp2.alloc_and_map(4 * 4096, &mut h2.alloc).unwrap();
        let low = WiringService {
            mode: WiringMode::LowLevel,
        };
        let (g2, _) = low
            .wire(SimTime::ZERO, &mut h2, &mut asp2, r2.base, r2.len)
            .unwrap();
        let t_low = g2.finish.since(g2.start);
        assert!(t_std.as_ps() >= 5 * t_low.as_ps(), "{t_std} vs {t_low}");
    }

    #[test]
    fn rewiring_wired_pages_is_free() {
        let (mut h, mut asp) = setup();
        let r = asp.alloc_and_map(2 * 4096, &mut h.alloc).unwrap();
        let svc = WiringService {
            mode: WiringMode::LowLevel,
        };
        let (_, n1) = svc
            .wire(SimTime::ZERO, &mut h, &mut asp, r.base, r.len)
            .unwrap();
        assert_eq!(n1, 2);
        let (g, n2) = svc
            .wire(SimTime::ZERO, &mut h, &mut asp, r.base, r.len)
            .unwrap();
        assert_eq!(n2, 0);
        assert_eq!(g.finish.since(g.start), SimDuration::ZERO);
    }

    #[test]
    fn unwire_is_cheaper_than_wire() {
        let (mut h, mut asp) = setup();
        let r = asp.alloc_and_map(4096, &mut h.alloc).unwrap();
        let svc = WiringService {
            mode: WiringMode::LowLevel,
        };
        let (gw, _) = svc
            .wire(SimTime::ZERO, &mut h, &mut asp, r.base, r.len)
            .unwrap();
        let (gu, n) = svc
            .unwire(gw.finish, &mut h, &mut asp, r.base, r.len)
            .unwrap();
        assert_eq!(n, 1);
        assert!(gu.finish.since(gu.start) < gw.finish.since(gw.start));
    }

    #[test]
    fn alpha_wiring_is_cheaper() {
        let ds = HostMachine::boot(MachineSpec::ds5000_200(), 1);
        let ax = HostMachine::boot(MachineSpec::dec3000_600(), 1);
        assert!(WiringMode::LowLevel.cost_per_page(&ax) < WiringMode::LowLevel.cost_per_page(&ds));
    }
}
