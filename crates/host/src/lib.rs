//! # osiris-host — the host operating system substrate
//!
//! The paper's host side: Mach 3.0 with an x-kernel network subsystem on
//! two generations of DEC workstation. This crate models the parts that
//! interact with the adaptor:
//!
//! * [`machine`] — the two machines of §4 ([`MachineSpec::ds5000_200`],
//!   [`MachineSpec::dec3000_600`]) as bundles of bus topology, cache
//!   geometry and calibrated software costs (75 µs interrupts, 200 µs
//!   UDP/IP PDU service, …), plus [`HostMachine`]: the live CPU / cache /
//!   memory complex with cost-accounted read/write/checksum helpers.
//! * [`wiring`] — §2.4's page-wiring services: Mach's heavyweight
//!   `vm_wire` versus the low-level pmap path the authors switched to.
//! * [`driver`] — the kernel OSIRIS device driver: descriptor-queue
//!   management over the TURBOchannel, interrupt-driven receive drain,
//!   free-buffer replenishment with per-path recycling (§2.3's security
//!   rule), the three cache-invalidation strategies of §2.3, and the
//!   blocked-transmit protocol of §2.1.2.
//! * [`domain`] — protection domains and crossing costs (substrate for
//!   fbufs and ADCs).
//! * [`thread`] — the priority thread scheduler §3.1's prioritised drain
//!   threads run on.

pub mod domain;
pub mod driver;
pub mod machine;
pub mod thread;
pub mod wiring;

pub use domain::{Domain, DomainId};
pub use driver::{
    CacheStrategy, DeliveredPdu, DrainOutcome, DriverStats, OsirisDriver, SendOutcome,
};
pub use machine::{HostMachine, MachineSpec, SoftwareCosts};
pub use thread::{Scheduler, ThreadId, ThreadState};
pub use wiring::{WiringMode, WiringService};
