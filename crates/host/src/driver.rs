//! The kernel OSIRIS device driver.
//!
//! Implements the host side of the §2.1 protocol:
//!
//! * **Transmit**: wire the PDU's pages (§2.4, amortised — already-wired
//!   pages are free), check the lock-free transmit ring for space with a
//!   single TURBOchannel load, push one descriptor per physical buffer
//!   (chained PDUs, §2.5.2), and advance the head pointer. A full queue
//!   blocks the caller; the board wakes it at half-empty (§2.1.2).
//! * **Receive**: the interrupt handler schedules a drain thread that pops
//!   descriptors until the ring is empty, applies the configured cache
//!   strategy (§2.3), assembles buffer chains into PDUs, and hands them
//!   up. Consumed buffers are recycled to the *same path's* free ring —
//!   the per-stream-reuse rule that makes lazy invalidation safe even for
//!   unreliable protocols (§2.3, condition 3).
//!
//! The driver charges every cost it incurs: CPU time for bookkeeping,
//! TURBOchannel words for ring operations (the `RingCosts` reported by the
//! queue), and invalidation cycles per the cache strategy.

use std::collections::HashMap;

use osiris_atm::Vci;
use osiris_board::descriptor::{Descriptor, RingCosts};
use osiris_board::rx::RxProcessor;
use osiris_board::tx::TxProcessor;
use osiris_mem::{AddressSpace, PhysBuffer, VirtAddr};
use osiris_sim::obs::{Counter, Probe};
use osiris_sim::{SimDuration, SimTime, Timeline, TraceCtx};

use crate::machine::HostMachine;
use crate::wiring::WiringService;

/// How the driver keeps the data cache honest after DMA (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStrategy {
    /// Invalidate every received buffer before delivery (pessimistic; the
    /// "single cell DMA, cache invalidated" series of Figure 2).
    Eager,
    /// Deliver without invalidating; rely on protocol checksums to detect
    /// stale reads and recover by invalidate-and-retry.
    Lazy,
    /// The hardware keeps the cache coherent (DEC 3000/600); nothing to do.
    HardwareCoherent,
}

/// Driver counters — a point-in-time copy of the driver's registry
/// counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverStats {
    /// PDUs queued for transmission.
    pub pdus_sent: u64,
    /// Descriptors (physical buffers) queued for transmission.
    pub tx_buffers: u64,
    /// Times the transmit path found the ring full and blocked.
    pub tx_blocks: u64,
    /// PDUs delivered upward.
    pub pdus_received: u64,
    /// Receive buffers processed.
    pub rx_buffers: u64,
    /// PDUs discarded because the board flagged a CRC error.
    pub err_pdus: u64,
    /// Buffers recycled to free rings.
    pub recycled: u64,
}

/// A PDU assembled from receive descriptors, ready for the protocol stack.
#[derive(Debug, Clone)]
pub struct DeliveredPdu {
    /// The PDU's VCI (the path key).
    pub vci: Vci,
    /// The buffers holding the data, in order.
    pub bufs: Vec<Descriptor>,
    /// Total data length.
    pub len: u32,
    /// When the driver finished its work on this PDU.
    pub ready_at: SimTime,
    /// Causal identity, taken from the PDU's descriptors (None when the
    /// board delivered untraced traffic).
    pub ctx: Option<TraceCtx>,
}

/// Result of one receive drain.
#[derive(Debug, Default)]
pub struct DrainOutcome {
    /// PDUs handed to the protocol stack, in completion order.
    pub delivered: Vec<DeliveredPdu>,
    /// When the drain thread went back to sleep.
    pub finished_at: SimTime,
}

/// Result of a transmit attempt.
#[derive(Debug, Clone, Copy)]
pub struct SendOutcome {
    /// When the descriptors became visible to the board (meaningless if
    /// `blocked`).
    pub queued_at: SimTime,
    /// True if the ring was full; the caller must retry after the wakeup.
    pub blocked: bool,
}

/// The kernel driver instance for one queue page.
#[derive(Debug)]
pub struct OsirisDriver {
    /// Cache strategy in force.
    pub cache_strategy: CacheStrategy,
    /// Wiring service in force.
    pub wiring: WiringService,
    /// The dual-port queue page this driver manages (kernel: 0).
    pub page: usize,
    buffer_bytes: u32,
    partial: HashMap<Vci, Vec<Descriptor>>,
    /// When each in-progress chain's first descriptor was popped, for the
    /// per-PDU receive span.
    chain_started: HashMap<Vci, SimTime>,
    stats: DriverCounters,
    timeline: Timeline,
    /// Timeline track for this driver's CPU spans (`<scope>.driver`).
    track: String,
    /// The driver runs on one CPU: successive per-PDU spans on this track
    /// are clamped so they never overlap.
    span_floor: SimTime,
}

/// The driver's registry-visible counters (scope `<probe>.driver`).
#[derive(Debug, Clone)]
struct DriverCounters {
    pdus_sent: Counter,
    tx_buffers: Counter,
    tx_blocks: Counter,
    pdus_received: Counter,
    rx_buffers: Counter,
    err_pdus: Counter,
    recycled: Counter,
}

impl DriverCounters {
    fn with_probe(probe: &Probe) -> Self {
        let p = probe.scoped("driver");
        DriverCounters {
            pdus_sent: p.counter("pdus_sent"),
            tx_buffers: p.counter("tx_buffers"),
            tx_blocks: p.counter("tx_blocks"),
            pdus_received: p.counter("pdus_received"),
            rx_buffers: p.counter("rx_buffers"),
            err_pdus: p.counter("err_pdus"),
            recycled: p.counter("recycled"),
        }
    }
}

impl OsirisDriver {
    /// A driver for `page` using `buffer_bytes` receive buffers, with
    /// detached counters (standalone use).
    pub fn new(
        page: usize,
        buffer_bytes: u32,
        cache_strategy: CacheStrategy,
        wiring: WiringService,
    ) -> Self {
        OsirisDriver::with_probe(
            page,
            buffer_bytes,
            cache_strategy,
            wiring,
            &Probe::detached(),
        )
    }

    /// A driver publishing its counters under `<scope>.driver`.
    pub fn with_probe(
        page: usize,
        buffer_bytes: u32,
        cache_strategy: CacheStrategy,
        wiring: WiringService,
        probe: &Probe,
    ) -> Self {
        OsirisDriver {
            cache_strategy,
            wiring,
            page,
            buffer_bytes,
            partial: HashMap::new(),
            chain_started: HashMap::new(),
            stats: DriverCounters::with_probe(probe),
            timeline: Timeline::default(),
            track: probe.scoped("driver").scope().to_string(),
            span_floor: SimTime::ZERO,
        }
    }

    /// Attaches the timeline this driver records its per-PDU spans on
    /// (disabled/detached by default).
    pub fn set_timeline(&mut self, timeline: &Timeline) {
        self.timeline = timeline.clone();
    }

    /// Driver counters (a copy of the current values).
    pub fn stats(&self) -> DriverStats {
        DriverStats {
            pdus_sent: self.stats.pdus_sent.get(),
            tx_buffers: self.stats.tx_buffers.get(),
            tx_blocks: self.stats.tx_blocks.get(),
            pdus_received: self.stats.pdus_received.get(),
            rx_buffers: self.stats.rx_buffers.get(),
            err_pdus: self.stats.err_pdus.get(),
            recycled: self.stats.recycled.get(),
        }
    }

    /// Allocates `count` physically contiguous, permanently wired receive
    /// buffers and loads them into this page's free ring. Returns when the
    /// provisioning completed (boot-time cost, not in any critical path).
    pub fn provision_receive_buffers(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        rx: &mut RxProcessor,
        count: usize,
    ) -> SimTime {
        let pages_per_buf = (self.buffer_bytes as usize).div_ceil(host.spec.page_size);
        let mut t = now;
        for _ in 0..count {
            let frames = host
                .alloc
                .alloc_contiguous(pages_per_buf)
                .expect("contiguous receive-buffer pool exhausted");
            let addr = host.phys.frame_addr(frames[0]);
            let desc = Descriptor::tx(addr, self.buffer_bytes, Vci(0), false);
            let cost = rx
                .free_ring_mut(self.page)
                .push(desc)
                .expect("free ring sized for provisioning");
            t = self.charge_ring(t, host, cost);
        }
        t
    }

    /// Queues one PDU (a chain of physical buffers) on transmit queue
    /// `self.page`. `wire` names the virtual range to pin first, if any;
    /// `ctx` is stamped onto every descriptor of the chain for tracing.
    #[allow(clippy::too_many_arguments)]
    pub fn send_pdu(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        tx: &mut TxProcessor,
        vci: Vci,
        buffers: &[PhysBuffer],
        wire: Option<(&mut AddressSpace, VirtAddr, u64)>,
        ctx: Option<TraceCtx>,
    ) -> SendOutcome {
        assert!(!buffers.is_empty(), "cannot send an empty PDU");
        let mut t = now;

        // §2.4: pin the pages (amortised; re-wiring is free).
        if let Some((asp, va, len)) = wire {
            let (g, _) = self
                .wiring
                .wire(t, host, asp, va, len)
                .expect("wiring unmapped PDU");
            t = g.finish;
        }

        // One load to check for space; the ring must fit the whole chain.
        let ring = tx.queue(self.page);
        let (_, check_cost) = ring.producer_check();
        t = self.charge_ring(t, host, check_cost);
        if (ring.capacity() - ring.len()) < buffers.len() as u32 {
            self.stats.tx_blocks.incr();
            tx.set_host_waiting(self.page);
            return SendOutcome {
                queued_at: t,
                blocked: true,
            };
        }

        // Per-PDU and per-buffer driver work (§2.2's multiplier).
        t = host.run_software(t, host.spec.costs.driver_pdu).finish;
        let n = buffers.len();
        for (i, b) in buffers.iter().enumerate() {
            t = host.run_software(t, host.spec.costs.driver_buffer).finish;
            let d = Descriptor::tx(b.addr, b.len, vci, i == n - 1).with_ctx(ctx);
            let cost = tx
                .queue_mut(self.page)
                .push(d)
                .expect("space checked above");
            t = self.charge_ring(t, host, cost);
            self.stats.tx_buffers.incr();
        }
        self.stats.pdus_sent.incr();
        if let Some(c) = ctx.filter(|_| self.timeline.is_enabled()) {
            let from = now.max(self.span_floor);
            if t > from {
                self.timeline.span_ctx(&self.track, "driver.tx", c, from, t);
                self.span_floor = t;
            }
        }
        SendOutcome {
            queued_at: t,
            blocked: false,
        }
    }

    /// Drains this page's receive ring: called from the thread the
    /// interrupt handler scheduled (the caller charges interrupt +
    /// dispatch and passes the resulting start time).
    pub fn drain_receive(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        rx: &mut RxProcessor,
    ) -> DrainOutcome {
        let mut out = DrainOutcome::default();
        let mut t = now;
        loop {
            // "wait until the receive queue is not empty" — one load.
            let (empty, check) = rx.rx_ring(self.page).consumer_check();
            t = self.charge_ring(t, host, check);
            if empty {
                break;
            }
            let t_desc = t;
            let (desc, cost) = rx.rx_ring_mut(self.page).pop().expect("checked non-empty");
            t = self.charge_ring(t, host, cost);
            t = host.run_software(t, host.spec.costs.driver_buffer).finish;
            self.stats.rx_buffers.incr();

            // §2.3: cache strategy, charged per buffer before delivery.
            if self.cache_strategy == CacheStrategy::Eager {
                t = host
                    .invalidate_cache(t, desc.addr, desc.len as usize)
                    .finish;
            }

            let chain = self.partial.entry(desc.vci).or_default();
            if chain.is_empty() {
                self.chain_started.insert(desc.vci, t_desc);
            }
            chain.push(desc);
            if desc.eop {
                let bufs = self.partial.remove(&desc.vci).expect("just inserted");
                let started = self.chain_started.remove(&desc.vci).unwrap_or(now);
                t = host.run_software(t, host.spec.costs.driver_pdu).finish;
                if desc.err {
                    // Board-flagged CRC failure: recycle, never deliver.
                    self.stats.err_pdus.incr();
                    t = self.recycle(t, host, rx, &bufs);
                } else {
                    let len = bufs.iter().map(|d| d.len).sum();
                    let ctx = bufs.iter().find_map(|d| d.ctx);
                    if let Some(c) = ctx.filter(|_| self.timeline.is_enabled()) {
                        let from = started.max(self.span_floor);
                        if t > from {
                            self.timeline.span_ctx(&self.track, "driver.rx", c, from, t);
                            self.span_floor = t;
                        }
                    }
                    self.stats.pdus_received.incr();
                    out.delivered.push(DeliveredPdu {
                        vci: desc.vci,
                        bufs,
                        len,
                        ready_at: t,
                        ctx,
                    });
                }
            }
        }
        out.finished_at = t;
        out
    }

    /// Returns consumed buffers to this page's free ring (per-path reuse:
    /// the §2.3 security rule falls out of the page-per-path structure).
    pub fn recycle(
        &mut self,
        now: SimTime,
        host: &mut HostMachine,
        rx: &mut RxProcessor,
        bufs: &[Descriptor],
    ) -> SimTime {
        let mut t = now;
        for d in bufs {
            // Reset to a full-size, flag-free free buffer.
            let fresh = Descriptor::tx(d.addr, self.buffer_bytes, Vci(0), false);
            let cost = rx
                .free_ring_mut(self.page)
                .push(fresh)
                .expect("free ring cannot overflow: buffers are conserved");
            t = self.charge_ring(t, host, cost);
            self.stats.recycled.incr();
        }
        t
    }

    /// Charges a ring operation's loads/stores as TURBOchannel PIO, with
    /// the CPU stalled for the duration.
    fn charge_ring(&self, now: SimTime, host: &mut HostMachine, cost: RingCosts) -> SimTime {
        let mut t = now.max(host.cpu.free_at());
        if cost.loads > 0 {
            let g = host.mem_sys.pio_read(t, cost.loads);
            host.cpu.acquire(g.start, g.finish.since(g.start));
            t = g.finish;
        }
        if cost.stores > 0 {
            let g = host.mem_sys.pio_write(t, cost.stores);
            host.cpu.acquire(g.start, g.finish.since(g.start));
            t = g.finish;
        }
        t
    }
}

/// Convenience: the end-to-end cost of taking the receive interrupt and
/// waking the drain thread (what stands between a descriptor push and
/// [`OsirisDriver::drain_receive`]).
pub fn interrupt_to_thread(now: SimTime, host: &mut HostMachine) -> SimTime {
    let g = host.take_interrupt(now);
    let d = host.run_software(g.finish, host.spec.costs.thread_dispatch);
    d.finish
}

/// The §2.7 programmed-I/O alternative: the CPU copies `bytes` from the
/// board FIFO into an application buffer, leaving the data in the cache.
/// Returns the completion time. (No DMA, no invalidation — but every word
/// crosses the TURBOchannel at PIO-read cost and is written through to
/// memory.)
pub fn pio_receive(now: SimTime, host: &mut HostMachine, bytes: u64) -> SimTime {
    let words = bytes.div_ceil(4);
    let g = host.mem_sys.pio_read(now, words);
    host.cpu.acquire(g.start, g.finish.since(g.start));
    // Write the data to the app buffer (write-through traffic).
    let w = host.mem_sys.cpu_mem_access(g.finish, words * 4);
    let c = host.run_cpu(
        g.finish,
        SimDuration::from_ps(host.spec.cpu_clock.cycles(words).as_ps()),
    );
    w.finish.max(c.finish)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;
    use crate::wiring::WiringMode;
    use osiris_atm::stripe::SkewConfig;
    use osiris_atm::{CellSlab, LinkSpec, StripedLink};
    use osiris_board::dpram::DpramLayout;
    use osiris_board::rx::RxConfig;
    use osiris_board::tx::TxConfig;
    use osiris_mem::PhysAddr;

    struct Rig {
        host: HostMachine,
        tx: TxProcessor,
        rx: RxProcessor,
        drv: OsirisDriver,
        link: StripedLink,
        slab: CellSlab,
    }

    fn rig() -> Rig {
        let host = HostMachine::boot(MachineSpec::ds5000_200(), 5);
        let tx = TxProcessor::new(TxConfig::paper_default(), DpramLayout::paper_default());
        let rx = RxProcessor::new(RxConfig::paper_default(), DpramLayout::paper_default());
        let drv = OsirisDriver::new(
            0,
            16 * 1024,
            CacheStrategy::Lazy,
            WiringService {
                mode: WiringMode::LowLevel,
            },
        );
        let link = StripedLink::new(LinkSpec::sts3c_back_to_back(), &SkewConfig::none());
        Rig {
            host,
            tx,
            rx,
            drv,
            link,
            slab: CellSlab::new(),
        }
    }

    #[test]
    fn provisioning_fills_free_ring() {
        let mut r = rig();
        let t = r
            .drv
            .provision_receive_buffers(SimTime::ZERO, &mut r.host, &mut r.rx, 16);
        assert_eq!(r.rx.free_ring(0).len(), 16);
        assert!(t > SimTime::ZERO, "provisioning costs TURBOchannel stores");
    }

    #[test]
    fn send_queues_descriptor_chain() {
        let mut r = rig();
        let bufs = [
            PhysBuffer::new(PhysAddr(0x8000), 3000),
            PhysBuffer::new(PhysAddr(0x10000), 1096),
        ];
        let out = r.drv.send_pdu(
            SimTime::ZERO,
            &mut r.host,
            &mut r.tx,
            Vci(9),
            &bufs,
            None,
            None,
        );
        assert!(!out.blocked);
        assert_eq!(r.tx.queue(0).len(), 2);
        let descs: Vec<_> = r.tx.queue(0).iter_live().copied().collect();
        assert!(!descs[0].eop);
        assert!(descs[1].eop);
        assert_eq!(r.drv.stats().pdus_sent, 1);
        // The board can now transmit it.
        let t = r.tx.service(
            out.queued_at,
            &mut r.host.mem_sys,
            &r.host.phys,
            &mut r.link,
            &mut r.slab,
        );
        assert_eq!(t.unwrap().pdu_bytes, 4096);
    }

    #[test]
    fn full_ring_blocks_and_sets_waiting() {
        let mut r = rig();
        let buf = [PhysBuffer::new(PhysAddr(0x8000), 100)];
        let mut t = SimTime::ZERO;
        let mut blocked = false;
        for _ in 0..70 {
            let out = r
                .drv
                .send_pdu(t, &mut r.host, &mut r.tx, Vci(1), &buf, None, None);
            t = out.queued_at;
            if out.blocked {
                blocked = true;
                break;
            }
        }
        assert!(blocked, "63-slot ring must fill");
        assert_eq!(r.drv.stats().tx_blocks, 1);
    }

    #[test]
    fn wiring_is_amortised_across_sends() {
        let mut r = rig();
        let mut asp = AddressSpace::new(4096);
        let region = asp.alloc_and_map(8192, &mut r.host.alloc).unwrap();
        let bufs = asp.translate(region.base, 8192).unwrap();
        let o1 = r.drv.send_pdu(
            SimTime::ZERO,
            &mut r.host,
            &mut r.tx,
            Vci(1),
            &bufs,
            Some((&mut asp, region.base, region.len)),
            None,
        );
        // Second send of the same (already wired) region starts from o1 time.
        let o2 = r.drv.send_pdu(
            o1.queued_at,
            &mut r.host,
            &mut r.tx,
            Vci(1),
            &bufs,
            Some((&mut asp, region.base, region.len)),
            None,
        );
        let d1 = o1.queued_at.since(SimTime::ZERO);
        let d2 = o2.queued_at.since(o1.queued_at);
        assert!(d2 < d1, "re-wiring must be free: {d1} vs {d2}");
    }

    /// End-to-end through the board: host A sends, board delivers to rx,
    /// driver drains, data intact.
    #[test]
    fn loopback_send_receive_roundtrip() {
        let mut r = rig();
        r.drv
            .provision_receive_buffers(SimTime::ZERO, &mut r.host, &mut r.rx, 8);
        // Place a message in memory.
        let msg: Vec<u8> = (0..5000u32).map(|i| (i % 253) as u8).collect();
        r.host.phys.write(PhysAddr(0x10_0000), &msg);
        let bufs = [PhysBuffer::new(PhysAddr(0x10_0000), 5000)];
        let out = r.drv.send_pdu(
            SimTime::ZERO,
            &mut r.host,
            &mut r.tx,
            Vci(7),
            &bufs,
            None,
            None,
        );
        let txo =
            r.tx.service(
                out.queued_at,
                &mut r.host.mem_sys,
                &r.host.phys,
                &mut r.link,
                &mut r.slab,
            )
            .expect("PDU queued");
        // Feed arrivals into the same host's rx half (loopback).
        let mut intr_at = None;
        for &(at, lane, cr) in &txo.arrivals {
            let o = r.rx.receive_cell_ref(
                at,
                lane,
                cr,
                &mut r.slab,
                &mut r.host.mem_sys,
                &mut r.host.cache,
                &mut r.host.phys,
            );
            if let Some(t) = o.interrupt_at {
                intr_at.get_or_insert(t);
            }
        }
        let t = interrupt_to_thread(intr_at.expect("one interrupt"), &mut r.host);
        let drained = r.drv.drain_receive(t, &mut r.host, &mut r.rx);
        assert_eq!(drained.delivered.len(), 1);
        let pdu = &drained.delivered[0];
        assert_eq!(pdu.len, 5000);
        assert_eq!(pdu.vci, Vci(7));
        // Verify delivered bytes.
        let d = &pdu.bufs[0];
        assert_eq!(r.host.phys.read(d.addr, 5000), &msg[..]);
        // Recycle returns the buffer to the free ring.
        let before = r.rx.free_ring(0).len();
        r.drv
            .recycle(drained.finished_at, &mut r.host, &mut r.rx, &pdu.bufs);
        assert_eq!(r.rx.free_ring(0).len(), before + 1);
    }

    #[test]
    fn eager_strategy_costs_more_than_lazy() {
        // Deliver the same PDU under both strategies; eager pays the
        // invalidation cycles.
        fn run(strategy: CacheStrategy) -> SimDuration {
            let mut r = rig();
            r.drv.cache_strategy = strategy;
            r.drv
                .provision_receive_buffers(SimTime::ZERO, &mut r.host, &mut r.rx, 8);
            let msg = vec![1u8; 16 * 1024 - 100];
            r.host.phys.write(PhysAddr(0x10_0000), &msg);
            let bufs = [PhysBuffer::new(PhysAddr(0x10_0000), msg.len() as u32)];
            let out = r.drv.send_pdu(
                SimTime::ZERO,
                &mut r.host,
                &mut r.tx,
                Vci(1),
                &bufs,
                None,
                None,
            );
            let txo =
                r.tx.service(
                    out.queued_at,
                    &mut r.host.mem_sys,
                    &r.host.phys,
                    &mut r.link,
                    &mut r.slab,
                )
                .unwrap();
            for &(at, lane, cr) in &txo.arrivals {
                r.rx.receive_cell_ref(
                    at,
                    lane,
                    cr,
                    &mut r.slab,
                    &mut r.host.mem_sys,
                    &mut r.host.cache,
                    &mut r.host.phys,
                );
            }
            let start = txo.finished_at + SimDuration::from_us(100);
            let o = r.drv.drain_receive(start, &mut r.host, &mut r.rx);
            o.finished_at.since(start)
        }
        let lazy = run(CacheStrategy::Lazy);
        let eager = run(CacheStrategy::Eager);
        // 16 KB = 4096 words ≈ 164 us of invalidation at 1 cycle/word.
        assert!(
            eager.as_ps() > lazy.as_ps() + SimDuration::from_us(100).as_ps(),
            "eager {eager} should exceed lazy {lazy} by the invalidate cost"
        );
    }

    #[test]
    fn board_flagged_crc_error_is_recycled_not_delivered() {
        let mut r = rig();
        r.drv
            .provision_receive_buffers(SimTime::ZERO, &mut r.host, &mut r.rx, 8);
        let msg = vec![5u8; 2000];
        r.host.phys.write(PhysAddr(0x10_0000), &msg);
        let bufs = [PhysBuffer::new(PhysAddr(0x10_0000), 2000)];
        let out = r.drv.send_pdu(
            SimTime::ZERO,
            &mut r.host,
            &mut r.tx,
            Vci(1),
            &bufs,
            None,
            None,
        );
        let txo =
            r.tx.service(
                out.queued_at,
                &mut r.host.mem_sys,
                &r.host.phys,
                &mut r.link,
                &mut r.slab,
            )
            .unwrap();
        let free_before = r.rx.free_ring(0).len();
        for (i, &(at, lane, cr)) in txo.arrivals.iter().enumerate() {
            if i == 1 {
                r.slab.get_mut(cr).corrupt_bit(3, 3);
            }
            r.rx.receive_cell_ref(
                at,
                lane,
                cr,
                &mut r.slab,
                &mut r.host.mem_sys,
                &mut r.host.cache,
                &mut r.host.phys,
            );
        }
        let o = r.drv.drain_receive(
            txo.finished_at + SimDuration::from_ms(1),
            &mut r.host,
            &mut r.rx,
        );
        assert!(o.delivered.is_empty());
        assert_eq!(r.drv.stats().err_pdus, 1);
        assert_eq!(r.rx.free_ring(0).len(), free_before, "buffer recycled");
    }

    #[test]
    fn pio_receive_is_slower_than_dma_path() {
        let mut host = HostMachine::boot(MachineSpec::ds5000_200(), 1);
        let t = pio_receive(SimTime::ZERO, &mut host, 16 * 1024);
        let mbps = t.since(SimTime::ZERO).mbps_for_bytes(16 * 1024);
        // 15 cycles/word PIO read ≈ 53 Mbps — far below even the
        // invalidation-penalised DMA path (§2.7).
        assert!(mbps < 60.0, "PIO {mbps} Mbps should be dismal");
    }
}
