//! Protection domains.
//!
//! Mach is a microkernel: "device drivers, network protocols, and
//! application software might all reside in different protection domains"
//! (§3.1), and the x-kernel lets the protocol graph span them. A domain
//! here is an address space plus an identity; crossing between domains
//! costs a trap (`SoftwareCosts::syscall`), which is exactly the cost
//! fbufs amortise and ADCs eliminate from the data path.

use osiris_mem::AddressSpace;

/// Domain identity (0 = the kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The kernel's domain.
    pub const KERNEL: DomainId = DomainId(0);

    /// True for the kernel domain.
    pub fn is_kernel(self) -> bool {
        self.0 == 0
    }
}

/// One protection domain.
#[derive(Debug)]
pub struct Domain {
    /// Identity.
    pub id: DomainId,
    /// The domain's address space.
    pub space: AddressSpace,
}

impl Domain {
    /// A fresh domain with an empty address space.
    pub fn new(id: DomainId, page_size: usize) -> Self {
        Domain {
            id,
            space: AddressSpace::new(page_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_identity() {
        assert!(DomainId::KERNEL.is_kernel());
        assert!(!DomainId(3).is_kernel());
    }

    #[test]
    fn domains_have_independent_spaces() {
        let mut mem = osiris_mem::PhysMemory::new(64 * 4096, 4096);
        let mut alloc =
            osiris_mem::FrameAllocator::new(&mem, osiris_mem::AllocPolicy::Sequential, 0);
        let mut a = Domain::new(DomainId(1), 4096);
        let mut b = Domain::new(DomainId(2), 4096);
        let ra = a.space.alloc_and_map(4096, &mut alloc).unwrap();
        let rb = b.space.alloc_and_map(4096, &mut alloc).unwrap();
        // Same virtual base (separate spaces), different frames.
        assert_eq!(ra.base, rb.base);
        let pa = a.space.translate_addr(ra.base).unwrap();
        let pb = b.space.translate_addr(rb.base).unwrap();
        assert_ne!(pa, pb);
        mem.write(pa, b"aa");
        mem.write(pb, b"bb");
        assert_eq!(mem.read(pa, 2), b"aa");
    }
}
