//! Threads and a priority scheduler.
//!
//! §3.1: "The threads that de-queue buffers from the various receive
//! queues may be assigned priorities corresponding to the traffic
//! priorities of the network stream they handle." This module supplies
//! that substrate: non-preemptive priority scheduling with FIFO order
//! inside a priority level, and a context-switch cost charged per
//! dispatch. (Non-preemptive is what Mach's kernel threads effectively
//! gave the drain path between its own blocking points; preemption would
//! only matter here at granularities below the driver's work items.)

use std::collections::{HashMap, VecDeque};

use osiris_sim::resource::Grant;
use osiris_sim::{SimDuration, SimTime};

use crate::machine::HostMachine;

/// Thread identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

/// Thread states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Waiting for a wake (e.g. the interrupt handler's signal).
    Blocked,
    /// In the run queue.
    Runnable,
    /// Currently dispatched.
    Running,
}

#[derive(Debug)]
struct Thread {
    name: &'static str,
    priority: u8,
    state: ThreadState,
    dispatches: u64,
}

/// A non-preemptive priority scheduler.
#[derive(Debug)]
pub struct Scheduler {
    threads: HashMap<ThreadId, Thread>,
    /// One FIFO per priority level (index = priority).
    queues: Vec<VecDeque<ThreadId>>,
    next_id: u32,
    ctx_switch: SimDuration,
    dispatches: u64,
}

impl Scheduler {
    /// A scheduler whose dispatches cost `ctx_switch` of CPU time.
    pub fn new(ctx_switch: SimDuration) -> Self {
        Scheduler {
            threads: HashMap::new(),
            queues: (0..=u8::MAX as usize).map(|_| VecDeque::new()).collect(),
            next_id: 1,
            ctx_switch,
            dispatches: 0,
        }
    }

    /// Creates a blocked thread.
    pub fn spawn(&mut self, name: &'static str, priority: u8) -> ThreadId {
        let id = ThreadId(self.next_id);
        self.next_id += 1;
        self.threads.insert(
            id,
            Thread {
                name,
                priority,
                state: ThreadState::Blocked,
                dispatches: 0,
            },
        );
        id
    }

    /// Current state of a thread.
    pub fn state(&self, id: ThreadId) -> ThreadState {
        self.threads[&id].state
    }

    /// Thread's diagnostic name.
    pub fn name(&self, id: ThreadId) -> &'static str {
        self.threads[&id].name
    }

    /// Times a thread has been dispatched.
    pub fn dispatches_of(&self, id: ThreadId) -> u64 {
        self.threads[&id].dispatches
    }

    /// Makes a thread runnable (idempotent: a second wake while runnable
    /// or running is absorbed, like a condition-variable signal).
    pub fn wake(&mut self, id: ThreadId) {
        let t = self.threads.get_mut(&id).expect("unknown thread");
        if t.state == ThreadState::Blocked {
            t.state = ThreadState::Runnable;
            self.queues[t.priority as usize].push_back(id);
        }
    }

    /// True if any thread is runnable.
    pub fn has_runnable(&self) -> bool {
        self.queues.iter().any(|q| !q.is_empty())
    }

    /// Picks the highest-priority runnable thread (FIFO within a level),
    /// charges the context switch on the CPU, and marks it running.
    /// Returns the thread and the grant covering the switch.
    pub fn dispatch(&mut self, now: SimTime, host: &mut HostMachine) -> Option<(ThreadId, Grant)> {
        let id = self.queues.iter_mut().rev().find_map(|q| q.pop_front())?;
        let t = self.threads.get_mut(&id).expect("queued thread exists");
        t.state = ThreadState::Running;
        t.dispatches += 1;
        self.dispatches += 1;
        let g = host.run_software(now, self.ctx_switch);
        Some((id, g))
    }

    /// The running thread goes back to sleep (its work item finished).
    pub fn block(&mut self, id: ThreadId) {
        let t = self.threads.get_mut(&id).expect("unknown thread");
        assert_eq!(
            t.state,
            ThreadState::Running,
            "only the running thread blocks"
        );
        t.state = ThreadState::Blocked;
    }

    /// Total dispatches (diagnostics).
    pub fn total_dispatches(&self) -> u64 {
        self.dispatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    fn host() -> HostMachine {
        HostMachine::boot(MachineSpec::ds5000_200(), 1)
    }

    #[test]
    fn higher_priority_runs_first() {
        let mut s = Scheduler::new(SimDuration::from_us(14));
        let lo = s.spawn("lo", 1);
        let hi = s.spawn("hi", 7);
        let mut h = host();
        s.wake(lo);
        s.wake(hi);
        let (first, _) = s.dispatch(SimTime::ZERO, &mut h).unwrap();
        assert_eq!(first, hi);
        s.block(hi);
        let (second, _) = s.dispatch(SimTime::ZERO, &mut h).unwrap();
        assert_eq!(second, lo);
        assert_eq!(s.name(first), "hi");
    }

    #[test]
    fn fifo_within_a_priority_level() {
        let mut s = Scheduler::new(SimDuration::from_us(1));
        let a = s.spawn("a", 3);
        let b = s.spawn("b", 3);
        let c = s.spawn("c", 3);
        let mut h = host();
        for id in [b, a, c] {
            s.wake(id);
        }
        let order: Vec<ThreadId> = (0..3)
            .map(|_| {
                let (id, _) = s.dispatch(SimTime::ZERO, &mut h).unwrap();
                s.block(id);
                id
            })
            .collect();
        assert_eq!(order, vec![b, a, c]);
    }

    #[test]
    fn wake_is_idempotent() {
        let mut s = Scheduler::new(SimDuration::from_us(1));
        let t = s.spawn("t", 0);
        let mut h = host();
        s.wake(t);
        s.wake(t); // absorbed
        assert!(s.dispatch(SimTime::ZERO, &mut h).is_some());
        s.block(t);
        assert!(s.dispatch(SimTime::ZERO, &mut h).is_none(), "no ghost wake");
    }

    #[test]
    fn dispatch_charges_the_cpu() {
        let mut s = Scheduler::new(SimDuration::from_us(14));
        let t = s.spawn("t", 0);
        let mut h = host();
        s.wake(t);
        let (_, g) = s.dispatch(SimTime::ZERO, &mut h).unwrap();
        assert_eq!(g.finish.since(g.start), SimDuration::from_us(14));
        assert_eq!(s.total_dispatches(), 1);
        assert_eq!(s.dispatches_of(t), 1);
    }

    #[test]
    fn empty_scheduler_dispatches_nothing() {
        let mut s = Scheduler::new(SimDuration::from_us(1));
        let mut h = host();
        assert!(!s.has_runnable());
        assert!(s.dispatch(SimTime::ZERO, &mut h).is_none());
    }

    #[test]
    #[should_panic(expected = "only the running thread blocks")]
    fn blocking_a_blocked_thread_is_a_bug() {
        let mut s = Scheduler::new(SimDuration::from_us(1));
        let t = s.spawn("t", 0);
        s.block(t);
    }
}
