//! Machine models and CPU cost accounting.
//!
//! Two machines carry the paper's evaluation (§4):
//!
//! * **DECstation 5000/200** — 25 MHz MIPS R3000, 64 KB direct-mapped
//!   write-through data cache with *no* DMA coherence, and a memory system
//!   in which "all memory transactions occupy the TURBOchannel and no part
//!   of a DMA transaction can overlap with the CPU accessing main memory".
//! * **DEC 3000/600** — 175 MHz Alpha, buffered crossbar ("allows
//!   cache/memory transactions to occur concurrently with DMA transfers"),
//!   DMA writes update the cache.
//!
//! Software costs are calibrated against the numbers the paper publishes:
//! 75 µs interrupt service and ~200 µs UDP/IP PDU service on the 5000/200
//! (§2.1.2), with the Alpha's fixed costs scaled to reproduce Table 1's
//! measured ratios. Every constant lives here, in one place, so the
//! benches in EXPERIMENTS.md can cite them.

use osiris_mem::{
    AllocPolicy, BusSpec, CacheSpec, DataCache, FrameAllocator, MemorySystem, PhysAddr, PhysMemory,
};
use osiris_sim::obs::{Counter, Probe};
use osiris_sim::resource::Grant;
use osiris_sim::{Clock, FifoResource, SimDuration, SimTime};

/// Calibrated software path costs for one machine.
#[derive(Debug, Clone, Copy)]
pub struct SoftwareCosts {
    /// Fielding one board interrupt (paper: 75 µs on the 5000/200).
    pub interrupt_service: SimDuration,
    /// Scheduling the driver thread signalled by the handler.
    pub thread_dispatch: SimDuration,
    /// Per-PDU driver bookkeeping (either direction).
    pub driver_pdu: SimDuration,
    /// Per-physical-buffer driver work — the §2.2 cost that buffer
    /// fragmentation multiplies.
    pub driver_buffer: SimDuration,
    /// IP input/output processing per packet (checksum-free fixed path).
    pub ip_fixed: SimDuration,
    /// UDP input/output processing per packet (excluding data checksum).
    pub udp_fixed: SimDuration,
    /// Test-program work per message (generate/consume bookkeeping).
    pub app_fixed: SimDuration,
    /// One protection-domain crossing (trap + return).
    pub syscall: SimDuration,
    /// CPU cycles per 32-bit word of checksum arithmetic (memory traffic
    /// is charged separately through the cache model).
    pub checksum_cycles_per_word: u64,
    /// CPU cycles per word of explicit cache invalidation. The paper says
    /// ~1 cycle per word *plus* "the cost of subsequent cache misses caused
    /// by the invalidation of unrelated cached data"; the effective figure
    /// folds those misses in.
    pub invalidate_cycles_per_word: u64,
    /// Fraction of fixed software costs that is memory traffic. On a
    /// shared-bus machine this traffic occupies the TURBOchannel and
    /// steals DMA bandwidth (§4: "memory writes and cache fills that
    /// result from CPU activity reduce DMA performance").
    pub sw_mem_fraction: f64,
}

/// A machine: clock, bus/memory topology, cache geometry, software costs.
#[derive(Debug, Clone, Copy)]
pub struct MachineSpec {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// CPU clock.
    pub cpu_clock: Clock,
    /// Bus and memory-system constants.
    pub bus: BusSpec,
    /// Data-cache geometry and coherence.
    pub cache: CacheSpec,
    /// Calibrated software costs.
    pub costs: SoftwareCosts,
    /// VM page size.
    pub page_size: usize,
    /// Physical memory size for simulations.
    pub mem_bytes: usize,
}

impl MachineSpec {
    /// The DECstation 5000/200 (25 MHz R3000).
    pub fn ds5000_200() -> Self {
        MachineSpec {
            name: "DEC 5000/200",
            cpu_clock: Clock::from_mhz(25),
            bus: BusSpec::ds5000_200(),
            cache: CacheSpec::decstation_5000_200(),
            costs: SoftwareCosts {
                interrupt_service: SimDuration::from_us(75),
                thread_dispatch: SimDuration::from_us(14),
                driver_pdu: SimDuration::from_us(16),
                driver_buffer: SimDuration::from_us(7),
                ip_fixed: SimDuration::from_us(36),
                udp_fixed: SimDuration::from_us(26),
                app_fixed: SimDuration::from_us(10),
                syscall: SimDuration::from_us(20),
                checksum_cycles_per_word: 3,
                invalidate_cycles_per_word: 1,
                sw_mem_fraction: 0.35,
            },
            page_size: 4096,
            mem_bytes: 32 << 20,
        }
    }

    /// The DEC 3000/600 (175 MHz Alpha).
    pub fn dec3000_600() -> Self {
        MachineSpec {
            name: "DEC 3000/600",
            cpu_clock: Clock::from_mhz(175),
            bus: BusSpec::dec3000_600(),
            cache: CacheSpec::dec_3000_600(),
            costs: SoftwareCosts {
                interrupt_service: SimDuration::from_us(30),
                thread_dispatch: SimDuration::from_us(6),
                driver_pdu: SimDuration::from_us(8),
                driver_buffer: SimDuration::from_us(3),
                ip_fixed: SimDuration::from_us(22),
                udp_fixed: SimDuration::from_us(15),
                app_fixed: SimDuration::from_us(4),
                syscall: SimDuration::from_us(8),
                checksum_cycles_per_word: 2,
                invalidate_cycles_per_word: 1,
                sw_mem_fraction: 0.25,
            },
            page_size: 4096,
            mem_bytes: 64 << 20,
        }
    }
}

/// The live CPU / cache / memory complex of one host.
#[derive(Debug)]
pub struct HostMachine {
    /// The machine's constants.
    pub spec: MachineSpec,
    /// Bus + memory-port arbitration.
    pub mem_sys: MemorySystem,
    /// Data cache (with real line contents).
    pub cache: DataCache,
    /// Physical memory (with real byte contents).
    pub phys: PhysMemory,
    /// Page-frame allocator (scattered policy: steady-state fragmentation).
    pub alloc: FrameAllocator,
    /// The CPU as a serially shared resource.
    pub cpu: FifoResource,
    interrupts_taken: Counter,
    invalidated_words: Counter,
}

/// Result of a CPU read through the cache: when it finished and how many
/// bytes came back stale (served from lines DMA had silently bypassed).
#[derive(Debug, Clone, Copy)]
pub struct ReadResult {
    /// Completion grant on the CPU.
    pub grant: Grant,
    /// Bytes whose cached copy disagreed with memory.
    pub stale_bytes: u64,
}

impl HostMachine {
    /// Boots a machine: zeroed memory, cold cache, fragmented allocator,
    /// detached counters (standalone use).
    pub fn boot(spec: MachineSpec, alloc_seed: u64) -> Self {
        HostMachine::boot_with_probe(spec, alloc_seed, &Probe::detached())
    }

    /// Boots a machine whose memory system publishes under `<scope>.bus`
    /// and whose own counters publish under `<scope>.host`.
    pub fn boot_with_probe(spec: MachineSpec, alloc_seed: u64, probe: &Probe) -> Self {
        let phys = PhysMemory::new(spec.mem_bytes, spec.page_size);
        let alloc = FrameAllocator::new(&phys, AllocPolicy::Scattered, alloc_seed);
        let p = probe.scoped("host");
        HostMachine {
            mem_sys: MemorySystem::with_probe(spec.bus, probe),
            cache: DataCache::new(spec.cache),
            phys,
            alloc,
            cpu: FifoResource::new("host-cpu"),
            interrupts_taken: p.counter("interrupts_taken"),
            invalidated_words: p.counter("invalidated_words"),
            spec,
        }
    }

    /// Runs `d` of software on the CPU (FIFO with everything else).
    pub fn run_cpu(&mut self, now: SimTime, d: SimDuration) -> Grant {
        self.cpu.acquire(now, d)
    }

    /// Runs `cycles` CPU cycles.
    pub fn run_cycles(&mut self, now: SimTime, cycles: u64) -> Grant {
        self.run_cpu(now, self.spec.cpu_clock.cycles(cycles))
    }

    /// Runs `d` of *software* — CPU time of which `sw_mem_fraction` is
    /// memory traffic that additionally occupies the memory path (and
    /// therefore, on a shared-bus machine, delays DMA).
    pub fn run_software(&mut self, now: SimTime, d: SimDuration) -> Grant {
        let g = self.cpu.acquire(now, d);
        let mem_ps = (d.as_ps() as f64 * self.spec.costs.sw_mem_fraction) as u64;
        if mem_ps > 0 {
            // The traffic lands on the bus over the same interval; model
            // it as one reservation of the aggregate duration.
            let m = match self.spec.bus.topology {
                osiris_mem::MemTopology::SharedBus => Some(
                    self.mem_sys
                        .pio_like_mem(g.start, SimDuration::from_ps(mem_ps)),
                ),
                osiris_mem::MemTopology::Crossbar => None,
            };
            if let Some(mg) = m {
                return Grant {
                    start: g.start,
                    finish: g.finish.max(mg.finish),
                };
            }
        }
        g
    }

    /// Fields one board interrupt: charges the handler cost and counts it.
    pub fn take_interrupt(&mut self, now: SimTime) -> Grant {
        self.interrupts_taken.incr();
        self.run_software(now, self.spec.costs.interrupt_service)
    }

    /// Interrupts fielded so far.
    pub fn interrupts_taken(&self) -> u64 {
        self.interrupts_taken.get()
    }

    /// CPU read of `buf.len()` bytes at `addr` through the cache, charging
    /// hit cycles on the CPU and line fills on the memory system. Returns
    /// the (possibly stale!) bytes in `buf`.
    pub fn cpu_read(&mut self, now: SimTime, addr: PhysAddr, buf: &mut [u8]) -> ReadResult {
        let access = self.cache.read(&self.phys, addr, buf);
        // Hit bytes cost ~1 cycle per word on the CPU.
        let hit_words = access.hit_bytes.div_ceil(4);
        let cpu_grant = self.run_cycles(now, hit_words.max(1));
        // Misses are line fills on the memory path (bus on the 5000/200).
        let line = self.spec.cache.line_size as u64;
        let finish = if access.missed_lines > 0 {
            let g = self.mem_sys.cpu_mem_burst(now, access.missed_lines, line);
            g.finish.max(cpu_grant.finish)
        } else {
            cpu_grant.finish
        };
        ReadResult {
            grant: Grant {
                start: cpu_grant.start,
                finish,
            },
            stale_bytes: access.stale_bytes,
        }
    }

    /// CPU write of `data` at `addr`: write-through traffic on the memory
    /// path plus a cycle per word on the CPU.
    pub fn cpu_write(&mut self, now: SimTime, addr: PhysAddr, data: &[u8]) -> Grant {
        self.cache.write(&mut self.phys, addr, data);
        let words = (data.len() as u64).div_ceil(4);
        let cpu_grant = self.run_cycles(now, words.max(1));
        // Write-through: one memory transaction per small burst; model as
        // a single burst of `words` words (write buffers coalesce).
        let g = self.mem_sys.cpu_mem_access(now, words * 4);
        Grant {
            start: cpu_grant.start,
            finish: cpu_grant.finish.max(g.finish),
        }
    }

    /// Computes the Internet checksum of `len` bytes at `addr` **through
    /// the cache**: arithmetic cycles on the CPU, fills on the memory path,
    /// and — on an incoherent machine — possibly stale summands. Returns
    /// the completion time, the checksum over what the CPU actually saw,
    /// and the stale byte count.
    pub fn checksum(&mut self, now: SimTime, addr: PhysAddr, len: usize) -> (Grant, u16, u64) {
        let mut buf = vec![0u8; len];
        let rr = self.cpu_read(now, addr, &mut buf);
        let words = (len as u64).div_ceil(4);
        let arith = self.run_cpu(
            rr.grant.finish,
            self.spec
                .cpu_clock
                .cycles(words * self.spec.costs.checksum_cycles_per_word),
        );
        (
            Grant {
                start: rr.grant.start,
                finish: arith.finish,
            },
            internet_checksum(&buf),
            rr.stale_bytes,
        )
    }

    /// Explicitly invalidates `[addr, addr+len)`: the §2.3 cost of one CPU
    /// cycle per word.
    pub fn invalidate_cache(&mut self, now: SimTime, addr: PhysAddr, len: usize) -> Grant {
        let words = self.cache.invalidate(addr, len);
        self.invalidated_words.add(words);
        self.run_cycles(now, words * self.spec.costs.invalidate_cycles_per_word)
    }
}

/// The Internet one's-complement checksum (RFC 1071) over a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_reflect_the_paper() {
        let ds = MachineSpec::ds5000_200();
        assert_eq!(ds.costs.interrupt_service, SimDuration::from_us(75));
        assert!(!ds.cache.coherent_dma);
        let alpha = MachineSpec::dec3000_600();
        assert!(alpha.cache.coherent_dma);
        assert!(alpha.costs.interrupt_service < ds.costs.interrupt_service);
    }

    #[test]
    fn interrupt_charges_cpu() {
        let mut h = HostMachine::boot(MachineSpec::ds5000_200(), 1);
        let g = h.take_interrupt(SimTime::ZERO);
        assert_eq!(g.finish, SimTime::from_us(75));
        assert_eq!(h.interrupts_taken(), 1);
        // A second interrupt queues behind the first on the CPU.
        let g2 = h.take_interrupt(SimTime::from_us(10));
        assert_eq!(g2.start, SimTime::from_us(75));
    }

    #[test]
    fn cpu_read_charges_fills_then_hits() {
        let mut h = HostMachine::boot(MachineSpec::ds5000_200(), 1);
        h.phys.write(PhysAddr(0x1000), &[9u8; 256]);
        let mut buf = [0u8; 256];
        let cold = h.cpu_read(SimTime::ZERO, PhysAddr(0x1000), &mut buf);
        assert_eq!(buf, [9u8; 256]);
        let warm = h.cpu_read(cold.grant.finish, PhysAddr(0x1000), &mut buf);
        let cold_t = cold.grant.finish.since(cold.grant.start);
        let warm_t = warm.grant.finish.since(warm.grant.start);
        assert!(
            warm_t < cold_t,
            "cached read must be faster: {warm_t} vs {cold_t}"
        );
    }

    #[test]
    fn ds5000_checksum_rate_is_about_80_mbps() {
        // §4: "the maximal throughput decreases to 80 Mbps" when the CPU
        // reads (checksums) the data on the 5000/200.
        let mut h = HostMachine::boot(MachineSpec::ds5000_200(), 1);
        let len = 64 * 1024;
        let (g, _ck, _stale) = h.checksum(SimTime::ZERO, PhysAddr(0), len);
        let mbps = g.finish.since(g.start).mbps_for_bytes(len as u64);
        assert!(
            (60.0..120.0).contains(&mbps),
            "checksum rate {mbps} Mbps out of band"
        );
    }

    #[test]
    fn alpha_checksum_is_much_faster() {
        let mut ds = HostMachine::boot(MachineSpec::ds5000_200(), 1);
        let mut ax = HostMachine::boot(MachineSpec::dec3000_600(), 1);
        let len = 64 * 1024;
        let (g1, _, _) = ds.checksum(SimTime::ZERO, PhysAddr(0), len);
        let (g2, _, _) = ax.checksum(SimTime::ZERO, PhysAddr(0), len);
        let r1 = g1.finish.since(g1.start).mbps_for_bytes(len as u64);
        let r2 = g2.finish.since(g2.start).mbps_for_bytes(len as u64);
        assert!(r2 > 3.0 * r1, "Alpha {r2} should dwarf DS {r1}");
    }

    #[test]
    fn stale_read_detected_and_recovered_via_invalidate() {
        let mut h = HostMachine::boot(MachineSpec::ds5000_200(), 1);
        h.phys.write(PhysAddr(0x2000), &[1u8; 64]);
        let mut buf = [0u8; 64];
        let t0 = h
            .cpu_read(SimTime::ZERO, PhysAddr(0x2000), &mut buf)
            .grant
            .finish;
        // Incoherent DMA overwrites memory behind the cache's back.
        let data = [2u8; 64];
        h.cache.dma_write(&mut h.phys, PhysAddr(0x2000), &data);
        let rr = h.cpu_read(t0, PhysAddr(0x2000), &mut buf);
        assert!(rr.stale_bytes > 0, "must read stale bytes");
        assert_eq!(buf, [1u8; 64], "stale contents are the OLD bytes");
        // Lazy recovery: invalidate, re-read.
        let g = h.invalidate_cache(rr.grant.finish, PhysAddr(0x2000), 64);
        let rr2 = h.cpu_read(g.finish, PhysAddr(0x2000), &mut buf);
        assert_eq!(rr2.stale_bytes, 0);
        assert_eq!(buf, [2u8; 64]);
    }

    #[test]
    fn internet_checksum_vectors() {
        // RFC 1071 example: 0001 f203 f4f5 f6f7 → sum 0xddf2, cksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
        // Odd length pads with zero.
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn checksum_sees_stale_data_on_incoherent_machine() {
        let mut h = HostMachine::boot(MachineSpec::ds5000_200(), 1);
        h.phys.write(PhysAddr(0x3000), &[0xAAu8; 128]);
        let mut buf = [0u8; 128];
        let t = h
            .cpu_read(SimTime::ZERO, PhysAddr(0x3000), &mut buf)
            .grant
            .finish;
        let (_, ck_before, _) = h.checksum(t, PhysAddr(0x3000), 128);
        h.cache
            .dma_write(&mut h.phys, PhysAddr(0x3000), &[0x55u8; 128]);
        let (_, ck_stale, stale) = h.checksum(t, PhysAddr(0x3000), 128);
        assert_eq!(ck_stale, ck_before, "checksum computed over stale bytes");
        assert!(stale > 0);
        let truth = internet_checksum(&[0x55u8; 128]);
        assert_ne!(ck_stale, truth);
    }

    #[test]
    fn writes_land_in_memory_and_cache() {
        let mut h = HostMachine::boot(MachineSpec::dec3000_600(), 1);
        h.cpu_write(SimTime::ZERO, PhysAddr(0x4000), b"net");
        assert_eq!(h.phys.read(PhysAddr(0x4000), 3), b"net");
    }
}
