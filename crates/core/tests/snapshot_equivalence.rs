//! The engine-swap invariant, end to end: a full testbed run produces a
//! **byte-identical** registry snapshot whether events flow through the
//! binary heap or the calendar queue. The queue's `(time, seq)` FIFO
//! contract fixes the pop order, so the backends may only differ in
//! wall-clock — never in simulated results.
//!
//! This is the system-level companion to the pop-by-pop property test in
//! `crates/sim/tests/queue_equivalence.rs`: that one proves the queues
//! agree in isolation; this one proves the whole dispatcher — slab cell
//! arena, interned timeline keys, striped links, reassembly, metering —
//! observes no difference either.

use osiris::config::TestbedConfig;
use osiris::sim::QueueKind;
use osiris::Scenario;

/// Runs the quick receive bench to completion under `kind` and returns
/// the rendered registry snapshot plus the raw snapshot for counter
/// checks. The `engine.queue.*` internals keys (calendar resizes and
/// bucket high water) are the backends' *own* mechanics — the calendar
/// reports real values, the heap registers zeros for key parity — so
/// they are stripped before the byte comparison: everything else must
/// match exactly.
fn run(kind: QueueKind) -> (String, osiris::sim::Snapshot) {
    let mut cfg = TestbedConfig::ds5000_200_udp();
    cfg.msg_size = 16 * 1024;
    cfg.messages = 8;
    cfg.warmup = 2;
    cfg.sim.queue = kind;
    let mut sim = Scenario::RxBench.launch(cfg);
    while !sim.model.done && sim.step() {}
    assert!(sim.model.done, "rx bench did not complete under {kind:?}");
    assert_eq!(
        sim.model.verify_failures, 0,
        "payload verify under {kind:?}"
    );
    let snap = sim.model.snapshot();
    let mut semantic = snap.clone();
    semantic
        .counters
        .retain(|k, _| !k.starts_with("engine.queue."));
    semantic
        .gauges
        .retain(|k, _| !k.starts_with("engine.queue."));
    (semantic.to_json().render_pretty(), snap)
}

#[test]
fn heap_and_calendar_snapshots_are_byte_identical() {
    let (heap_json, _) = run(QueueKind::Heap);
    let (cal_json, cal) = run(QueueKind::Calendar);
    assert_eq!(
        heap_json, cal_json,
        "registry snapshots diverged between queue backends"
    );
    // The slab arena is live on this path: cells were recycled through
    // the free list, not leaked and reallocated.
    assert!(
        cal.counter("cells.slab_recycled") > 0,
        "expected slab recycling on the receive path"
    );
    // And every pushed event was accounted for by both backends alike.
    assert!(cal.counter("engine.events.scheduled") > 0);
}
