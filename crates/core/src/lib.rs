//! # osiris — the OSIRIS reproduction facade
//!
//! Everything the paper's evaluation (§4) needs, behind one API:
//!
//! * [`config::TestbedConfig`] — every knob the paper turns: machine
//!   generation, protocol layer, DMA transfer length, cache strategy,
//!   interrupt policy, reassembly strategy, link skew, UDP checksumming,
//!   data path (in-kernel / user-via-kernel / application device channel).
//! * [`node::HostNode`] — one complete host (CPU + cache + TURBOchannel,
//!   kernel driver, UDP/IP stack, both OSIRIS board halves), addressed
//!   by a typed [`node::NodeId`].
//! * [`fabric`] — cell transport between nodes: back-to-back striped
//!   links ([`fabric::BackToBack`]) or an output-queued AURORA switch
//!   routing by VCI ([`fabric::SwitchedFabric`]).
//! * [`scenario::Scenario`] — declarative topology + workload (`Pair`,
//!   `RxBench`, `TxBench`, `Incast`, `FanOut`) that assembles and seeds
//!   a testbed.
//! * [`testbed::Testbed`] — the discrete-event dispatcher over nodes and
//!   the fabric.
//! * [`experiments`] — the canned experiment runners that regenerate
//!   Table 1 and Figures 2–4, plus the "lessons" micro-experiments
//!   (interrupt suppression, DMA ceilings, PIO vs DMA, buffer
//!   fragmentation, skew, lock-free vs locked queues, fbufs).
//! * [`report`] — paper-style text rendering used by the bench binaries.
//!
//! ## Quickstart
//!
//! ```
//! use osiris::config::TestbedConfig;
//! use osiris::experiments;
//!
//! // Round-trip latency of 1024-byte messages over UDP/IP on a pair of
//! // DECstation 5000/200s (Table 1, row 2 column 2).
//! let mut cfg = TestbedConfig::ds5000_200_udp();
//! cfg.msg_size = 1024;
//! cfg.messages = 8;
//! let lat = experiments::round_trip_latency(&cfg);
//! assert!(lat.mean_us() > 100.0 && lat.mean_us() < 2000.0);
//! ```

pub mod config;
pub mod experiments;
pub mod fabric;
pub mod node;
pub mod report;
pub mod scenario;
pub mod shard;
pub mod telemetry;
pub mod testbed;

pub use config::{DataPath, Layer, TestbedConfig};
pub use experiments::{
    incast_throughput, receive_throughput, round_trip_latency, transmit_throughput, IncastReport,
    RxThroughputReport,
};
pub use fabric::{BackToBack, Delivery, Fabric, SwitchedFabric};
pub use node::{HostNode, NodeId, Role};
pub use scenario::Scenario;
pub use shard::{RunOutcome, ShardStats};
pub use telemetry::{run_sampled, Sampler};
pub use testbed::Testbed;

// Re-export the substrate crates so downstream users need one dependency.
pub use osiris_adc as adc;
pub use osiris_atm as atm;
pub use osiris_board as board;
pub use osiris_fbuf as fbuf;
pub use osiris_host as host;
pub use osiris_mem as mem;
pub use osiris_proto as proto;
pub use osiris_sim as sim;
