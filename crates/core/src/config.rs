//! Experiment configuration — every knob the paper turns.

use osiris_atm::sar::ReassemblyMode;
use osiris_atm::stripe::SkewConfig;
use osiris_board::dma::DmaMode;
use osiris_board::interrupt::InterruptPolicy;
use osiris_host::driver::CacheStrategy;
use osiris_host::machine::MachineSpec;
use osiris_host::wiring::WiringMode;
use osiris_proto::wire::IP_HEADER_BYTES;
use osiris_sim::{SimConfig, SimDuration};

/// Which protocol layer the test programs sit on (§4: the "ATM" rows talk
/// straight to the driver; the "UDP/IP" rows run the full stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Test programs configured directly on top of the OSIRIS driver.
    RawAtm,
    /// Test programs on top of the UDP/IP stack.
    UdpIp,
}

/// Where the application lives relative to the kernel (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPath {
    /// Test programs linked into the kernel (the paper's §4 baseline).
    Kernel,
    /// A user process going through the kernel: two domain crossings per
    /// message on the data path.
    UserViaKernel,
    /// A user process with an application device channel: direct queue
    /// access, no crossings on the data path.
    Adc,
}

/// Whether the application touches message data (per-message CPU cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchMode {
    /// Reuse a prepared buffer (steady-state throughput tests).
    None,
    /// Write the message contents before each send (latency test
    /// programs construct each message; on the 5000/200 every word is
    /// write-through bus traffic).
    WritePerMessage,
}

/// Full testbed configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Machine model for every host in the testbed.
    pub machine: MachineSpec,
    /// Protocol layer.
    pub layer: Layer,
    /// Application message size in bytes.
    pub msg_size: u64,
    /// Messages to exchange (pings for latency, stream length for
    /// throughput).
    pub messages: u64,
    /// Deliveries discarded before the throughput window opens.
    pub warmup: u64,
    /// DMA transfer-length rule, transmit direction.
    pub tx_dma: DmaMode,
    /// DMA transfer-length rule, receive direction.
    pub rx_dma: DmaMode,
    /// Cache strategy in the receive driver (§2.3).
    pub cache_strategy: CacheStrategy,
    /// Page-wiring service (§2.4).
    pub wiring: WiringMode,
    /// Receive interrupt policy (§2.1.2).
    pub interrupt_policy: InterruptPolicy,
    /// Reassembly strategy (§2.6).
    pub reassembly: ReassemblyMode,
    /// Link skew and fault injection.
    pub skew: SkewConfig,
    /// UDP data checksumming.
    pub udp_checksum: bool,
    /// IP MTU (fragment size including the IP header).
    pub mtu: u32,
    /// Receive buffer size the driver provisions.
    pub buffer_bytes: u32,
    /// Number of receive buffers provisioned per host (must not exceed
    /// the 63-entry free ring).
    pub rx_buffers: usize,
    /// Application placement.
    pub data_path: DataPath,
    /// Route the pair's cells through the AURORA switch model instead of
    /// back-to-back links (ablation; incast/fan-out scenarios always
    /// use the switch).
    pub switched_fabric: bool,
    /// Experiment seed (frame-allocator fragmentation, skew jitter).
    pub seed: u64,
    /// Verify delivered payloads against the sent pattern.
    pub verify_data: bool,
    /// Application data-touch behaviour.
    pub touch: TouchMode,
    /// Byte offset of message data within its first page. §2.2: "the data
    /// portion is typically not aligned with page boundaries", so an
    /// n-page payload usually occupies n+1 physical buffers plus one for
    /// the header.
    pub data_offset: u64,
    /// Opt-in reliable mode on the UDP/IP layer: datagrams are held,
    /// acked by the receiver, and retransmitted with exponential backoff
    /// until acknowledged (loss-sweep experiments; the paper's stack is
    /// plain UDP, so this defaults off).
    pub reliable: bool,
    /// Per-VCI reassembly timeout on the receive board: a partial PDU
    /// whose first cell is older than this is reaped, its physical
    /// buffers reclaimed, and the VCI unwedged (`None` = never, the
    /// paper's behaviour).
    pub reassembly_timeout: Option<SimDuration>,
    /// Simulation-kernel observability sizing (trace ring, timeline).
    pub sim: SimConfig,
}

impl TestbedConfig {
    /// The paper's §4 baseline on a DECstation 5000/200 pair: UDP/IP,
    /// 16 KB page-aligned MTU, checksum off, single-cell DMA, lazy cache
    /// invalidation, transition interrupts, no skew, kernel test programs.
    pub fn ds5000_200_udp() -> Self {
        TestbedConfig {
            machine: MachineSpec::ds5000_200(),
            layer: Layer::UdpIp,
            msg_size: 1024,
            messages: 16,
            warmup: 2,
            tx_dma: DmaMode::SingleCell,
            rx_dma: DmaMode::SingleCell,
            cache_strategy: CacheStrategy::Lazy,
            wiring: WiringMode::LowLevel,
            interrupt_policy: InterruptPolicy::OnTransition,
            reassembly: ReassemblyMode::InOrder,
            skew: SkewConfig::none(),
            udp_checksum: false,
            // 16 KB of data per fragment: page-aligned rule (§2.2).
            mtu: 16 * 1024 + IP_HEADER_BYTES as u32,
            // "16 KB buffers", with one extra cache line so a fragment
            // (data + headers) fits a single buffer; see DESIGN.md.
            buffer_bytes: 16 * 1024 + 64,
            rx_buffers: 48,
            data_path: DataPath::Kernel,
            switched_fabric: false,
            seed: 42,
            verify_data: true,
            touch: TouchMode::None,
            data_offset: 2048,
            reliable: false,
            reassembly_timeout: None,
            sim: SimConfig::default(),
        }
    }

    /// The same baseline on the raw-ATM layer (Table 1's "ATM" rows).
    pub fn ds5000_200_atm() -> Self {
        TestbedConfig {
            layer: Layer::RawAtm,
            ..Self::ds5000_200_udp()
        }
    }

    /// The DEC 3000/600 baseline: coherent cache, crossbar memory.
    pub fn dec3000_600_udp() -> Self {
        TestbedConfig {
            machine: MachineSpec::dec3000_600(),
            cache_strategy: CacheStrategy::HardwareCoherent,
            ..Self::ds5000_200_udp()
        }
    }

    /// DEC 3000/600 on the raw-ATM layer.
    pub fn dec3000_600_atm() -> Self {
        TestbedConfig {
            layer: Layer::RawAtm,
            ..Self::dec3000_600_udp()
        }
    }

    /// Cells per message at the configured sizes (diagnostic).
    pub fn cells_per_message(&self) -> u64 {
        let overhead = match self.layer {
            Layer::RawAtm => 0,
            Layer::UdpIp => 36, // UDP + one IP header for small messages
        };
        (self.msg_size + overhead).div_ceil(44)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_they_should() {
        let ds = TestbedConfig::ds5000_200_udp();
        let ax = TestbedConfig::dec3000_600_udp();
        assert_eq!(ds.machine.name, "DEC 5000/200");
        assert_eq!(ax.machine.name, "DEC 3000/600");
        assert_eq!(ds.cache_strategy, CacheStrategy::Lazy);
        assert_eq!(ax.cache_strategy, CacheStrategy::HardwareCoherent);
        assert_eq!(TestbedConfig::ds5000_200_atm().layer, Layer::RawAtm);
    }

    #[test]
    fn mtu_is_page_aligned() {
        let cfg = TestbedConfig::ds5000_200_udp();
        assert_eq!((cfg.mtu as usize - IP_HEADER_BYTES) % 4096, 0);
    }

    #[test]
    fn rx_buffers_fit_the_free_ring() {
        let cfg = TestbedConfig::ds5000_200_udp();
        assert!(cfg.rx_buffers as u32 <= 63);
    }
}
