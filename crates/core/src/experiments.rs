//! Canned experiment runners for every table and figure in §4, plus the
//! "lessons" micro-experiments of §2 and §3. Each returns structured
//! results; `osiris-bench` renders them in the paper's format.

use osiris_atm::sar::ReassemblyMode;
use osiris_board::dma::DmaMode;
use osiris_host::machine::MachineSpec;
use osiris_mem::BusSpec;
use osiris_proto::wire::{IP_HEADER_BYTES, UDP_HEADER_BYTES};
use osiris_sim::stats::{LatencyStats, ThroughputMeter};
use osiris_sim::{CriticalPath, FaultPlan, HistSummary, SimDuration, SimTime, Stage};

use crate::config::{Layer, TestbedConfig};
use crate::scenario::Scenario;
use crate::testbed::Testbed;

/// Hard wall for runaway simulations (virtual time).
const DEADLINE: SimTime = SimTime::from_secs(30);

/// Table 1: round-trip latency between two test programs.
pub fn round_trip_latency(cfg: &TestbedConfig) -> LatencyStats {
    let mut sim = Scenario::Pair.launch(cfg.clone());
    loop {
        if sim.model.done || sim.now() > DEADLINE {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    assert!(sim.model.done, "latency experiment did not complete");
    assert_eq!(sim.model.verify_failures, 0, "payload corruption");
    sim.model.latency.clone()
}

/// The receive-side result bundle (Figures 2 and 3).
#[derive(Debug, Clone, Copy)]
pub struct RxThroughputReport {
    /// Sustained delivered-data throughput.
    pub mbps: f64,
    /// Interrupts taken per delivered PDU (§2.1.2's figure of merit).
    pub interrupts_per_pdu: f64,
    /// Double-cell merges per cell (≈ 0.5 means full pairing).
    pub merge_ratio: f64,
    /// PDUs shed on the board for lack of buffers.
    pub dropped_pdus: u64,
}

/// Figures 2 and 3: receive-side throughput with the receive processor
/// generating fictitious PDUs as fast as the host absorbs them.
pub fn receive_throughput(cfg: &TestbedConfig) -> RxThroughputReport {
    let mut sim = Scenario::RxBench.launch(cfg.clone());
    sim.model.meter = ThroughputMeter::new(cfg.warmup);
    loop {
        if sim.model.done || sim.now() > DEADLINE {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    let m = &sim.model;
    assert!(
        m.done,
        "receive bench did not complete (size {})",
        cfg.msg_size
    );
    assert_eq!(m.verify_failures, 0, "payload corruption");
    // All figures of merit come from the shared registry snapshot.
    let snap = m.snapshot();
    let intr = snap.counter("node0.host.interrupts_taken");
    let pdus = snap.counter("node0.board.rx.pdus_delivered").max(1);
    let cells = snap.counter("node0.board.rx.cells").max(1);
    RxThroughputReport {
        mbps: m.meter.mbps(),
        interrupts_per_pdu: intr as f64 / pdus as f64,
        merge_ratio: snap.counter("node0.board.rx.double_cell_merges") as f64 / cells as f64,
        dropped_pdus: snap.counter("node0.board.rx.pdus_dropped_no_buffer"),
    }
}

/// Figure 4: transmit-side throughput (host streams; cells leave the
/// board into the link and are not received by anyone).
pub fn transmit_throughput(cfg: &TestbedConfig) -> f64 {
    let mut sim = Scenario::TxBench.launch(cfg.clone());
    sim.model.meter = ThroughputMeter::new(cfg.warmup);
    loop {
        if sim.model.done || sim.now() > DEADLINE {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    assert!(
        sim.model.done,
        "transmit bench did not complete (size {})",
        cfg.msg_size
    );
    sim.model.meter.mbps()
}

impl Testbed {
    /// The seeded `AppSend` counts as the first message of a Source run.
    pub fn nodes_remaining_decrement(&mut self) {
        if let Some(n) = self.nodes.first_mut() {
            n.decrement_remaining();
        }
    }
}

/// The incast result bundle (N senders onto one receive path through the
/// switched fabric).
#[derive(Debug, Clone)]
pub struct IncastReport {
    /// Number of sending nodes.
    pub senders: usize,
    /// Aggregate goodput delivered at the receiver.
    pub mbps: f64,
    /// Messages delivered at the receiver.
    pub delivered: u64,
    /// PDUs shed on the receiver's board for lack of free buffers.
    pub dropped_pdus: u64,
    /// Interrupts taken per delivered PDU at the receiver.
    pub interrupts_per_pdu: f64,
    /// Worst accumulated queueing on any of the receiver's switch ports.
    pub max_port_queueing_us: f64,
    /// Cells the switch forwarded toward the receiver.
    pub switch_cells: u64,
}

/// N-to-1 incast through the switched fabric: every sender streams
/// `cfg.messages` messages at one receiver; the run completes when the
/// receiver has absorbed all of them. Uses four-way reassembly — with
/// several flows contending for the receiver's port block, per-lane
/// delays diverge and in-order reassembly would reject cells the same
/// way §2.6's skewed links do.
///
/// Four-way framing infers PDU boundaries per lane, so a short PDU —
/// like the trailing fragment of an oversized UDP message — has cells
/// on lane 0 only, and under fan-in queueing the next message's
/// lane-1..3 cells can overtake it and be misattributed (§2.6's
/// bounded-skew assumption; an uncoordinated switch under incast
/// violates it). Such misattributions are caught by the per-PDU CRC and
/// shed, so fragmenting messages now *work* instead of being rejected
/// up front: the experiment turns on reliable mode and the reassembly
/// timeout, and retransmission recovers whatever the lane races shed.
/// Raw ATM has no retransmit machinery, so it keeps its guard.
pub fn incast_throughput(cfg: &TestbedConfig, senders: usize) -> IncastReport {
    let mut cfg = cfg.clone();
    cfg.reassembly = ReassemblyMode::FourWay { lanes: 4 };
    match cfg.layer {
        Layer::UdpIp => {
            let fragments = cfg.msg_size + UDP_HEADER_BYTES as u64
                > (cfg.mtu as usize - IP_HEADER_BYTES) as u64;
            if fragments {
                cfg.reliable = true;
                cfg.reassembly_timeout = Some(osiris_sim::SimDuration::from_us(1000));
            }
        }
        Layer::RawAtm => assert!(
            cfg.msg_size.div_ceil(44) >= 4,
            "raw-ATM incast requires PDUs that span all four lanes"
        ),
    }
    let mut sim = Scenario::Incast { senders }.launch(cfg.clone());
    sim.model.meter = ThroughputMeter::new(cfg.warmup);
    loop {
        if sim.model.done || sim.now() > DEADLINE {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    let m = &sim.model;
    assert!(m.done, "incast did not complete ({senders} senders)");
    assert_eq!(m.verify_failures, 0, "payload corruption");
    let snap = m.snapshot();
    let recv = format!("node{senders}");
    let intr = snap.counter(&format!("{recv}.host.interrupts_taken"));
    let pdus = snap
        .counter(&format!("{recv}.board.rx.pdus_delivered"))
        .max(1);
    // The receiver's port block on the switch.
    let lanes = 4usize;
    let (mut cells, mut worst_q) = (0u64, 0u64);
    for p in senders * lanes..(senders + 1) * lanes {
        cells += snap.counter(&format!("fabric.switch.port{p}.cells"));
        worst_q = worst_q.max(snap.counter(&format!("fabric.switch.port{p}.queueing_ps")));
    }
    IncastReport {
        senders,
        mbps: m.meter.mbps(),
        delivered: snap.counter(&format!("{recv}.stack.delivered")),
        dropped_pdus: snap.counter(&format!("{recv}.board.rx.pdus_dropped_no_buffer")),
        interrupts_per_pdu: intr as f64 / pdus as f64,
        max_port_queueing_us: worst_q as f64 / 1e6,
        switch_cells: cells,
    }
}

/// One point of the loss sweep: goodput and tail latency under a seeded
/// cell-loss/corruption rate, with every recovery counter that explains
/// them.
#[derive(Debug, Clone, Copy)]
pub struct LossSweepPoint {
    /// Per-cell drop (and corruption) probability on every lane.
    pub loss_rate: f64,
    /// Application goodput at the ping client (unique echoed messages
    /// over elapsed time — retransmitted bytes don't count).
    pub goodput_mbps: f64,
    /// Mean round-trip time in µs.
    pub rtt_mean_us: f64,
    /// 99th-percentile round-trip time in µs — where retransmission
    /// latency shows up first.
    pub rtt_p99_us: f64,
    /// Datagrams retransmitted across both stacks.
    pub retransmits: u64,
    /// Acks received across both stacks.
    pub acks: u64,
    /// Partial PDUs reaped by the reassembly timeout (both boards).
    pub timeout_reaps: u64,
    /// Cells the fault plan dropped on the wire (both links).
    pub cells_dropped: u64,
    /// Cells the fault plan corrupted on the wire (both links).
    pub cells_corrupted: u64,
    /// Datagrams abandoned after `max_retries` (must stay 0 for the
    /// sweep to be a goodput measurement at all).
    pub gave_up: u64,
    /// Payload verification failures (must always be 0: every corrupted
    /// cell must die on a CRC or checksum before the application).
    pub corrupt_deliveries: u64,
}

/// Goodput and tail latency vs. seeded cell-loss rate: the fig-2-style
/// sweep for the fault plane. Each point runs the §4 ping-pong pair in
/// reliable mode with the reassembly timeout armed, under a
/// [`FaultPlan`] that drops *and* bit-corrupts cells uniformly at
/// `rate` on every lane of both links. Deterministic: the same config
/// and seed reproduce every number bit-identically.
pub fn loss_sweep(base: &TestbedConfig, rates: &[f64]) -> Vec<LossSweepPoint> {
    rates
        .iter()
        .map(|&rate| {
            let mut cfg = base.clone();
            cfg.layer = Layer::UdpIp;
            cfg.reliable = true;
            cfg.reassembly_timeout = Some(SimDuration::from_us(1000));
            cfg.udp_checksum = true;
            cfg.verify_data = true;
            let mut plan = FaultPlan::uniform_loss(rate, 4, cfg.seed);
            plan.lane_corrupt_prob = vec![rate; 4];
            cfg.sim.faults = plan;
            let mut sim = Scenario::Pair.launch(cfg.clone());
            loop {
                if sim.model.done || sim.now() > DEADLINE {
                    break;
                }
                if !sim.step() {
                    break;
                }
            }
            let m = &sim.model;
            assert!(m.done, "loss sweep did not converge at rate {rate}");
            assert_eq!(
                m.verify_failures, 0,
                "corrupted payload reached the application at rate {rate}"
            );
            let snap = m.snapshot();
            let both = |suffix: &str| -> u64 {
                snap.counter(&format!("node0.{suffix}")) + snap.counter(&format!("node1.{suffix}"))
            };
            let elapsed = sim.now().since(SimTime::ZERO);
            LossSweepPoint {
                loss_rate: rate,
                goodput_mbps: elapsed.mbps_for_bytes(cfg.messages * cfg.msg_size),
                rtt_mean_us: m.latency.mean_us(),
                rtt_p99_us: m.latency_hist.percentile_us(0.99),
                retransmits: both("stack.retransmits"),
                acks: both("stack.acks_received"),
                timeout_reaps: both("board.rx.pdus_dropped_timeout"),
                cells_dropped: both("link.cells_dropped"),
                cells_corrupted: both("link.cells_corrupted"),
                gave_up: both("stack.gave_up"),
                corrupt_deliveries: m.verify_failures,
            }
        })
        .collect()
}

/// §2.5.1's DMA ceilings: `(transfer bytes, direction, Mbps)` rows.
pub fn dma_ceilings() -> Vec<(u64, &'static str, f64)> {
    let bus = BusSpec::ds5000_200();
    vec![
        (44, "transmit (read)", bus.dma_ceiling_mbps(44, false)),
        (44, "receive (write)", bus.dma_ceiling_mbps(44, true)),
        (88, "transmit (read)", bus.dma_ceiling_mbps(88, false)),
        (88, "receive (write)", bus.dma_ceiling_mbps(88, true)),
        (176, "receive (write)", bus.dma_ceiling_mbps(176, true)),
    ]
}

/// §2.1.2: interrupts per PDU under the two policies, at one message size.
pub fn interrupt_suppression(base: &TestbedConfig) -> (f64, f64) {
    use osiris_board::interrupt::InterruptPolicy;
    let mut per_pdu = base.clone();
    per_pdu.interrupt_policy = InterruptPolicy::PerPdu;
    let mut transition = base.clone();
    transition.interrupt_policy = InterruptPolicy::OnTransition;
    (
        receive_throughput(&per_pdu).interrupts_per_pdu,
        receive_throughput(&transition).interrupts_per_pdu,
    )
}

/// §2.6: double-cell merge ratio with and without skew, quantifying
/// "once skew is introduced, the probability that two successive cells
/// will be received in order is greatly reduced".
pub fn skew_vs_merging(machine: MachineSpec) -> (f64, f64) {
    // Merging is a receive-processor behaviour; drive it through the pair
    // testbed so cells really traverse the (possibly skewed) link.
    let mk = |skewed: bool| -> f64 {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.machine = machine;
        cfg.msg_size = 16 * 1024;
        cfg.messages = 6;
        cfg.rx_dma = DmaMode::DoubleCell;
        if skewed {
            cfg.skew = osiris_atm::stripe::SkewConfig::mux_skew(17);
            cfg.reassembly = ReassemblyMode::FourWay { lanes: 4 };
        }
        let mut sim = Scenario::Pair.launch(cfg);
        loop {
            if sim.model.done || sim.now() > DEADLINE {
                break;
            }
            if !sim.step() {
                break;
            }
        }
        assert!(sim.model.done, "skew experiment did not complete");
        let snap = sim.model.snapshot();
        snap.counter("node1.board.rx.double_cell_merges") as f64
            / snap.counter("node1.board.rx.cells").max(1) as f64
    };
    (mk(false), mk(true))
}

/// §3.1's overload claim, measured: under receiver overload, the
/// board sheds low-priority PDUs "before they have consumed any
/// processing resources on the host", while high-priority traffic is
/// delivered in full.
#[derive(Debug, Clone, Copy)]
pub struct OverloadReport {
    /// High-priority PDUs offered / delivered.
    pub hi_offered: u64,
    /// High-priority PDUs delivered to the host.
    pub hi_delivered: u64,
    /// Low-priority PDUs offered.
    pub lo_offered: u64,
    /// Low-priority PDUs delivered.
    pub lo_delivered: u64,
    /// PDUs shed on the board for want of free buffers.
    pub shed_on_board: u64,
    /// Host receive-buffer pops attributable to shed PDUs (must be 0:
    /// shedding costs the host nothing).
    pub host_work_for_shed: u64,
}

/// Runs the §3.1 overload scenario: two paths with early demultiplexing
/// onto separate queue pages; the host's drain thread serves the
/// high-priority page eagerly and starves the low-priority one.
pub fn priority_under_overload(machine: MachineSpec, rounds: u64) -> OverloadReport {
    use osiris_atm::sar::{FramingMode, SegmentUnit, Segmenter};
    use osiris_atm::Vci;
    use osiris_board::dpram::DpramLayout;
    use osiris_board::rx::{RxConfig, RxProcessor};
    use osiris_host::driver::{CacheStrategy, OsirisDriver};
    use osiris_host::machine::HostMachine;
    use osiris_host::wiring::{WiringMode, WiringService};
    use osiris_sim::SimDuration;

    let mut host = HostMachine::boot(machine, 17);
    let mut rx = RxProcessor::new(
        RxConfig {
            buffer_bytes: 4096,
            ..RxConfig::paper_default()
        },
        DpramLayout::paper_default(),
    );
    let (hi_vci, lo_vci) = (Vci(100), Vci(101));
    let (hi_page, lo_page) = (1usize, 2usize);
    rx.bind_vci(hi_vci, hi_page);
    rx.bind_vci(lo_vci, lo_page);
    let wiring = WiringService {
        mode: WiringMode::LowLevel,
    };
    let mut hi_drv = OsirisDriver::new(hi_page, 4096, CacheStrategy::Lazy, wiring);
    let mut lo_drv = OsirisDriver::new(lo_page, 4096, CacheStrategy::Lazy, wiring);
    hi_drv.provision_receive_buffers(SimTime::ZERO, &mut host, &mut rx, 8);
    lo_drv.provision_receive_buffers(SimTime::ZERO, &mut host, &mut rx, 8);

    // §3.1: one drain thread per path, with the path's traffic priority.
    let mut sched = osiris_host::thread::Scheduler::new(host.spec.costs.thread_dispatch);
    let hi_thread = sched.spawn("drain-hi", 7);
    let lo_thread = sched.spawn("drain-lo", 1);

    let seg = Segmenter {
        framing: FramingMode::EndOfPdu,
        unit: SegmentUnit::Pdu,
    };
    let payload = vec![0x77u8; 2000];
    let mut t = SimTime::from_us(100);
    let mut report = OverloadReport {
        hi_offered: rounds,
        hi_delivered: 0,
        lo_offered: rounds,
        lo_delivered: 0,
        shed_on_board: 0,
        host_work_for_shed: 0,
    };
    for _ in 0..rounds {
        // Offer one PDU on each path.
        for vci in [hi_vci, lo_vci] {
            for cell in seg.segment(vci, &[&payload]) {
                rx.receive_cell(
                    t,
                    0,
                    &cell,
                    &mut host.mem_sys,
                    &mut host.cache,
                    &mut host.phys,
                );
            }
        }
        // The interrupt wakes both drain threads; the window before the
        // next burst fits exactly one dispatch, and the scheduler picks
        // by priority — the high-priority drain runs every time.
        let ti = host.take_interrupt(t).finish;
        sched.wake(hi_thread);
        sched.wake(lo_thread);
        let (tid, g) = sched
            .dispatch(ti, &mut host)
            .expect("runnable drain thread");
        debug_assert_eq!(tid, hi_thread, "priority must pick the high path");
        let drained = hi_drv.drain_receive(g.finish, &mut host, &mut rx);
        for pdu in &drained.delivered {
            debug_assert_eq!(pdu.vci, hi_vci);
            report.hi_delivered += 1;
            hi_drv.recycle(pdu.ready_at, &mut host, &mut rx, &pdu.bufs);
        }
        sched.block(tid);
        t = drained.finished_at.max(t) + SimDuration::from_us(50);
    }
    // When the overload ends, the low-priority thread finally gets the
    // CPU and drains whatever the board still holds.
    let (tid, g) = sched
        .dispatch(t, &mut host)
        .expect("low thread still runnable");
    debug_assert_eq!(tid, lo_thread);
    let drained = lo_drv.drain_receive(g.finish, &mut host, &mut rx);
    sched.block(tid);
    report.lo_delivered = drained.delivered.len() as u64;
    report.shed_on_board = rx.stats().pdus_dropped_no_buffer;
    // Host work attributable to shed PDUs: the drivers only ever popped
    // descriptors that were delivered, so anything shed cost zero pops.
    let pops = hi_drv.stats().rx_buffers + lo_drv.stats().rx_buffers;
    let delivered_bufs = report.hi_delivered + report.lo_delivered; // 1 buffer each
    report.host_work_for_shed = pops.saturating_sub(delivered_bufs);
    report
}

/// §2.2's closing argument, measured: per-message driver setup cost for a
/// fragmented message, with physical-buffer descriptors versus a
/// scatter/gather map. Returns `(descriptor_us, sgmap_us)` — both grow
/// with fragmentation, which is the paper's point: "physical buffer
/// fragmentation is a potential performance concern even when virtual
/// DMA is available."
pub fn virtual_dma_setup_cost(machine: MachineSpec, data_pages: u64) -> (f64, f64) {
    use osiris_board::descriptor::DESC_WORDS;
    use osiris_host::machine::HostMachine;
    use osiris_mem::{PhysBuffer, SgMap};

    // A §2.2 message: `data_pages` scattered data pages plus a header
    // buffer (n + 2 physical buffers with unaligned data; we take n + 1
    // for the aligned case to stay conservative).
    let n_buffers = data_pages + 1;

    // Path A: one descriptor per physical buffer across the TURBOchannel.
    let mut host = HostMachine::boot(machine, 4);
    let t0 = SimTime::from_us(5);
    let mut t = t0;
    for _ in 0..n_buffers {
        let g = host.mem_sys.pio_write(t, DESC_WORDS + 1);
        t = g.finish;
    }
    let descriptor_us = t.since(t0).as_us_f64();

    // Path B: load one map entry per page, then a single descriptor for
    // the now-bus-contiguous region.
    let mut host = HostMachine::boot(machine, 4);
    let mut map = SgMap::new(256, machine.page_size as u64);
    let mut t = t0;
    for p in 0..n_buffers {
        map.map_buffer(PhysBuffer::new(osiris_mem::PhysAddr(p * 4096), 4096))
            .unwrap();
        let g = host.mem_sys.pio_write(t, SgMap::PIO_WORDS_PER_ENTRY);
        t = g.finish;
    }
    let g = host.mem_sys.pio_write(t, DESC_WORDS + 1);
    let sgmap_us = g.finish.since(t0).as_us_f64();
    (descriptor_us, sgmap_us)
}

/// Where a one-way trip spends its time, extracted from a traced single
/// ping: `(stage name, microseconds)` in path order. This is the
/// explanatory complement to Table 1 — the simulator can say *why* a
/// 1-byte message costs what it costs.
pub fn latency_budget(cfg: &TestbedConfig) -> Vec<(&'static str, f64)> {
    let mut cfg = cfg.clone();
    cfg.messages = 1;
    let mut sim = Scenario::Pair.launch(cfg);
    sim.model.timeline.set_enabled(true);
    loop {
        if sim.model.done || sim.now() > DEADLINE {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    assert!(sim.model.done, "budget ping did not complete");
    // Stage boundaries on the forward (host 0 → host 1) direction, read
    // off the typed timeline.
    let tl = &sim.model.timeline;
    let find = |track: &str, name: &str| {
        tl.events()
            .into_iter()
            .find(|e| e.track == track && e.name == name)
            .map(|e| e.at)
    };
    let send = find("node0.app", "send").expect("send");
    let kick = find("node0.board.tx", "kick").expect("kick");
    let first_cell = find("node1.board.rx", "cell").expect("cell");
    let last_cell = tl
        .events()
        .into_iter()
        .filter(|e| e.track == "node1.board.rx" && e.name == "cell")
        .map(|e| e.at)
        .max()
        .expect("cells");
    let intr = find("node1.host", "intr").expect("interrupt");
    let drain = find("node1.host", "drain start").expect("drain");
    // The server's reply enqueues directly (no AppSend event); its first
    // transmit kick marks the end of host 1's inbound processing.
    let reply = find("node1.board.tx", "kick").expect("server reply");
    vec![
        (
            "app + protocol out + driver enqueue",
            kick.since(send).as_us_f64(),
        ),
        (
            "board segmentation + DMA + first cell on wire",
            first_cell.since(kick).as_us_f64(),
        ),
        (
            "remaining cells (DMA/link pipeline)",
            last_cell.since(first_cell).as_us_f64(),
        ),
        (
            "interrupt assertion (reassembly tail)",
            intr.saturating_since(last_cell).as_us_f64(),
        ),
        (
            "interrupt service + thread dispatch",
            drain.since(intr).as_us_f64(),
        ),
        (
            "drain + protocol in + app delivery",
            reply.since(drain).as_us_f64(),
        ),
    ]
}

/// Critical-path anatomy of a scenario run: per-stage latency
/// distributions over every traced PDU, computed from the causal
/// timeline rather than hand-picked event markers.
#[derive(Debug, Clone)]
pub struct StageAnatomy {
    /// `(stage, summary-in-µs)` rows in path order; zero stages omitted.
    pub stages: Vec<(Stage, HistSummary)>,
    /// End-to-end latency distribution (µs) over the same PDUs.
    pub e2e: HistSummary,
    /// Traced PDUs the distributions are computed over.
    pub pdus: usize,
    /// Timeline evictions during the run (non-zero means the numbers
    /// above are incomplete; the report layer prints a loud warning).
    pub dropped_spans: u64,
    /// Full registry read-out at the end of the run, so a bench snapshot
    /// can archive the counters next to the percentiles.
    pub snapshot: osiris_sim::Snapshot,
}

/// Runs `scenario` with per-PDU tracing enabled and attributes every
/// traced PDU's end-to-end latency to typed stages. Unlike
/// [`latency_budget`] — which reads six hand-picked markers off one
/// ping — this covers *all* PDUs and is exhaustive by construction:
/// each PDU's stage durations sum exactly to its measured latency.
pub fn stage_anatomy(scenario: Scenario, cfg: &TestbedConfig) -> StageAnatomy {
    let mut sim = scenario.launch(cfg.clone());
    sim.model.timeline.set_enabled(true);
    loop {
        if sim.model.done || sim.now() > DEADLINE {
            break;
        }
        if !sim.step() {
            break;
        }
    }
    assert!(sim.model.done, "stage-anatomy run did not complete");
    assert_eq!(sim.model.verify_failures, 0, "payload corruption");
    let paths = CriticalPath::analyze_all(&sim.model.timeline);
    StageAnatomy {
        stages: CriticalPath::stage_percentiles(&paths),
        e2e: CriticalPath::e2e_summary(&paths),
        pdus: paths.len(),
        dropped_spans: sim.model.timeline.dropped(),
        snapshot: sim.model.snapshot(),
    }
}

/// §3.1: the three ways to move a received message across a protection
/// domain boundary, as microseconds per message of `bytes` bytes:
/// `(copy, uncached_fbuf, cached_fbuf)`. The copy path physically moves
/// the data (reads + write-through writes on the host); the fbuf paths
/// move only mappings, and the cached case has even those preinstalled.
pub fn cross_domain_delivery(machine: MachineSpec, bytes: u32) -> (f64, f64, f64) {
    use osiris_fbuf::{FbufAllocator, FbufCosts};
    use osiris_host::machine::HostMachine;
    use osiris_mem::PhysAddr;

    // Copy: read the message through the cache, write it to the user's
    // buffer (write-through memory traffic).
    let mut host = HostMachine::boot(machine, 9);
    let mut buf = vec![0u8; bytes as usize];
    let t0 = SimTime::from_us(10);
    let rr = host.cpu_read(t0, PhysAddr(0x10_0000), &mut buf);
    let g = host.cpu_write(rr.grant.finish, PhysAddr(0x90_0000), &buf);
    let copy = g.finish.since(t0).as_us_f64();

    // Fbufs: transfer the buffer's mapping instead.
    let mut host = HostMachine::boot(machine, 9);
    let costs = FbufCosts::for_machine(&host);
    let mut alloc = FbufAllocator::new(costs, PhysAddr(0x10_0000), bytes, 4);
    let (mut fb, _) = alloc.alloc_for_path(1).unwrap();
    let g1 = alloc.transfer(t0, &mut host, &mut fb, 1);
    let uncached = g1.finish.since(g1.start).as_us_f64();
    let g2 = alloc.transfer(g1.finish, &mut host, &mut fb, 1);
    let cached = g2.finish.since(g2.start).as_us_f64();
    (copy, uncached, cached)
}

/// §2.7: how fast an application can access received data, PIO vs DMA,
/// in Mbps: `(pio, dma_then_cpu_read)`.
pub fn pio_vs_dma(machine: MachineSpec) -> (f64, f64) {
    use osiris_host::driver::pio_receive;
    use osiris_host::machine::HostMachine;
    use osiris_mem::PhysAddr;
    let bytes = 64 * 1024u64;

    let mut h = HostMachine::boot(machine, 3);
    let t = pio_receive(SimTime::ZERO, &mut h, bytes);
    let pio = t.since(SimTime::ZERO).mbps_for_bytes(bytes);

    // DMA into memory, then the application reads it through the cache.
    let mut h = HostMachine::boot(machine, 3);
    let g = h.mem_sys.dma_write(SimTime::ZERO, bytes);
    let mut buf = vec![0u8; bytes as usize];
    let rr = h.cpu_read(g.finish, PhysAddr(0), &mut buf);
    let dma = rr.grant.finish.since(SimTime::ZERO).mbps_for_bytes(bytes);
    (pio, dma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_sweep_converges_and_is_deterministic() {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 4096;
        cfg.messages = 16;
        let rates = [0.0, 1e-3];
        let a = loss_sweep(&cfg, &rates);
        let b = loss_sweep(&cfg, &rates);
        // Same seed → bit-identical points, including every counter.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Clean link: nothing dropped, nothing retransmitted, every
        // datagram acked.
        assert_eq!(a[0].cells_dropped + a[0].cells_corrupted, 0);
        assert_eq!(a[0].retransmits, 0);
        // Each ping and echo is acked; the final echo's ack may still
        // be in flight when the client's budget completes the run.
        assert!(a[0].acks >= 2 * 16 - 2, "acks: {}", a[0].acks);
        // Faulty link: faults actually fired, reliable mode still
        // converged to full goodput, and nothing corrupt got through.
        assert!(a[1].cells_dropped + a[1].cells_corrupted > 0);
        assert!(a[1].goodput_mbps > 0.0);
        assert_eq!(a[1].gave_up, 0);
        assert_eq!(a[1].corrupt_deliveries, 0);
        // Loss costs time: goodput can only go down, the tail only up.
        assert!(a[1].goodput_mbps <= a[0].goodput_mbps);
        assert!(a[1].rtt_p99_us >= a[0].rtt_p99_us);
    }

    #[test]
    fn dma_ceiling_rows_match_paper() {
        let rows = dma_ceilings();
        assert!((rows[0].2 - 366.7).abs() < 1.0);
        assert!((rows[1].2 - 463.2).abs() < 1.0);
        assert!((rows[2].2 - 502.9).abs() < 1.0);
        assert!((rows[3].2 - 586.7).abs() < 1.0);
    }

    #[test]
    fn interrupt_suppression_wins_under_bursts() {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 4096;
        cfg.messages = 20;
        cfg.warmup = 2;
        let (per_pdu, transition) = interrupt_suppression(&cfg);
        assert!(per_pdu >= 0.95, "per-PDU policy: {per_pdu}");
        assert!(
            transition < per_pdu * 0.8,
            "transition policy must interrupt less: {transition} vs {per_pdu}"
        );
    }

    #[test]
    fn pio_loses_to_dma_on_both_machines() {
        for m in [MachineSpec::ds5000_200(), MachineSpec::dec3000_600()] {
            let (pio, dma) = pio_vs_dma(m);
            assert!(dma > pio, "{}: dma {dma} must beat pio {pio}", m.name);
        }
    }

    #[test]
    fn overload_sheds_low_priority_on_the_board() {
        let r = priority_under_overload(MachineSpec::ds5000_200(), 20);
        assert_eq!(
            r.hi_delivered, r.hi_offered,
            "high priority must not lose a PDU"
        );
        assert!(
            r.lo_delivered < r.lo_offered,
            "overload must shed some low-priority traffic"
        );
        assert!(r.shed_on_board > 0);
        assert_eq!(
            r.lo_delivered + r.shed_on_board,
            r.lo_offered,
            "every low-priority PDU is either delivered or shed on the board"
        );
        assert_eq!(
            r.host_work_for_shed, 0,
            "shedding must cost the host nothing"
        );
    }

    #[test]
    fn virtual_dma_costs_scale_with_fragmentation() {
        let (d1, s1) = virtual_dma_setup_cost(MachineSpec::ds5000_200(), 1);
        let (d4, s4) = virtual_dma_setup_cost(MachineSpec::ds5000_200(), 4);
        // Both paths grow with page count — the paper's closing §2.2 point.
        assert!(d4 > d1);
        assert!(s4 > s1);
        // The map loads are smaller than full descriptors per fragment.
        assert!(s4 < d4, "sgmap {s4} vs descriptors {d4}");
        assert!(s4 > d4 / 4.0, "but not free");
    }

    #[test]
    fn latency_budget_sums_to_one_way_time() {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 1024;
        let budget = latency_budget(&cfg);
        assert_eq!(budget.len(), 6);
        let total: f64 = budget.iter().map(|&(_, us)| us).sum();
        // One way of a ~740 us RTT: the stages must cover most of it.
        assert!((250.0..500.0).contains(&total), "budget total {total}");
        // The interrupt stage is the single 89 us block.
        let intr = budget
            .iter()
            .find(|(n, _)| n.contains("interrupt service"))
            .unwrap()
            .1;
        assert!((85.0..95.0).contains(&intr), "interrupt stage {intr}");
        assert!(budget.iter().all(|&(_, us)| us >= 0.0));
    }

    #[test]
    fn stage_anatomy_explains_the_whole_trip() {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 1024;
        cfg.messages = 2;
        let a = stage_anatomy(Scenario::Pair, &cfg);
        assert_eq!(a.pdus, 4, "2 pings + 2 pongs");
        assert_eq!(a.dropped_spans, 0);
        // Exhaustive attribution: mean stage times sum to mean e2e.
        let sum: f64 = a.stages.iter().map(|(_, h)| h.time_weighted_mean).sum();
        let e2e = a.e2e.time_weighted_mean;
        assert!(
            (sum - e2e).abs() < e2e * 1e-6,
            "stage means {sum} must sum to e2e mean {e2e}"
        );
        // The big stages of a one-way trip all show up.
        for stage in [Stage::ProtocolCpu, Stage::DmaTransfer, Stage::Wire] {
            assert!(a.stages.iter().any(|&(s, _)| s == stage), "missing {stage}");
        }
    }

    #[test]
    fn copy_is_the_worst_way_across_a_domain() {
        for m in [MachineSpec::ds5000_200(), MachineSpec::dec3000_600()] {
            let (copy, uncached, cached) = cross_domain_delivery(m, 16 * 1024);
            assert!(
                copy > uncached,
                "{}: copy {copy} vs uncached {uncached}",
                m.name
            );
            assert!(
                uncached > 10.0 * cached,
                "{}: {uncached} vs {cached}",
                m.name
            );
        }
    }

    #[test]
    fn skew_collapses_merge_ratio() {
        let (aligned, skewed) = skew_vs_merging(MachineSpec::ds5000_200());
        assert!(aligned > 0.3, "aligned lanes should merge often: {aligned}");
        assert!(
            skewed < aligned / 2.0,
            "skew must collapse merging: {skewed} vs {aligned}"
        );
    }
}
