//! Cell transport between nodes — the layer under the event dispatcher.
//!
//! A [`Fabric`] owns every node's transmit [`StripedLink`] and decides
//! where cells land. Two implementations:
//!
//! * [`BackToBack`] — §4's measurement setup: each node's link feeds the
//!   other node directly (exactly two nodes; a single-node bench's cells
//!   vanish at the far end).
//! * [`SwitchedFabric`] — an output-queued AURORA switch in the middle
//!   ([`osiris_atm::switch::Switch`]): each node's four stripe lanes own
//!   a contiguous block of switch ports, connections are routed by VCI,
//!   and per-port cross traffic can be injected to model contention.

use osiris_atm::stripe::StripedLink;
use osiris_atm::switch::{Switch, SwitchSpec};
use osiris_atm::{Cell, LinkSpec, Vci};
use osiris_sim::faults::{component_seed, FaultComponent};
use osiris_sim::{Registry, SimTime};

use crate::config::TestbedConfig;
use crate::node::NodeId;

/// The fabric's verdict on one transmitted cell.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    /// Destination node.
    pub to: NodeId,
    /// Physical lane the cell arrives on at the destination.
    pub lane: usize,
    /// Arrival time at the destination's receive FIFO.
    pub at: SimTime,
}

/// Transports cells between nodes.
pub trait Fabric: std::fmt::Debug {
    /// Number of nodes attached.
    fn node_count(&self) -> usize;

    /// Every node's transmit link, indexed by node (read-only view).
    fn links(&self) -> &[StripedLink];

    /// The link node `from` transmits into (the transmit processor
    /// serialises cells onto it; lane skew is applied here).
    fn link_mut(&mut self, from: NodeId) -> &mut StripedLink;

    /// Routes one cell that left node `from` on `lane` at time `at`.
    /// `None` means the cell vanishes (no peer, or no route installed).
    fn route(&mut self, from: NodeId, at: SimTime, lane: usize, cell: &Cell) -> Option<Delivery>;

    /// The destination node a cell leaving `from` would be routed to —
    /// the pure routing decision, with none of `route`'s side effects
    /// (no queueing, no counters). The dispatcher uses this to address
    /// an in-flight cell to its destination's shard; the stateful
    /// `route` then runs there, at arrival time.
    fn peek_dest(&self, from: NodeId, cell: &Cell) -> Option<NodeId>;

    /// Whether routing passes through a stateful switch. When true, the
    /// dispatcher must call `route` in cell-*arrival* order (the order
    /// the hardware's output queues see), not in transmit-batch order.
    fn is_switched(&self) -> bool {
        false
    }

    /// The switch in the middle, if this fabric has one.
    fn switch_mut(&mut self) -> Option<&mut Switch> {
        None
    }
}

/// Per-node transmit links with per-node deterministic skew seeds —
/// identical wiring for every fabric. The config's [`FaultPlan`]
/// (`cfg.sim.faults`) is installed on every link with a per-node
/// component seed, so each node's fault stream is independent but fully
/// determined by `(plan.seed, node index)`.
fn build_links(cfg: &TestbedConfig, n: usize, registry: &Registry) -> Vec<StripedLink> {
    (0..n)
        .map(|i| {
            let mut link = StripedLink::with_probe(
                LinkSpec::sts3c_back_to_back(),
                &cfg.skew,
                &registry.probe(&format!("node{i}")),
            );
            // Per-node jitter stream, derived without cloning the config.
            link.reseed(cfg.seed.wrapping_add(1000 + i as u64));
            // The fault seed comes from the pure (node, component)
            // derivation, never from wiring or insertion order, so no
            // fabric partitioning can perturb a node's fault stream.
            link.set_fault_plan(&cfg.sim.faults, component_seed(i, FaultComponent::LinkTx));
            link
        })
        .collect()
}

/// Two boards linked back-to-back (or one board talking to nobody).
#[derive(Debug)]
pub struct BackToBack {
    links: Vec<StripedLink>,
}

impl BackToBack {
    /// Direct links for `n` nodes (`n` ≤ 2 is meaningful; cells from a
    /// lone node vanish, matching the transmit bench).
    pub fn new(cfg: &TestbedConfig, registry: &Registry, n: usize) -> Self {
        BackToBack {
            links: build_links(cfg, n, registry),
        }
    }
}

impl Fabric for BackToBack {
    fn node_count(&self) -> usize {
        self.links.len()
    }

    fn links(&self) -> &[StripedLink] {
        &self.links
    }

    fn link_mut(&mut self, from: NodeId) -> &mut StripedLink {
        &mut self.links[from.0]
    }

    fn route(&mut self, from: NodeId, at: SimTime, lane: usize, _cell: &Cell) -> Option<Delivery> {
        (self.links.len() == 2).then_some(Delivery {
            to: NodeId(1 - from.0),
            lane,
            at,
        })
    }

    fn peek_dest(&self, from: NodeId, _cell: &Cell) -> Option<NodeId> {
        (self.links.len() == 2).then_some(NodeId(1 - from.0))
    }
}

/// An output-queued switch between the nodes. Node `i`'s four stripe
/// lanes map onto switch ports `4i..4i+4`; a connection's receiver owns
/// its VCI and [`SwitchedFabric::connect`] installs the striped route.
#[derive(Debug)]
pub struct SwitchedFabric {
    links: Vec<StripedLink>,
    lanes: usize,
    switch: Switch,
}

impl SwitchedFabric {
    /// A switch with one port block per node, publishing port counters
    /// under `fabric.switch.port<i>.*` in the testbed registry.
    pub fn new(cfg: &TestbedConfig, registry: &Registry, n: usize) -> Self {
        let links = build_links(cfg, n, registry);
        let lanes = links[0].lanes();
        let mut switch =
            Switch::with_probe(SwitchSpec::sts3c(n * lanes), &registry.probe("fabric"));
        switch.set_max_queue_cells(cfg.sim.faults.switch_max_queue_cells);
        SwitchedFabric {
            links,
            lanes,
            switch,
        }
    }

    /// Routes connection `vci` to node `to`'s port block.
    pub fn connect(&mut self, vci: Vci, to: NodeId) {
        self.switch.route_group(vci, to.0 * self.lanes, self.lanes);
    }

    /// Injects `cells` cell times of cross traffic on one lane of node
    /// `to`'s port block, starting at `now` (other flows contending for
    /// the receiver's output port).
    pub fn cross_traffic(&mut self, now: SimTime, to: NodeId, lane: usize, cells: u64) {
        self.switch
            .background_load(now, to.0 * self.lanes + lane, cells);
    }
}

impl Fabric for SwitchedFabric {
    fn node_count(&self) -> usize {
        self.links.len()
    }

    fn links(&self) -> &[StripedLink] {
        &self.links
    }

    fn link_mut(&mut self, from: NodeId) -> &mut StripedLink {
        &mut self.links[from.0]
    }

    fn route(&mut self, _from: NodeId, at: SimTime, lane: usize, cell: &Cell) -> Option<Delivery> {
        self.switch
            .forward_on_lane(at, cell, lane)
            .map(|(port, departure)| Delivery {
                to: NodeId(port / self.lanes),
                lane: port % self.lanes,
                at: departure,
            })
    }

    fn peek_dest(&self, _from: NodeId, cell: &Cell) -> Option<NodeId> {
        // The port block base is to.0 * lanes, so the base alone names
        // the destination node regardless of which lane the cell rides.
        self.switch
            .lane_route_base(cell.header.vci)
            .map(|base| NodeId(base / self.lanes))
    }

    fn is_switched(&self) -> bool {
        true
    }

    fn switch_mut(&mut self) -> Option<&mut Switch> {
        Some(&mut self.switch)
    }
}
