//! Paper-style text rendering for experiment results, including
//! renderers over the observability layer's registry [`Snapshot`]s.

use std::fmt::Write as _;

use osiris_sim::{HistSummary, SeriesDump, Snapshot, Stage};

use crate::shard::RunOutcome;

/// Renders a table with a header row and aligned columns.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let _ = writeln!(out, "{line}");
    let hdr: Vec<String> = header
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:>width$} ", width = w))
        .collect();
    let _ = writeln!(out, "{}", hdr.join("|"));
    let _ = writeln!(out, "{line}");
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:>width$} ", width = w))
            .collect();
        let _ = writeln!(out, "{}", cells.join("|"));
    }
    let _ = writeln!(out, "{line}");
    out
}

/// Renders a `(x, series...)` sweep as the figures' data, one row per x.
pub fn series(
    title: &str,
    x_label: &str,
    x: &[u64],
    names: &[&str],
    columns: &[Vec<f64>],
) -> String {
    assert_eq!(names.len(), columns.len());
    let mut header = vec![x_label];
    header.extend_from_slice(names);
    let rows: Vec<Vec<String>> = x
        .iter()
        .enumerate()
        .map(|(i, &xv)| {
            let mut row = vec![format!("{xv}")];
            for col in columns {
                row.push(format!("{:.1}", col[i]));
            }
            row
        })
        .collect();
    table(title, &header, &rows)
}

/// Renders series as an ASCII plot in the style of the paper's own
/// figures (one glyph per series, log-spaced x values on the row axis).
pub fn ascii_plot(
    title: &str,
    y_label: &str,
    x: &[u64],
    names: &[&str],
    columns: &[Vec<f64>],
    height: usize,
) -> String {
    assert_eq!(names.len(), columns.len());
    const GLYPHS: [char; 6] = ['3', '+', '2', 'x', '*', 'o'];
    let y_max = columns
        .iter()
        .flat_map(|c| c.iter().copied())
        .fold(1.0f64, f64::max);
    // Round the axis up to a pleasant ceiling.
    let step = (y_max / height as f64).ceil().max(1.0);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{y_label}");
    for row in (1..=height).rev() {
        let lo = step * (row as f64 - 0.5);
        let hi = step * (row as f64 + 0.5);
        let mut line = format!("{:>6.0} |", step * row as f64);
        for col_idx in 0..x.len() {
            let mut cell = ' ';
            for (s, col) in columns.iter().enumerate() {
                let v = col[col_idx];
                if v >= lo && v < hi {
                    cell = GLYPHS[s % GLYPHS.len()];
                }
            }
            line.push_str(&format!("  {cell}  "));
        }
        let _ = writeln!(out, "{line}");
    }
    let mut axis = String::from("       +");
    let mut labels = String::from("        ");
    for &xv in x {
        axis.push_str("-----");
        labels.push_str(&format!("{:^5}", xv));
    }
    let _ = writeln!(out, "{axis}");
    let _ = writeln!(out, "{labels}");
    for (i, name) in names.iter().enumerate() {
        let _ = writeln!(out, "        {} = {}", GLYPHS[i % GLYPHS.len()], name);
    }
    out
}

/// Renders every non-zero counter under `prefix` (a dotted registry
/// scope, e.g. `node0.board.rx`) as an aligned two-column table.
pub fn snapshot_counters(title: &str, snap: &Snapshot, prefix: &str) -> String {
    let rows: Vec<Vec<String>> = snap
        .counters
        .iter()
        .filter(|(k, &v)| {
            v != 0
                && (prefix.is_empty()
                    || k.as_str() == prefix
                    || (k.starts_with(prefix) && k[prefix.len()..].starts_with('.')))
        })
        .map(|(k, v)| vec![k.clone(), v.to_string()])
        .collect();
    table(title, &["counter", "value"], &rows)
}

/// Renders the §4 one-way-trip anatomy (`latency_budget` stages) as the
/// `lessons` binary prints it: one indented row per stage.
pub fn latency_anatomy(stages: &[(&str, f64)]) -> String {
    let mut out = String::new();
    for (stage, us) in stages {
        let _ = writeln!(out, "  {stage:<46} {us:>7.1} us");
    }
    out
}

/// Renders per-stage latency attribution (µs, as produced by
/// `CriticalPath::stage_percentiles`) plus a closing end-to-end row.
/// Because each PDU's stages sum exactly to its latency, the mean
/// column sums to the mean end-to-end figure — the table explains the
/// whole trip, not a sample of it.
pub fn stage_table(title: &str, stages: &[(Stage, HistSummary)], e2e: &HistSummary) -> String {
    let f = |v: f64| format!("{v:.1}");
    let mut rows: Vec<Vec<String>> = stages
        .iter()
        .map(|(s, h)| {
            vec![
                s.label().to_string(),
                f(h.time_weighted_mean),
                f(h.p50),
                f(h.p95),
                f(h.p99),
            ]
        })
        .collect();
    rows.push(vec![
        "end-to-end".into(),
        f(e2e.time_weighted_mean),
        f(e2e.p50),
        f(e2e.p95),
        f(e2e.p99),
    ]);
    table(
        title,
        &["stage", "mean us", "p50 us", "p95 us", "p99 us"],
        &rows,
    )
}

/// Loud footer for any report whose numbers came off the timeline: a
/// non-zero `*.timeline.dropped` / `*.trace.dropped` counter means the
/// ring evicted records, so span trees and percentiles above are
/// incomplete. Returns `None` when nothing was lost.
pub fn dropped_spans_warning(snap: &Snapshot) -> Option<String> {
    let lost: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.ends_with(".timeline.dropped") || k.ends_with(".trace.dropped"))
        .map(|(_, &v)| v)
        .sum();
    (lost > 0).then(|| {
        format!(
            "WARN: {lost} spans dropped — ring capacity exceeded; \
             latency attribution above is incomplete \
             (raise timeline_capacity/trace_capacity)"
        )
    })
}

/// Renders a sampled-series dump as an aligned summary table: one row
/// per series with its retained window count and the min/mean/max/last
/// over all windows (including evicted ones — the aggregates are
/// running, not ring-bound). Counter rows are per-window rates; gauge
/// rows are instantaneous values.
pub fn series_summary(title: &str, dump: &SeriesDump) -> String {
    let f = |v: f64| {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.0}")
        } else {
            format!("{v:.2}")
        }
    };
    let rows: Vec<Vec<String>> = dump
        .series
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.kind.as_str().to_string(),
                s.count.to_string(),
                f(s.min),
                f(s.mean()),
                f(s.max),
                f(s.last),
            ]
        })
        .collect();
    let mut out = table(
        title,
        &["series", "kind", "windows", "min", "mean", "max", "last"],
        &rows,
    );
    let _ = writeln!(
        out,
        "  {} samples every {:.1} us{}",
        dump.samples,
        dump.every.as_us_f64(),
        if dump.dropped > 0 {
            format!(
                " (WARN: {} windows evicted — raise series_capacity)",
                dump.dropped
            )
        } else {
            String::new()
        }
    );
    out
}

/// Renders the sharded engine's self-profile: per-shard dispatch
/// counts, barrier rounds, wall-clock stall, ring pressure, and the
/// closing `max/mean` imbalance headline the scale bench publishes.
pub fn shard_profile(title: &str, out: &RunOutcome) -> String {
    let rows: Vec<Vec<String>> = out
        .per_shard
        .iter()
        .map(|s| {
            vec![
                s.shard.to_string(),
                s.events_dispatched.to_string(),
                s.events_scheduled.to_string(),
                s.rounds.to_string(),
                format!("{:.2}", s.barrier_stall_ns as f64 / 1e6),
                format!("{:.0}", s.ring_high_water),
                s.spills.to_string(),
            ]
        })
        .collect();
    let mut text = table(
        title,
        &[
            "shard",
            "dispatched",
            "scheduled",
            "rounds",
            "stall ms",
            "ring hw",
            "spills",
        ],
        &rows,
    );
    let _ = writeln!(
        text,
        "  shard imbalance (max/mean dispatched): {:.3}",
        out.shard_imbalance()
    );
    text
}

/// Formats `paper` vs `measured` with the ratio, for EXPERIMENTS.md rows.
pub fn compare(label: &str, paper: f64, measured: f64) -> String {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    format!("{label:<44} paper {paper:>8.1}   measured {measured:>8.1}   ratio {ratio:>5.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows() {
        let t = table(
            "Table 1",
            &["size", "ATM", "UDP"],
            &[
                vec!["1".into(), "353".into(), "598".into()],
                vec!["1024".into(), "417".into(), "659".into()],
            ],
        );
        assert!(t.contains("Table 1"));
        assert!(t.contains("353"));
        assert!(t.contains("1024"));
        assert_eq!(t.lines().count(), 7);
    }

    #[test]
    fn series_aligns_columns_with_x() {
        let s = series(
            "Figure 2",
            "KB",
            &[1, 2, 4],
            &["single", "double"],
            &[vec![100.0, 200.0, 300.0], vec![150.0, 250.0, 350.0]],
        );
        assert!(s.contains("single"));
        assert!(s.contains("350.0"));
    }

    #[test]
    fn ascii_plot_places_every_series() {
        let plot = ascii_plot(
            "Fig",
            "Mbps",
            &[1, 2, 4],
            &["a", "b"],
            &[vec![100.0, 200.0, 300.0], vec![50.0, 150.0, 250.0]],
            10,
        );
        assert!(plot.contains("3 = a"));
        assert!(plot.contains("+ = b"));
        // Each series contributes its glyph somewhere in the grid.
        let grid: String = plot.lines().filter(|l| l.contains('|')).collect();
        assert!(grid.matches('3').count() >= 3, "{plot}");
        assert!(grid.matches('+').count() >= 3, "{plot}");
        // The y axis covers the max value.
        assert!(plot.contains("300") || plot.contains("330"), "{plot}");
    }

    #[test]
    fn ascii_plot_handles_single_point() {
        let plot = ascii_plot("t", "y", &[16], &["s"], &[vec![42.0]], 5);
        assert!(plot.contains('3'));
    }

    #[test]
    fn stage_table_has_stage_and_e2e_rows() {
        let h = HistSummary {
            time_weighted_mean: 100.0,
            min: 90.0,
            max: 120.0,
            samples: 4,
            p50: 100.0,
            p95: 118.0,
            p99: 120.0,
        };
        let t = stage_table("anatomy", &[(Stage::DmaTransfer, h), (Stage::Wire, h)], &h);
        assert!(t.contains("DMA transfer"));
        assert!(t.contains("wire"));
        assert!(t.contains("end-to-end"));
        assert!(t.contains("118.0"));
    }

    #[test]
    fn dropped_warning_fires_only_on_loss() {
        let reg = osiris_sim::Registry::new();
        let probe = reg.probe("sim").scoped("timeline");
        let c = probe.counter("dropped");
        assert_eq!(dropped_spans_warning(&reg.snapshot()), None);
        c.add(7);
        let warn = dropped_spans_warning(&reg.snapshot()).expect("must warn");
        assert!(warn.contains("WARN: 7 spans dropped"), "{warn}");
        // Unrelated `.dropped` counters stay out of the tally.
        reg.probe("node0").scoped("board").counter("dropped").add(9);
        let warn = dropped_spans_warning(&reg.snapshot()).unwrap();
        assert!(warn.contains("7 spans"), "{warn}");
    }

    #[test]
    fn compare_shows_ratio() {
        let c = compare("rx throughput", 340.0, 323.0);
        assert!(c.contains("0.95"));
    }

    #[test]
    #[should_panic]
    fn series_length_mismatch_panics() {
        series("x", "x", &[1], &["a", "b"], &[vec![1.0]]);
    }
}
