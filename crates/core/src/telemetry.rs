//! The runtime telemetry plane: deterministic time-series sampling of
//! the testbed's own registry.
//!
//! [`Sampler`] wraps an [`osiris_sim::SeriesSet`] around the metric
//! registry of a built testbed: it *finds* already-registered counters
//! and gauges (never creates keys — sampling on must not change the
//! registry key set, which the telemetry equivalence tests pin) and
//! snapshots them on a fixed virtual-time grid
//! (`cfg.sim.sample_every`). Counter series record per-window deltas
//! (rates), gauge series record instantaneous values.
//!
//! Sampling is **passive**: no event ever enters the model queue on its
//! behalf. The sequential engine samples between dispatches — a grid
//! point `T` is sampled exactly when the next pending event is strictly
//! beyond `T`, i.e. when the registry already holds its final
//! state-at-`T`. The sharded engine does the same per shard at round
//! boundaries, below the global minimum next-event time (see
//! `crate::shard`). Either way the sampled values are pure functions of
//! the deterministic event history, so runs with sampling on are
//! byte-identical to runs with it off, at every shard count.
//!
//! The default tracked set is the engine's own health: total events
//! scheduled, events dispatched (a synthetic per-sampler counter, so
//! each shard's dispatch rate is its own series), the per-event-type
//! `engine.dispatch.*` mix, the cell-slab high water, the switch
//! output-queue depth and high water, and the calendar queue's bucket
//! high water.

use osiris_sim::obs::{Counter, Probe, Registry};
use osiris_sim::{Model, SeriesDump, SeriesSet, SimDuration, SimTime, Simulation};

/// Gauges the default tracked set samples when present in the registry
/// (absent keys are skipped — e.g. no `fabric.switch.*` on a
/// back-to-back fabric, no `profile.*` on the sequential engine).
const TRACKED_GAUGES: &[&str] = &[
    "cells.slab_high_water",
    "fabric.switch.queue_depth_cells",
    "fabric.switch.queue_high_water_cells",
    "engine.queue.bucket_high_water",
    "profile.gmin_ps",
];

/// A sampling plane bound to one engine's registry: the series set plus
/// the synthetic dispatch counter the run loop bumps once per handled
/// event.
#[derive(Debug, Clone)]
pub struct Sampler {
    set: SeriesSet,
    dispatched: Counter,
}

impl Sampler {
    /// Builds the default tracked set over `registry`. Call *after* the
    /// engine probes are attached (post-`launch`, or inside a shard
    /// after `ShardQueue::attach_probe`) so the `engine.*` keys exist.
    ///
    /// `probe` scopes the sampler's own drop counter
    /// (`<scope>.samples_dropped` — ring evictions); pass the
    /// registry's `obs` probe so drops are registry-visible.
    pub fn new(registry: &Registry, probe: &Probe, every: SimDuration, capacity: usize) -> Sampler {
        let set = SeriesSet::new(every, capacity);
        set.attach_probe(probe);
        let dispatched = Counter::detached();
        set.track_counter("events_dispatched", &dispatched);
        if let Some(c) = registry.find_counter("engine.events.scheduled") {
            set.track_counter("engine.events.scheduled", &c);
        }
        for path in registry.counter_paths_with_prefix("engine.dispatch.") {
            if let Some(c) = registry.find_counter(&path) {
                set.track_counter(&path, &c);
            }
        }
        for &g in TRACKED_GAUGES {
            if let Some(gauge) = registry.find_gauge(g) {
                set.track_gauge(g, &gauge);
            }
        }
        Sampler { set, dispatched }
    }

    /// Counts one dispatched event into the `events_dispatched` series.
    pub fn note_dispatch(&self) {
        self.dispatched.incr();
    }

    /// Samples every grid point strictly before `t` (call with the next
    /// pending event time, or the round's global minimum).
    pub fn sample_grid_before(&self, t: SimTime) {
        self.set.sample_grid_before(t);
    }

    /// Closes the run at `end` (samples remaining grid points plus a
    /// final tail sample) and returns the collected series.
    pub fn finish(&self, end: SimTime) -> SeriesDump {
        self.set.finish(end);
        self.set.dump()
    }
}

/// Runs `sim` to queue exhaustion, sampling `sampler`'s grid between
/// dispatches — the sequential engine's sampling loop. Equivalent to
/// [`Simulation::run_to_completion`] in every observable way (same
/// dispatch order, same final `now`): the only addition is passive
/// registry reads at grid points.
pub fn run_sampled<M: Model>(sim: &mut Simulation<M>, sampler: &Sampler) {
    while let Some(t) = sim.queue.peek_time() {
        sampler.sample_grid_before(t);
        sim.step();
        sampler.note_dispatch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestbedConfig;
    use crate::scenario::Scenario;

    #[test]
    fn sampler_never_creates_registry_keys() {
        let sim = Scenario::Pair.launch(TestbedConfig::ds5000_200_udp());
        let before: Vec<String> = sim
            .model
            .registry
            .snapshot()
            .counters
            .keys()
            .cloned()
            .collect();
        let reg = sim.model.registry.clone();
        let _s = Sampler::new(&reg, &Probe::detached(), SimDuration::from_us(100), 64);
        let after: Vec<String> = sim
            .model
            .registry
            .snapshot()
            .counters
            .keys()
            .cloned()
            .collect();
        assert_eq!(before, after, "sampling must not mint counter keys");
    }

    #[test]
    fn sampled_run_matches_unsampled_run() {
        let cfg = TestbedConfig::ds5000_200_udp();
        let mut plain = Scenario::Pair.launch(cfg.clone());
        plain.run_to_completion();

        let mut sampled = Scenario::Pair.launch(cfg);
        let sampler = Sampler::new(
            &sampled.model.registry,
            &Probe::detached(),
            SimDuration::from_us(50),
            1024,
        );
        run_sampled(&mut sampled, &sampler);
        let dump = sampler.finish(sampled.now());

        assert_eq!(plain.now(), sampled.now(), "same final virtual time");
        assert_eq!(plain.steps(), sampled.steps(), "same dispatch count");
        assert_eq!(
            plain.model.registry.snapshot().to_json().render_pretty(),
            sampled.model.registry.snapshot().to_json().render_pretty(),
            "sampling must be invisible to the registry"
        );
        // The synthetic dispatch series accounts for every event.
        let s = dump.series_named("events_dispatched").unwrap();
        assert_eq!(s.total - s.base, sampled.steps() as f64);
        assert_eq!(s.sum, sampled.steps() as f64);
    }
}
