//! The discrete-event dispatcher: routes events to nodes and the fabric.
//!
//! The testbed used to be a monolith hardwired to two shapes; it is now
//! the thin event loop over three layers:
//!
//! * [`crate::node`] — [`HostNode`]: one complete host (machine, board
//!   pair, driver, stack), addressed by a typed [`NodeId`].
//! * [`crate::fabric`] — cell transport: back-to-back links or a switched
//!   fabric routing by VCI through [`osiris_atm::switch`].
//! * [`crate::scenario`] — declarative topology + workload descriptions
//!   that assemble a `Testbed` ([`crate::scenario::Scenario`]).
//!
//! The [`Testbed::new_pair`] / [`Testbed::new_rx_bench`] /
//! [`Testbed::new_tx_bench`] constructors survive as wrappers over the
//! corresponding scenarios.
//!
//! Modelling note: board state mutations (ring pushes) take effect at
//! event-dispatch time while carrying later timestamps (the DMA
//! completion grants); a drain event landing inside that window observes
//! descriptors stamped "in the future". Relative to the event clock the
//! lead equals the bus backlog, which under sustained receive load grows
//! with the burst (the wire delivers cells faster than single-cell DMA
//! drains them), so it is *not* a small constant. The enforceable bound
//! is against the machine's committed-work horizon — the later of the
//! memory bus's and the receive engine's `free_at()`: every stamp is a
//! grant finish on one of those two resources, so a drain can never
//! observe a descriptor more than one receive DMA grant beyond that
//! horizon. `rx_drain` enforces exactly this with a debug assertion
//! ([`Testbed::max_drain_ahead`] records the worst case); the skew does
//! not affect any reported steady-state number.

use std::collections::HashMap;

use osiris_adc::AdcManager;
use osiris_atm::sar::{ReassemblyMode, SegmentUnit, Segmenter};
use osiris_atm::stripe::StripedLink;
use osiris_atm::{CellRef, CellSlab};
use osiris_host::driver::{interrupt_to_thread, DeliveredPdu, SendOutcome};
use osiris_sim::obs::{Counter, Probe, Snapshot};
use osiris_sim::stats::{DurationHistogram, LatencyStats, ThroughputMeter};
use osiris_sim::{
    EventQueue, Model, Registry, SimDuration, SimTime, SymId, Timeline, Trace, TraceCtx,
};

use osiris_proto::stack::{ProtoConfig, ProtoStack, RxVerdict};

use crate::config::{DataPath, Layer, TestbedConfig, TouchMode};
use crate::fabric::Fabric;
use crate::scenario::Scenario;

pub use crate::node::{HostNode, NodeId, Role};

/// Back-compat alias for the pre-refactor name.
pub use crate::node::HostNode as Node;

/// Testbed events.
#[derive(Debug, Clone)]
pub enum Event {
    /// The application on `host` initiates its next message.
    AppSend {
        /// Node address.
        host: NodeId,
    },
    /// The transmit processor on `host` has (possibly) work to do.
    TxKick {
        /// Node address.
        host: NodeId,
    },
    /// A cell lands at `to`'s receive FIFO.
    CellArrival {
        /// Destination node.
        to: NodeId,
        /// Physical lane the cell arrived on.
        lane: usize,
        /// Slab handle of the in-flight cell ([`Testbed::cells`]); the
        /// receive path consumes it and recycles the slot.
        cell: CellRef,
    },
    /// Double-cell lookahead window expired on `host`.
    RxFlush {
        /// Node address.
        host: NodeId,
        /// Pending-DMA generation (stale guards).
        gen: u64,
    },
    /// The board asserted a receive interrupt at `host`.
    RxInterrupt {
        /// Node address.
        host: NodeId,
    },
    /// The drain thread (scheduled by the interrupt handler) runs.
    RxDrain {
        /// Node address.
        host: NodeId,
    },
    /// Transmit-queue half-empty wakeup (the host was blocked).
    TxWake {
        /// Node address.
        host: NodeId,
    },
    /// A cell in flight toward the switched fabric: it left `from`'s
    /// link and reaches the switch input at this event's timestamp.
    /// Routing — and therefore output-queue contention — happens here,
    /// in cell-*arrival* order, the order the hardware's output queues
    /// see. Only switched fabrics schedule this event; back-to-back
    /// links route inline at transmit time (stateless, so order cannot
    /// matter there).
    FabricTransit {
        /// Transmitting node.
        from: NodeId,
        /// Destination node (owner of the contended port block; the
        /// sharded engine dispatches the event on its shard). For a
        /// cell with no installed route this is `from` — the drop is
        /// counted wherever the sender lives.
        to: NodeId,
        /// Physical lane the cell rides.
        lane: usize,
        /// Slab handle of the in-flight cell.
        cell: CellRef,
    },
    /// The fictitious-PDU generator's next step (receive benches).
    GenKick,
    /// The reassembly-timeout sweep on `host`'s receive board runs
    /// (scheduled only when `cfg.reassembly_timeout` is set).
    RxReapTick {
        /// Node address.
        host: NodeId,
    },
    /// A retransmission timer on `host`'s protocol stack may have
    /// expired (reliable mode only).
    RetransTick {
        /// Node address.
        host: NodeId,
    },
}

impl Event {
    /// The node whose private state this event's handler mutates — the
    /// shard that must dispatch it under the parallel engine. `GenKick`
    /// drives node 0's generator (see `Testbed::gen_kick`).
    pub fn owner(&self) -> NodeId {
        match *self {
            Event::AppSend { host }
            | Event::TxKick { host }
            | Event::RxFlush { host, .. }
            | Event::RxInterrupt { host }
            | Event::RxDrain { host }
            | Event::TxWake { host }
            | Event::RxReapTick { host }
            | Event::RetransTick { host } => host,
            Event::CellArrival { to, .. } => to,
            Event::FabricTransit { to, .. } => to,
            Event::GenKick => NodeId(0),
        }
    }
}

/// Per-node interned track keys (see [`TbSyms`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeTracks {
    app: SymId,
    host: SymId,
    board_tx: SymId,
    board_rx: SymId,
}

/// Interned timeline keys for the dispatcher's hot path. Every event
/// dispatch emits an instant when the timeline is enabled; interning the
/// track and name strings once up front (resolved back to the identical
/// strings at export) keeps that emission allocation-free.
#[derive(Debug)]
pub(crate) struct TbSyms {
    nodes: Vec<NodeTracks>,
    gen: SymId,
    fabric: SymId,
    transit: SymId,
    send: SymId,
    kick: SymId,
    cell: SymId,
    flush: SymId,
    reap: SymId,
    intr: SymId,
    drain_start: SymId,
    wake: SymId,
    rto_tick: SymId,
    app_send: SymId,
    app_deliver: SymId,
    intr_service: SymId,
    drain: SymId,
    intr_wait: SymId,
}

impl TbSyms {
    /// Interns every track/name the dispatcher emits for `n` nodes.
    pub(crate) fn intern(timeline: &Timeline, n: usize) -> TbSyms {
        TbSyms {
            nodes: (0..n)
                .map(|i| NodeTracks {
                    app: timeline.intern(&format!("node{i}.app")),
                    host: timeline.intern(&format!("node{i}.host")),
                    board_tx: timeline.intern(&format!("node{i}.board.tx")),
                    board_rx: timeline.intern(&format!("node{i}.board.rx")),
                })
                .collect(),
            gen: timeline.intern("gen"),
            fabric: timeline.intern("fabric.switch"),
            transit: timeline.intern("transit"),
            send: timeline.intern("send"),
            kick: timeline.intern("kick"),
            cell: timeline.intern("cell"),
            flush: timeline.intern("flush"),
            reap: timeline.intern("reap"),
            intr: timeline.intern("intr"),
            drain_start: timeline.intern("drain start"),
            wake: timeline.intern("wake"),
            rto_tick: timeline.intern("rto tick"),
            app_send: timeline.intern("app.send"),
            app_deliver: timeline.intern("app.deliver"),
            intr_service: timeline.intern("intr service"),
            drain: timeline.intern("drain"),
            intr_wait: timeline.intern("intr.wait"),
        }
    }
}

/// Per-event-type dispatch counters, registered under
/// `engine.dispatch.<event>`. Every event is dispatched exactly once —
/// on the one shard owning its node under the parallel engine, or on
/// the single sequential queue — so these counters are
/// partition-invariant: the merged sharded values equal the sequential
/// ones, and the equivalence suite byte-compares them. They are the
/// engine's own workload mix made registry-visible (and sampleable as
/// rates by the telemetry plane).
#[derive(Debug, Clone)]
pub struct DispatchCounters {
    app_send: Counter,
    tx_kick: Counter,
    cell_arrival: Counter,
    rx_flush: Counter,
    rx_interrupt: Counter,
    rx_drain: Counter,
    tx_wake: Counter,
    fabric_transit: Counter,
    gen_kick: Counter,
    rx_reap_tick: Counter,
    retrans_tick: Counter,
}

impl DispatchCounters {
    /// Registers all eleven counters under `probe` (the builder passes
    /// `registry.probe("engine.dispatch")`).
    pub fn new(probe: &Probe) -> DispatchCounters {
        DispatchCounters {
            app_send: probe.counter("app_send"),
            tx_kick: probe.counter("tx_kick"),
            cell_arrival: probe.counter("cell_arrival"),
            rx_flush: probe.counter("rx_flush"),
            rx_interrupt: probe.counter("rx_interrupt"),
            rx_drain: probe.counter("rx_drain"),
            tx_wake: probe.counter("tx_wake"),
            fabric_transit: probe.counter("fabric_transit"),
            gen_kick: probe.counter("gen_kick"),
            rx_reap_tick: probe.counter("rx_reap_tick"),
            retrans_tick: probe.counter("retrans_tick"),
        }
    }

    /// The counter for `ev`'s variant.
    fn of(&self, ev: &Event) -> &Counter {
        match ev {
            Event::AppSend { .. } => &self.app_send,
            Event::TxKick { .. } => &self.tx_kick,
            Event::CellArrival { .. } => &self.cell_arrival,
            Event::RxFlush { .. } => &self.rx_flush,
            Event::RxInterrupt { .. } => &self.rx_interrupt,
            Event::RxDrain { .. } => &self.rx_drain,
            Event::TxWake { .. } => &self.tx_wake,
            Event::FabricTransit { .. } => &self.fabric_transit,
            Event::GenKick => &self.gen_kick,
            Event::RxReapTick { .. } => &self.rx_reap_tick,
            Event::RetransTick { .. } => &self.retrans_tick,
        }
    }
}

/// The assembled testbed (implements [`Model`]).
#[derive(Debug)]
pub struct Testbed {
    /// Configuration in force.
    pub cfg: TestbedConfig,
    /// Nodes, indexed by [`NodeId`].
    pub nodes: Vec<HostNode>,
    /// The cell transport between nodes.
    pub fabric: Box<dyn Fabric>,
    /// Round-trip samples (latency experiments).
    pub latency: LatencyStats,
    /// Round-trip distribution over the same samples — the tail
    /// (p99) is what loss turns pathological, so the loss sweep reads
    /// it from here rather than from the mean/min/max accumulator.
    pub latency_hist: DurationHistogram,
    /// Delivered-byte meter (throughput experiments).
    pub meter: ThroughputMeter,
    /// Set when the experiment's message budget is exhausted.
    pub done: bool,
    /// Payload-verification failures (must stay 0).
    pub verify_failures: u64,
    /// ADC management, one per node (when `cfg.data_path == Adc`).
    pub adc: Vec<AdcManager>,
    /// Optional event trace (smoltcp-style packet-dump facility);
    /// disabled by default, enable with `trace.set_enabled(true)`.
    pub trace: Trace,
    /// The shared metric registry every component publishes into, with
    /// per-node scopes (`node0.board.rx.cells`, `node1.bus.dma_words`).
    pub registry: Registry,
    /// Typed span/instant timeline (Chrome trace-event export); disabled
    /// by default, enable with `timeline.set_enabled(true)`.
    pub timeline: Timeline,
    /// Slab arena every in-flight cell lives in: events and the generator
    /// rings carry copyable [`CellRef`] handles, so a cell's 44-byte
    /// payload is written once at segmentation and never cloned again
    /// (`cells.slab_recycled` counts free-list reuse).
    pub cells: CellSlab,
    /// Interned timeline keys for the dispatcher's per-event instants and
    /// spans (zero string allocation on the hot path).
    pub(crate) syms: TbSyms,
    /// Largest early-visibility window any drain observed (diagnostic
    /// for the modelling note above; see `rx_drain`).
    pub max_drain_ahead: SimDuration,
    pub(crate) ping_sent_at: Option<SimTime>,
    pub(crate) deliver_to_meter: bool,
    /// Transmit bench: count bytes at the board instead of routing them.
    pub(crate) tx_meter: bool,
    /// Fan-in/fan-out runs complete when this many messages landed at
    /// sinks (0 = completion is source- or client-driven).
    pub(crate) expected_deliveries: u64,
    pub(crate) delivered_count: u64,
    /// Bound on the descriptor early-visibility window (one receive DMA
    /// grant: bus queueing + largest transfer).
    pub(crate) drain_ahead_bound: SimDuration,
    /// When each traced PDU's end-of-PDU descriptor reached the receive
    /// ring, keyed by `(node, ctx)` — the anchor for the `intr.wait`
    /// span (descriptor visible → drain thread runs).
    pub(crate) eop_pushed: HashMap<(usize, TraceCtx), SimTime>,
    /// End of the last `switch.q` span per `(ctx, port)`: fragments of
    /// one datagram pipeline through the switch, and spans on one track
    /// must never overlap.
    pub(crate) switch_span_floor: HashMap<(TraceCtx, usize), SimTime>,
    /// Whether a reap sweep is already scheduled per node (one pending
    /// sweep at a time keeps the event queue bounded).
    pub(crate) reap_scheduled: Vec<bool>,
    /// Consecutive sweeps per node that neither reclaimed a PDU nor
    /// pushed a descriptor — the re-arm cap's progress signal.
    pub(crate) reap_idle: Vec<u32>,
    /// Per-event-type dispatch counts (`engine.dispatch.*`), bumped once
    /// per handled event — the workload mix the telemetry plane samples.
    pub(crate) dispatch: DispatchCounters,
}

impl Testbed {
    /// Two hosts connected back-to-back (Table 1 and skew experiments).
    /// Node 0 is the ping client, node 1 the pong server.
    pub fn new_pair(cfg: TestbedConfig) -> Self {
        Scenario::Pair.build(cfg)
    }

    /// One host absorbing fictitious PDUs (Figures 2 and 3).
    pub fn new_rx_bench(cfg: TestbedConfig) -> Self {
        Scenario::RxBench.build(cfg)
    }

    /// One host streaming out (Figure 4); cells vanish at the far end of
    /// the link, so only the transmit side is measured.
    pub fn new_tx_bench(cfg: TestbedConfig) -> Self {
        Scenario::TxBench.build(cfg)
    }

    /// A deterministic read-out of every counter, gauge, and histogram
    /// the testbed's components registered.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Every node's transmit link (fault-injection statistics).
    pub fn links(&self) -> &[StripedLink] {
        self.fabric.links()
    }

    /// One domain crossing if the application is a plain user process.
    fn crossing_cost(&mut self, now: SimTime, host: NodeId) -> SimTime {
        if self.cfg.data_path == DataPath::UserViaKernel {
            let h = &mut self.nodes[host.0].host;
            h.run_software(now, h.spec.costs.syscall).finish
        } else {
            now
        }
    }

    /// The application prepares and queues one message.
    fn send_message(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        let layer = self.cfg.layer;
        let msg_size = self.cfg.msg_size;
        let mut t = {
            let h = &mut self.nodes[host.0].host;
            let app = h.spec.costs.app_fixed;
            h.run_software(now, app).finish
        };
        t = self.crossing_cost(t, host);

        let node = &mut self.nodes[host.0];
        let tx_vci = node.next_tx_vci();
        let data_base = node.msg_region.base.offset(self.cfg.data_offset);
        // Latency test programs construct the message before sending.
        if self.cfg.touch == TouchMode::WritePerMessage && msg_size > 0 {
            let pieces = node.asp.translate(data_base, msg_size).expect("translate");
            let pattern = std::mem::take(&mut node.pattern);
            let mut off = 0usize;
            for pb in &pieces {
                let end = off + pb.len as usize;
                t = node.host.cpu_write(t, pb.addr, &pattern[off..end]).finish;
                off = end;
            }
            node.pattern = pattern;
        }
        // Application-side work ends here; what follows is stack/driver
        // time charged (and traced) by the layers themselves.
        let t_app = t;
        let ctx;
        match layer {
            Layer::RawAtm => {
                let bufs = node
                    .asp
                    .translate(data_base, msg_size.max(1))
                    .expect("message translate");
                let c = TraceCtx {
                    host: host.0 as u16,
                    pdu: node.raw_ctx_seq,
                };
                node.raw_ctx_seq += 1;
                ctx = Some(c);
                node.pending_pkts.push_back((tx_vci, bufs, Some(c)));
            }
            Layer::UdpIp => {
                let data = osiris_proto::msg::Message::single(data_base, msg_size as u32);
                // Source/destination come from the node's open path.
                let entry = node
                    .paths
                    .by_local_port(node.local_port)
                    .expect("path open")
                    .1;
                let (src, dst, dst_host) = (
                    entry.ports.local_port,
                    entry.ports.remote_port,
                    entry.ports.remote_host,
                );
                let (pkts, t2) = node
                    .stack
                    .output(t, &mut node.host, &node.asp, data, src, dst, dst_host)
                    .expect("stack output");
                t = t2;
                ctx = pkts.first().map(|p| p.ctx);
                for p in &pkts {
                    let bufs = node.stack.to_phys(&node.asp, p).expect("translate packet");
                    node.pending_pkts.push_back((tx_vci, bufs, Some(p.ctx)));
                }
            }
        }
        if self.timeline.is_enabled() {
            if let Some(c) = ctx {
                let node = &mut self.nodes[host.0];
                let from = now.max(node.app_span_floor);
                if t_app > from {
                    self.timeline.span_ctx_sym(
                        self.syms.nodes[host.0].app,
                        self.syms.app_send,
                        c,
                        from,
                        t_app,
                    );
                    node.app_span_floor = t_app;
                }
            }
        }
        self.pump_tx(t, host, q);
        // Reliable mode: the stack registered the datagram; make sure a
        // timer event exists for its RTO expiry.
        if self.cfg.reliable && layer == Layer::UdpIp {
            self.arm_retransmit(t, host, q);
        }
    }

    /// Schedules a retransmit tick at the stack's earliest RTO expiry.
    fn arm_retransmit(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        if let Some(at) = self.nodes[host.0].stack.next_retransmit_at() {
            q.push(at.max(now), Event::RetransTick { host });
        }
    }

    /// A retransmission timer fires: re-send every datagram whose RTO
    /// expired (the stack doubles its backoff), then re-arm at the next
    /// expiry. Abandoned datagrams (`max_retries`) stop re-arming, which
    /// bounds every run.
    fn retrans_tick(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        let node = &mut self.nodes[host.0];
        let pkts = node.stack.poll_retransmit(now);
        if !pkts.is_empty() {
            // Every reliable sender's data travels its primary
            // connection (acks, the only multi-connection traffic, are
            // never registered for retransmission).
            let vci = node.tx_vcis[0];
            for p in &pkts {
                let bufs = node
                    .stack
                    .to_phys(&node.asp, p)
                    .expect("translate retransmit");
                node.pending_pkts.push_back((vci, bufs, Some(p.ctx)));
            }
            self.pump_tx(now, host, q);
        }
        self.arm_retransmit(now, host, q);
    }

    /// Receiver half of reliable mode: a 4-byte ack datagram back to
    /// `dst_host`, enqueued like any other packet on the VCI that
    /// reaches that host.
    fn send_ack(
        &mut self,
        now: SimTime,
        host: NodeId,
        acked_id: u32,
        dst_host: u16,
        q: &mut EventQueue<Event>,
    ) -> SimTime {
        let node = &mut self.nodes[host.0];
        let (pkts, t) = node
            .stack
            .output_ack(now, &mut node.host, &node.asp, acked_id, dst_host)
            .expect("ack output");
        let vci = node
            .tx_vci_of_host
            .get(&dst_host)
            .copied()
            .unwrap_or(node.tx_vcis[0]);
        for p in &pkts {
            let bufs = node.stack.to_phys(&node.asp, p).expect("translate ack");
            node.pending_pkts.push_back((vci, bufs, Some(p.ctx)));
        }
        self.pump_tx(t, host, q);
        t
    }

    /// Pushes pending packets into the transmit ring until blocked.
    fn pump_tx(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        let node = &mut self.nodes[host.0];
        let mut t = now;
        let mut queued_any = false;
        while let Some((vci, bufs, ctx)) = node.pending_pkts.pop_front() {
            let wire_from = node.msg_region;
            let out: SendOutcome = node.driver.send_pdu(
                t,
                &mut node.host,
                &mut node.tx,
                vci,
                &bufs,
                Some((&mut node.asp, wire_from.base, wire_from.len)),
                ctx,
            );
            if out.blocked {
                node.pending_pkts.push_front((vci, bufs, ctx));
                break;
            }
            t = out.queued_at;
            queued_any = true;
        }
        if queued_any {
            q.push(t, Event::TxKick { host });
        }
    }

    /// Runs the transmit processor for one PDU.
    fn tx_kick(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        let node = &mut self.nodes[host.0];
        let link = self.fabric.link_mut(host);
        let Some(out) = node.tx.service(
            now,
            &mut node.host.mem_sys,
            &node.host.phys,
            link,
            &mut self.cells,
        ) else {
            return;
        };
        if self.tx_meter {
            // Transmit bench: count bytes as the board finishes them. The
            // cells vanish at the far end, so their slab slots recycle now.
            for (_, _, r) in out.arrivals {
                self.cells.free(r);
            }
            if node.role == Role::Source && !out.violation {
                self.meter.record(out.finished_at, out.pdu_bytes);
            }
        } else if self.fabric.is_switched() {
            // Switched fabric: routing is an *event* at the cell's
            // wire-arrival time, not a call at transmit-kick time. The
            // switch's output queues then contend in arrival order —
            // the order the hardware sees — rather than in the order
            // transmit batches happen to finish, and the contention
            // resolves on the shard owning the destination's port block.
            for (at, lane, r) in out.arrivals {
                let to = self
                    .fabric
                    .peek_dest(host, self.cells.get(r))
                    // No route installed: dispatch (and count the drop)
                    // on the sender's own shard.
                    .unwrap_or(host);
                q.push(
                    at,
                    Event::FabricTransit {
                        from: host,
                        to,
                        lane,
                        cell: r,
                    },
                );
            }
        } else {
            // Back-to-back links: routing is stateless (a fixed peer, no
            // queues), so the inline call order cannot matter and the
            // historical transmit-time routing is kept byte-for-byte.
            for (at, lane, r) in out.arrivals {
                if let Some(d) = self.fabric.route(host, at, lane, self.cells.get(r)) {
                    q.push(
                        d.at,
                        Event::CellArrival {
                            to: d.to,
                            lane: d.lane,
                            cell: r,
                        },
                    );
                } else {
                    // No peer: recycle the slot.
                    self.cells.free(r);
                }
            }
        }
        if let Some(at) = out.wake_host_at {
            q.push(at, Event::TxWake { host });
        }
        if out.more_work {
            q.push(out.finished_at, Event::TxKick { host });
        }
        // A Source starts its next message once the current one is fully
        // queued (pending empty) — the ring, not the app, is the governor.
        let node = &mut self.nodes[host.0];
        if node.role == Role::Source && node.pending_pkts.is_empty() {
            if node.remaining > 0 {
                node.remaining -= 1;
                q.push(out.finished_at, Event::AppSend { host });
            } else if !out.more_work && self.expected_deliveries == 0 {
                // Sink-terminated runs (incast/fan-out) finish when the
                // receivers have seen everything, not when a source idles.
                self.done = true;
            }
        }
    }

    /// A cell reaches the switch input: run the stateful route (queueing,
    /// port counters, overflow) and schedule the resulting arrival at the
    /// destination, or recycle the slot if the cell has nowhere to go.
    /// `switch.q` timeline spans are emitted per cell here, clamped by
    /// the same `(ctx, destination)` floor the transmit-batch windows
    /// used, so spans on one port track never run backwards.
    fn fabric_transit(
        &mut self,
        now: SimTime,
        from: NodeId,
        lane: usize,
        r: CellRef,
        q: &mut EventQueue<Event>,
    ) {
        if let Some(d) = self.fabric.route(from, now, lane, self.cells.get(r)) {
            if self.timeline.is_enabled() && d.at > now {
                if let Some(c) = self.cells.get(r).ctx {
                    let floor = self.switch_span_floor.entry((c, d.to.0)).or_default();
                    let span_from = now.max(*floor);
                    if d.at > span_from {
                        self.timeline.span_ctx(
                            &format!("fabric.switch.port{}", d.to.0),
                            "switch.q",
                            c,
                            span_from,
                            d.at,
                        );
                        *floor = d.at;
                    }
                }
            }
            q.push(
                d.at,
                Event::CellArrival {
                    to: d.to,
                    lane: d.lane,
                    cell: r,
                },
            );
        } else {
            // Unrouted or overflow-dropped: recycle the slot.
            self.cells.free(r);
        }
    }

    /// Feeds one cell into a node's receive half, consuming its slab
    /// handle (the slot recycles as soon as the payload is DMAed).
    fn cell_arrival(
        &mut self,
        now: SimTime,
        host: NodeId,
        lane: usize,
        r: CellRef,
        q: &mut EventQueue<Event>,
    ) {
        let node = &mut self.nodes[host.0];
        let out = node.rx.receive_cell_ref(
            now,
            lane,
            r,
            &mut self.cells,
            &mut node.host.mem_sys,
            &mut node.host.cache,
            &mut node.host.phys,
        );
        node.note_rx_pushes(&out.pushed);
        if self.timeline.is_enabled() {
            // Anchor for the interrupt-delivery wait: once the PDU's
            // end-of-PDU descriptor is visible, it sits in the ring until
            // the drain thread runs (§2.1.2 suppression shows up here).
            for (t, _, d) in &out.pushed {
                if d.eop {
                    if let Some(c) = d.ctx {
                        self.eop_pushed.insert((host.0, c), *t);
                    }
                }
            }
        }
        if let Some((gen, at)) = out.flush_deadline {
            q.push(at, Event::RxFlush { host, gen });
        }
        if let Some(at) = out.interrupt_at {
            q.push(at, Event::RxInterrupt { host });
        }
        // A partial PDU now exists (or may); make sure a reap sweep is
        // scheduled one timeout from now.
        if let Some(to) = self.cfg.reassembly_timeout {
            if !self.reap_scheduled[host.0] {
                self.reap_scheduled[host.0] = true;
                q.push(now + to, Event::RxReapTick { host });
            }
        }
    }

    /// The reassembly-timeout sweep: reap stale partial PDUs on the
    /// board, process the outcome like any receive event (the closer
    /// descriptors may assert an interrupt), and re-arm while partial
    /// state remains. A no-progress cap stops re-arming when the board
    /// is wedged *and* idle — the next real cell arrival re-arms.
    fn rx_reap_tick(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        const MAX_IDLE_SWEEPS: u32 = 64;
        self.reap_scheduled[host.0] = false;
        let Some(to) = self.cfg.reassembly_timeout else {
            return;
        };
        let node = &mut self.nodes[host.0];
        let before = node.rx.partial_pdus();
        let out = node.rx.reap_stale(now);
        node.note_rx_pushes(&out.pushed);
        if let Some((gen, at)) = out.flush_deadline {
            q.push(at, Event::RxFlush { host, gen });
        }
        if let Some(at) = out.interrupt_at {
            q.push(at, Event::RxInterrupt { host });
        }
        let node = &self.nodes[host.0];
        let after = node.rx.partial_pdus();
        if after < before || !out.pushed.is_empty() {
            self.reap_idle[host.0] = 0;
        } else {
            self.reap_idle[host.0] += 1;
        }
        if after > 0 && self.reap_idle[host.0] < MAX_IDLE_SWEEPS {
            self.reap_scheduled[host.0] = true;
            q.push(now + to, Event::RxReapTick { host });
        }
    }

    /// Interrupt: charge the handler + thread dispatch, then schedule the
    /// drain at the time the thread actually starts running. Keeping these
    /// as separate events matters: descriptors pushed while the 75 µs
    /// handler runs must still see a non-empty ring (no interrupt), which
    /// is the §2.1.2 burst-suppression effect.
    fn rx_interrupt(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        let t = interrupt_to_thread(now, &mut self.nodes[host.0].host);
        if self.timeline.is_enabled() {
            self.timeline
                .span_sym(self.syms.nodes[host.0].host, self.syms.intr_service, now, t);
        }
        q.push(t, Event::RxDrain { host });
    }

    /// The drain thread: pop everything, run protocol input, deliver.
    fn rx_drain(&mut self, now: SimTime, host: NodeId, q: &mut EventQueue<Event>) {
        // The modelling note's early-visibility window, enforced: every
        // descriptor stamp is a grant finish on the memory bus or the
        // receive engine, so the drain may observe stamps ahead of `now`
        // (by the bus backlog) but never more than one receive DMA grant
        // beyond the machine's committed-work horizon.
        {
            let node = &mut self.nodes[host.0];
            let committed = node
                .host
                .mem_sys
                .bus()
                .free_at()
                .max(node.rx.engine_free_at())
                .max(now);
            let ahead = node.rx_push_horizon.saturating_since(committed);
            if ahead > self.max_drain_ahead {
                self.max_drain_ahead = ahead;
            }
            debug_assert!(
                ahead <= self.drain_ahead_bound,
                "drain at {now:?} observed a descriptor {ahead:?} beyond the \
                 committed-work horizon {committed:?} \
                 (bound: one DMA grant = {:?})",
                self.drain_ahead_bound
            );
            // The drain pops every pushed descriptor, so the window
            // restarts empty.
            node.rx_push_horizon = SimTime::ZERO;
        }
        let drained = {
            let node = &mut self.nodes[host.0];
            node.driver.drain_receive(now, &mut node.host, &mut node.rx)
        };
        if self.timeline.is_enabled() {
            self.timeline.span_sym(
                self.syms.nodes[host.0].host,
                self.syms.drain,
                now,
                drained.finished_at,
            );
            // Interrupt-delivery wait per drained PDU: eop descriptor
            // visible → drain start. One resource (the host CPU's
            // interrupt path), so spans are clamped to never overlap.
            for pdu in &drained.delivered {
                let Some(c) = pdu.ctx else { continue };
                let Some(pushed) = self.eop_pushed.remove(&(host.0, c)) else {
                    continue;
                };
                let node = &mut self.nodes[host.0];
                let from = pushed.max(node.intr_wait_floor);
                if now > from {
                    self.timeline.span_ctx_sym(
                        self.syms.nodes[host.0].host,
                        self.syms.intr_wait,
                        c,
                        from,
                        now,
                    );
                    node.intr_wait_floor = now;
                }
            }
        }
        for pdu in drained.delivered {
            self.handle_pdu(host, pdu, q);
        }
    }

    fn handle_pdu(&mut self, host: NodeId, pdu: DeliveredPdu, q: &mut EventQueue<Event>) {
        match self.cfg.layer {
            Layer::RawAtm => {
                let t = pdu.ready_at;
                let len = pdu.len as u64;
                let ctx = pdu.ctx;
                let ok = !self.cfg.verify_data || self.verify_raw(host, &pdu);
                if !ok {
                    self.verify_failures += 1;
                }
                let descs = pdu.bufs;
                let t2 = {
                    let node = &mut self.nodes[host.0];
                    node.driver.recycle(t, &mut node.host, &mut node.rx, &descs)
                };
                self.deliver_app(t2, host, len, ctx, q);
            }
            Layer::UdpIp => {
                let t = pdu.ready_at;
                let (verdict, t2) = {
                    let node = &mut self.nodes[host.0];
                    node.stack.input(t, &mut node.host, &pdu)
                };
                match verdict {
                    RxVerdict::Incomplete => {}
                    RxVerdict::Drop { descs, .. } => {
                        let node = &mut self.nodes[host.0];
                        node.driver
                            .recycle(t2, &mut node.host, &mut node.rx, &descs);
                    }
                    RxVerdict::Ack { descs, .. } => {
                        // The stack already released the acked datagram.
                        let node = &mut self.nodes[host.0];
                        node.driver
                            .recycle(t2, &mut node.host, &mut node.rx, &descs);
                    }
                    RxVerdict::Duplicate { src, id, descs } => {
                        // Already delivered once — our ack was lost.
                        // Suppress the duplicate but re-ack it.
                        let t3 = {
                            let node = &mut self.nodes[host.0];
                            node.driver
                                .recycle(t2, &mut node.host, &mut node.rx, &descs)
                        };
                        self.send_ack(t3, host, id, src, q);
                    }
                    RxVerdict::Deliver {
                        src,
                        ctx,
                        dst_port,
                        data,
                        descs,
                        len,
                    } => {
                        // x-kernel delivery demultiplexing: the datagram's
                        // destination port must name an open path on this
                        // host (bound to this VCI at connection setup).
                        debug_assert!(
                            self.nodes[host.0].paths.by_local_port(dst_port).is_some(),
                            "no path for port {dst_port}"
                        );
                        if self.cfg.verify_data && !self.verify_msg(host, src, &data, len) {
                            self.verify_failures += 1;
                        }
                        let t3 = {
                            let node = &mut self.nodes[host.0];
                            node.driver
                                .recycle(t2, &mut node.host, &mut node.rx, &descs)
                        };
                        // Reliable mode: ack before the app consumes —
                        // the sender's timer is running.
                        let t4 = if self.cfg.reliable {
                            self.send_ack(t3, host, ctx.pdu, src, q)
                        } else {
                            t3
                        };
                        self.deliver_app(t4, host, len, Some(ctx), q);
                    }
                }
            }
        }
    }

    /// The node whose payload pattern `host` should expect from wire
    /// address `src` (a bench node generating its own traffic names
    /// itself — its fictitious sender has no node).
    fn src_node(&self, host: NodeId, src: u16) -> NodeId {
        if (src as usize) < self.nodes.len() {
            NodeId(src as usize)
        } else {
            host
        }
    }

    fn verify_raw(&self, host: NodeId, pdu: &DeliveredPdu) -> bool {
        let node = &self.nodes[host.0];
        let src = node.src_of_vci.get(&pdu.vci).copied().unwrap_or(host);
        let expect = &self.nodes[src.0].pattern;
        let mut off = 0usize;
        for d in &pdu.bufs {
            let got = node.host.phys.read(d.addr, d.len as usize);
            if got != &expect[off..off + d.len as usize] {
                return false;
            }
            off += d.len as usize;
        }
        off == expect.len()
    }

    fn verify_msg(
        &self,
        host: NodeId,
        src: u16,
        data: &osiris_proto::msg::Message<osiris_mem::PhysAddr>,
        len: u64,
    ) -> bool {
        let expect = &self.nodes[self.src_node(host, src).0].pattern;
        if len != expect.len() as u64 {
            return false;
        }
        let node = &self.nodes[host.0];
        let mut off = 0usize;
        for seg in data.segs() {
            let got = node.host.phys.read(seg.addr, seg.len as usize);
            if got != &expect[off..off + seg.len as usize] {
                return false;
            }
            off += seg.len as usize;
        }
        true
    }

    /// The application consumes a delivered message.
    fn deliver_app(
        &mut self,
        now: SimTime,
        host: NodeId,
        len: u64,
        ctx: Option<TraceCtx>,
        q: &mut EventQueue<Event>,
    ) {
        let mut t = {
            let h = &mut self.nodes[host.0].host;
            let app = h.spec.costs.app_fixed;
            h.run_software(now, app).finish
        };
        t = self.crossing_cost(t, host);
        if self.timeline.is_enabled() {
            if let Some(c) = ctx {
                let node = &mut self.nodes[host.0];
                let from = now.max(node.app_span_floor);
                if t > from {
                    self.timeline.span_ctx_sym(
                        self.syms.nodes[host.0].app,
                        self.syms.app_deliver,
                        c,
                        from,
                        t,
                    );
                    node.app_span_floor = t;
                }
            }
        }
        if self.deliver_to_meter {
            self.meter.record(t, len);
        }
        match self.nodes[host.0].role {
            Role::PongServer => {
                self.send_message(t, host, q);
            }
            Role::PingClient => {
                if let Some(sent) = self.ping_sent_at.take() {
                    let rtt = t.since(sent);
                    self.latency.record(rtt);
                    self.latency_hist.record(rtt);
                }
                let node = &mut self.nodes[host.0];
                node.remaining = node.remaining.saturating_sub(1);
                if node.remaining > 0 {
                    q.push(t, Event::AppSend { host });
                } else {
                    self.done = true;
                }
            }
            Role::Sink => {
                self.delivered_count += 1;
                if self.expected_deliveries > 0 && self.delivered_count >= self.expected_deliveries
                {
                    self.done = true;
                }
            }
            Role::Generator => {
                let node = &mut self.nodes[host.0];
                if node.gen_stalled {
                    node.gen_stalled = false;
                    q.push(t, Event::GenKick);
                }
                if node.remaining == 0 && node.gen_frags.is_empty() {
                    self.done = true;
                }
            }
            Role::Source | Role::Idle => {}
        }
    }

    /// Builds the next message's fragments as cells for the generator.
    fn gen_build_next(&mut self, host: NodeId) {
        let cfg_proto = ProtoConfig {
            mtu: self.cfg.mtu,
            udp_checksum: self.cfg.udp_checksum,
            ..ProtoConfig::paper_default()
        };
        let node = &mut self.nodes[host.0];
        let id = node.gen_next_id;
        node.gen_next_id += 1;
        let framing = HostNode::framing(&self.cfg);
        let seg = Segmenter {
            framing,
            unit: SegmentUnit::Pdu,
        };
        // Generator PDUs carry the identity the receiving stack re-mints
        // from the wire IP header: (src=1, id) — see `build_wire_pdus`.
        let ctx = TraceCtx { host: 1, pdu: id };
        match self.cfg.layer {
            Layer::UdpIp => {
                // The fictitious sender addresses this host's open path.
                let pdus = ProtoStack::build_wire_pdus(cfg_proto, id, 2000, 1000, &node.pattern);
                for p in pdus {
                    let cells = seg.segment(node.vci, &[&p]);
                    let mut refs = Vec::with_capacity(cells.len());
                    for mut c in cells {
                        c.ctx = Some(ctx);
                        refs.push(self.cells.insert(c));
                    }
                    node.gen_frags.push_back(refs);
                }
            }
            Layer::RawAtm => {
                let cells = seg.segment(node.vci, &[&node.pattern]);
                let mut refs = Vec::with_capacity(cells.len());
                for mut c in cells {
                    c.ctx = Some(ctx);
                    refs.push(self.cells.insert(c));
                }
                node.gen_frags.push_back(refs);
            }
        }
    }

    /// One generator step: feed a small batch of cells.
    ///
    /// The batch size and the bus-backlog gate model the physical
    /// coupling: the receive processor can only issue a DMA command once
    /// the previous one has drained from its (shallow) command queue, so
    /// the generator never runs hundreds of transactions ahead of the
    /// bus. Without this gate, host software's memory traffic would queue
    /// behind a whole fragment of pre-reserved DMA — a modelling artefact
    /// real per-transaction bus arbitration does not have.
    fn gen_kick(&mut self, now: SimTime, q: &mut EventQueue<Event>) {
        const BATCH: usize = 32;
        let host = NodeId(0);
        if self.nodes[host.0].gen_frags.is_empty() {
            if self.nodes[host.0].remaining == 0 {
                return;
            }
            self.nodes[host.0].remaining -= 1;
            self.gen_build_next(host);
        }
        // Flow control: need free buffers before generating into them.
        {
            let node = &mut self.nodes[host.0];
            let page = node.driver.page;
            if node.rx.free_ring(page).len() < 2 {
                node.gen_stalled = true;
                return;
            }
        }
        // Don't outrun the bus: if the DMA backlog extends more than a
        // batch's worth of cell time past `now`, retry when it drains.
        let bus_free = self.nodes[host.0].host.mem_sys.bus().free_at();
        let slack = osiris_sim::SimDuration::from_ns(760 * 6 * BATCH as u64);
        if bus_free > now + slack {
            q.push(bus_free - slack, Event::GenKick);
            return;
        }
        // Feed the batch by handle, one re-borrow per cell — `CellRef` is
        // Copy, so nothing is cloned out of the fragment (the receive
        // path consumes each slab slot as it processes the cell).
        let (start, end, frag_len) = {
            let node = &self.nodes[host.0];
            let frag_len = node.gen_frags.front().expect("non-empty").len();
            let start = node.gen_pos;
            (start, (start + BATCH).min(frag_len), frag_len)
        };
        for idx in start..end {
            let r = self.nodes[host.0].gen_frags.front().expect("non-empty")[idx];
            let lane = match self.cfg.reassembly {
                ReassemblyMode::FourWay { lanes } => idx % lanes as usize,
                _ => 0,
            };
            self.cell_arrival(now, host, lane, r, q);
        }
        let node = &mut self.nodes[host.0];
        if end == frag_len {
            node.gen_frags.pop_front();
            node.gen_pos = 0;
        } else {
            node.gen_pos = end;
        }
        let next = self.nodes[host.0].rx.engine_free_at();
        q.push(next.max(now), Event::GenKick);
    }
}

impl Model for Testbed {
    type Event = Event;

    fn handle(&mut self, now: SimTime, ev: Event, q: &mut EventQueue<Event>) {
        self.trace.emit(now, || match &ev {
            Event::AppSend { host } => format!("app[{host}] send"),
            Event::TxKick { host } => format!("tx[{host}] kick"),
            Event::CellArrival { to, lane, cell } => {
                let c = self.cells.get(*cell);
                format!(
                    "rx[{to}] cell vci={} seq={} lane={lane}{}",
                    c.header.vci.0,
                    c.aal.seq,
                    if c.aal.eom { " EOM" } else { "" }
                )
            }
            Event::FabricTransit { from, to, lane, .. } => {
                format!("fabric[{from}->{to}] transit lane={lane}")
            }
            Event::RxFlush { host, gen } => format!("rx[{host}] flush gen={gen}"),
            Event::RxInterrupt { host } => format!("intr[{host}] asserted"),
            Event::RxDrain { host } => format!("drain[{host}] runs"),
            Event::TxWake { host } => format!("wake[{host}] half-empty"),
            Event::GenKick => "generator kick".to_string(),
            Event::RxReapTick { host } => format!("reap[{host}] sweep"),
            Event::RetransTick { host } => format!("rto[{host}] tick"),
        });
        if self.timeline.is_enabled() {
            let s = &self.syms;
            match &ev {
                Event::AppSend { host } => {
                    self.timeline.instant_sym(s.nodes[host.0].app, s.send, now)
                }
                Event::TxKick { host } => {
                    self.timeline
                        .instant_sym(s.nodes[host.0].board_tx, s.kick, now)
                }
                Event::CellArrival { to, .. } => {
                    self.timeline
                        .instant_sym(s.nodes[to.0].board_rx, s.cell, now)
                }
                Event::FabricTransit { .. } => self.timeline.instant_sym(s.fabric, s.transit, now),
                Event::RxFlush { host, .. } => {
                    self.timeline
                        .instant_sym(s.nodes[host.0].board_rx, s.flush, now)
                }
                Event::RxInterrupt { host } => {
                    self.timeline.instant_sym(s.nodes[host.0].host, s.intr, now)
                }
                Event::RxDrain { host } => {
                    self.timeline
                        .instant_sym(s.nodes[host.0].host, s.drain_start, now)
                }
                Event::TxWake { host } => {
                    self.timeline.instant_sym(s.nodes[host.0].host, s.wake, now)
                }
                Event::GenKick => self.timeline.instant_sym(s.gen, s.kick, now),
                Event::RxReapTick { host } => {
                    self.timeline
                        .instant_sym(s.nodes[host.0].board_rx, s.reap, now)
                }
                Event::RetransTick { host } => {
                    self.timeline
                        .instant_sym(s.nodes[host.0].host, s.rto_tick, now)
                }
            }
        }
        self.dispatch.of(&ev).incr();
        match ev {
            Event::AppSend { host } => {
                if self.nodes[host.0].role == Role::PingClient {
                    self.ping_sent_at = Some(now);
                }
                self.send_message(now, host, q);
            }
            Event::TxKick { host } => self.tx_kick(now, host, q),
            Event::CellArrival { to, lane, cell } => self.cell_arrival(now, to, lane, cell, q),
            Event::FabricTransit {
                from, lane, cell, ..
            } => self.fabric_transit(now, from, lane, cell, q),
            Event::RxFlush { host, gen } => {
                let node = &mut self.nodes[host.0];
                node.rx.flush_pending(
                    now,
                    gen,
                    &mut node.host.mem_sys,
                    &mut node.host.cache,
                    &mut node.host.phys,
                );
            }
            Event::RxInterrupt { host } => self.rx_interrupt(now, host, q),
            Event::RxDrain { host } => self.rx_drain(now, host, q),
            Event::TxWake { host } => {
                // The wakeup is a real interrupt (§2.1.2).
                let t = self.nodes[host.0].host.take_interrupt(now).finish;
                self.pump_tx(t, host, q);
            }
            Event::GenKick => self.gen_kick(now, q),
            Event::RxReapTick { host } => self.rx_reap_tick(now, host, q),
            Event::RetransTick { host } => self.retrans_tick(now, host, q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_sim::Simulation;

    fn run_pair(mut cfg: TestbedConfig) -> Testbed {
        cfg.messages = 4;
        let tb = Testbed::new_pair(cfg);
        let mut sim = Simulation::new(tb);
        sim.queue
            .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
        let reached = sim.run_while(|m| !m.done);
        assert!(reached, "experiment must complete (queue drained early?)");
        assert!(sim.now() < SimTime::from_secs(10), "runaway simulation");
        sim.model
    }

    #[test]
    fn ping_pong_raw_atm_completes_with_data_intact() {
        let tb = run_pair(TestbedConfig::ds5000_200_atm());
        assert_eq!(tb.latency.count(), 4);
        assert_eq!(tb.verify_failures, 0);
        assert!(
            tb.latency.mean_us() > 50.0,
            "RTT {} too small",
            tb.latency.mean_us()
        );
    }

    #[test]
    fn ping_pong_udp_completes_with_data_intact() {
        let tb = run_pair(TestbedConfig::ds5000_200_udp());
        assert_eq!(tb.latency.count(), 4);
        assert_eq!(tb.verify_failures, 0);
        // UDP costs more than raw ATM.
        let atm = run_pair(TestbedConfig::ds5000_200_atm());
        assert!(tb.latency.mean_us() > atm.latency.mean_us());
    }

    #[test]
    fn alpha_is_faster_than_decstation() {
        let ds = run_pair(TestbedConfig::ds5000_200_udp());
        let ax = run_pair(TestbedConfig::dec3000_600_udp());
        assert!(
            ax.latency.mean_us() < ds.latency.mean_us(),
            "Alpha {} vs DS {}",
            ax.latency.mean_us(),
            ds.latency.mean_us()
        );
    }

    #[test]
    fn larger_messages_take_longer() {
        let mut small = TestbedConfig::ds5000_200_atm();
        small.msg_size = 1;
        let mut large = TestbedConfig::ds5000_200_atm();
        large.msg_size = 4096;
        let s = run_pair(small);
        let l = run_pair(large);
        assert!(l.latency.mean_us() > s.latency.mean_us() + 50.0);
    }

    #[test]
    fn multi_fragment_message_roundtrips() {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 50_000; // 4 fragments
        let tb = run_pair(cfg);
        assert_eq!(tb.verify_failures, 0);
        assert_eq!(tb.latency.count(), 4);
    }

    #[test]
    fn rx_bench_reaches_steady_state() {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 16 * 1024;
        cfg.messages = 12;
        cfg.warmup = 2;
        let mut tb = Testbed::new_rx_bench(cfg);
        tb.meter = ThroughputMeter::new(2);
        let mut sim = Simulation::new(tb);
        sim.queue.push(SimTime::ZERO, Event::GenKick);
        assert!(sim.run_while(|m| !m.done));
        let mbps = sim.model.meter.mbps();
        assert!(
            (100.0..600.0).contains(&mbps),
            "DS receive throughput {mbps} Mbps out of plausible band"
        );
        assert_eq!(sim.model.verify_failures, 0);
    }

    #[test]
    fn tx_bench_reaches_steady_state() {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 16 * 1024;
        cfg.messages = 12;
        let mut tb = Testbed::new_tx_bench(cfg);
        tb.meter = ThroughputMeter::new(2);
        let mut sim = Simulation::new(tb);
        sim.queue
            .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
        sim.model.nodes[0].decrement_remaining(); // the seeded AppSend is message 1
        assert!(sim.run_while(|m| !m.done), "tx bench stalled");
        let mbps = sim.model.meter.mbps();
        assert!(
            (100.0..400.0).contains(&mbps),
            "DS transmit throughput {mbps} Mbps out of plausible band"
        );
    }

    #[test]
    fn adc_path_matches_kernel_latency() {
        // §4: "the measured results were within the error margins of those
        // obtained in the kernel-to-kernel case".
        let mut k = TestbedConfig::ds5000_200_udp();
        k.msg_size = 1024;
        let kernel = run_pair(k);
        let mut a = TestbedConfig::ds5000_200_udp();
        a.msg_size = 1024;
        a.data_path = DataPath::Adc;
        let adc = run_pair(a);
        let (lk, la) = (kernel.latency.mean_us(), adc.latency.mean_us());
        assert!(
            (la - lk).abs() / lk < 0.05,
            "ADC {la} must be within 5% of kernel {lk}"
        );
        // While a plain user process pays crossings.
        let mut u = TestbedConfig::ds5000_200_udp();
        u.msg_size = 1024;
        u.data_path = DataPath::UserViaKernel;
        let user = run_pair(u);
        assert!(
            user.latency.mean_us() > lk + 50.0,
            "user path must be slower"
        );
    }

    #[test]
    fn trace_captures_the_event_timeline() {
        let mut cfg = TestbedConfig::ds5000_200_atm();
        cfg.msg_size = 100;
        cfg.messages = 1;
        let mut tb = Testbed::new_pair(cfg);
        tb.trace.set_enabled(true);
        let mut sim = Simulation::new(tb);
        sim.queue
            .push(SimTime::ZERO, Event::AppSend { host: NodeId(0) });
        assert!(sim.run_while(|m| !m.done));
        let dump = sim.model.trace.dump();
        for needle in [
            "app[0] send",
            "tx[0] kick",
            "rx[1] cell",
            "EOM",
            "intr[1]",
            "drain[1]",
        ] {
            assert!(dump.contains(needle), "trace missing {needle:?}:\n{dump}");
        }
        // Timestamps are non-decreasing.
        let times: Vec<SimTime> = sim.model.trace.records().map(|(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn skewed_link_with_fourway_reassembly_delivers() {
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.skew = osiris_atm::stripe::SkewConfig::mux_skew(9);
        cfg.reassembly = ReassemblyMode::FourWay { lanes: 4 };
        cfg.msg_size = 8000;
        let tb = run_pair(cfg);
        assert_eq!(tb.verify_failures, 0);
        assert_eq!(tb.latency.count(), 4);
    }

    #[test]
    fn pair_over_switched_fabric_matches_completion() {
        // The same ping-pong routed through the switch: still completes
        // with data intact, and the switch's port counters saw the cells.
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.switched_fabric = true;
        let tb = run_pair(cfg);
        assert_eq!(tb.verify_failures, 0);
        assert_eq!(tb.latency.count(), 4);
        let snap = tb.snapshot();
        let fabric_cells: u64 = (0..8)
            .map(|p| snap.counter(&format!("fabric.switch.port{p}.cells")))
            .sum();
        assert!(fabric_cells > 0, "cells must have crossed the switch");
        assert_eq!(snap.counter("fabric.switch.unrouted"), 0);
    }

    #[test]
    fn drain_never_observes_beyond_one_dma_grant() {
        // Satellite regression: the documented early-visibility skew is
        // bounded. Exercise the tightest producer (the rx bench generator
        // saturating the engine) and a pair, and check the observed
        // maximum against the bound the testbed enforces.
        let mut cfg = TestbedConfig::ds5000_200_udp();
        cfg.msg_size = 16 * 1024;
        cfg.messages = 8;
        let mut tb = Testbed::new_rx_bench(cfg);
        tb.meter = ThroughputMeter::new(1);
        let mut sim = Simulation::new(tb);
        sim.queue.push(SimTime::ZERO, Event::GenKick);
        assert!(sim.run_while(|m| !m.done));
        let m = &sim.model;
        assert!(
            m.max_drain_ahead <= m.drain_ahead_bound,
            "observed {:?} > bound {:?}",
            m.max_drain_ahead,
            m.drain_ahead_bound
        );
        // The bound is one DMA grant, not zero: the window genuinely
        // exists (otherwise the modelling note is stale).
        assert!(m.drain_ahead_bound > SimDuration::ZERO);
    }
}
