//! Sharded conservative-lookahead parallel engine.
//!
//! The sequential engine ([`crate::scenario::Scenario::launch`] +
//! `run_to_completion`) dispatches every event from one queue. This
//! module runs the *same* testbed on N OS threads: nodes are
//! partitioned round-robin across shards (`node i -> shard i % N`,
//! a node's switch port block riding along with it), each shard owns a
//! private [`ShardQueue`], and shards exchange in-flight cells over
//! `board::spsc`-style rings. Synchronisation is conservative: per
//! round every shard publishes the timestamp of its earliest pending
//! event, the global minimum `gmin` is taken at a barrier, and each
//! shard then executes every local event strictly before the horizon
//! `gmin + L`, where the lookahead `L` is one STS-3c cell time — the
//! minimum latency any cross-shard hop can possibly add (a cell must
//! at least finish serialising onto its link before it can arrive
//! anywhere else). Events a shard generates for a foreign node are
//! therefore always timestamped at or beyond the horizon, so no shard
//! can ever receive an event in its past: causality holds without
//! rollback.
//!
//! # Determinism
//!
//! Results are bit-identical to the sequential engine, not merely
//! statistically equivalent. Three mechanisms make that hold:
//!
//! 1. **Replicated build, partitioned dispatch.** Every shard thread
//!    builds the *full* testbed via [`Scenario::build`] (construction
//!    is deterministic, so all replicas are identical) and seeds the
//!    full scenario, but enqueues and dispatches only events owned by
//!    its nodes. Per-node RNG streams, fault streams
//!    ([`osiris_sim::faults::component_seed`]) and skew seeds are pure
//!    functions of the node index, so a replica's node `i` behaves
//!    exactly like the sequential engine's node `i`.
//! 2. **Partition-invariant tie-breaks.** Every event carries a
//!    [`PushKey`] `(t_push, origin, ctr)` — the time it was pushed,
//!    the node whose handler pushed it, and that origin's running push
//!    counter. Dispatch order is `(timestamp, PushKey)`, a total order
//!    that every partitioning (including the trivial one) agrees on.
//!    Same-origin ties replay the sequential engine's FIFO order
//!    exactly; cross-origin ties at one instant are ordered by origin
//!    on every partitioning alike.
//! 3. **Arrival-order switch state.** Stateful fabric routing runs at
//!    cell *arrival* time on the destination's shard
//!    ([`crate::testbed::Event::FabricTransit`]), in `(time, PushKey)`
//!    order — the order the hardware's output queues would see — so
//!    switch queue state evolves identically however nodes are
//!    partitioned.
//!
//! The only per-shard artefacts are the cell-slab placement counters
//! (`cells.*`): slot reuse depends on which cells co-reside in an
//! arena, so the merged snapshot re-scopes them to `shard<k>.cells.*`
//! and publishes a fabric-level `cells.slab_high_water` maximum.
//! [`RunOutcome::semantic_snapshot`] strips both spellings, and the
//! equivalence suite asserts the rest is byte-identical to a
//! single-threaded run.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use osiris_atm::{Cell, LinkSpec};
use osiris_board::spsc::SpscRing;
use osiris_sim::obs::{Counter, Gauge, Snapshot};
use osiris_sim::stats::{DurationHistogram, LatencyStats, ThroughputMeter};
use osiris_sim::{EventQueue, Model, PushKey, SeriesDump, ShardQueue, SimDuration, SimTime};

use crate::config::TestbedConfig;
use crate::node::NodeId;
use crate::scenario::Scenario;
use crate::telemetry::{run_sampled, Sampler};
use crate::testbed::Event;

/// The shard that owns node `node` under an `shards`-way partition.
/// Round-robin keeps paired endpoints (`2k`, `2k+1`) on different
/// shards, which is the interesting (communicating) case.
pub fn shard_of(node: NodeId, shards: usize) -> usize {
    node.0 % shards
}

/// A cell-bearing event in flight between shards. The cell itself
/// travels by value: the sender evicts it from its arena, the receiver
/// re-inserts it into its own, and only the owning shard's slab ever
/// holds a live cell.
struct WireMsg {
    /// Event timestamp (at or beyond the sender's horizon).
    at: SimTime,
    /// The sender-assigned dispatch key; receivers enqueue it verbatim
    /// so the global `(time, key)` order is partition-invariant.
    key: PushKey,
    /// Which event to rebuild on the receiving shard.
    ev: WireEvent,
    /// The in-flight cell, evicted from the sender's arena.
    cell: Cell,
}

/// The cell-free remainder of a cross-shard [`Event`].
enum WireEvent {
    /// [`Event::CellArrival`] at a foreign node.
    Arrival { to: NodeId, lane: usize },
    /// [`Event::FabricTransit`] addressed to a foreign port block.
    Transit {
        from: NodeId,
        to: NodeId,
        lane: usize,
    },
}

impl WireMsg {
    /// Extracts a staged foreign event into wire form, evicting its
    /// cell from `cells`. Only cell-bearing events can cross shards —
    /// every other event is pushed by its own node's handler.
    fn pack(at: SimTime, key: PushKey, ev: Event, cells: &mut osiris_atm::CellSlab) -> WireMsg {
        let (ev, cell) = match ev {
            Event::CellArrival { to, lane, cell } => (WireEvent::Arrival { to, lane }, cell),
            Event::FabricTransit {
                from,
                to,
                lane,
                cell,
            } => (WireEvent::Transit { from, to, lane }, cell),
            other => unreachable!("non-cell event {other:?} cannot cross shards"),
        };
        WireMsg {
            at,
            key,
            ev,
            cell: cells.remove(cell),
        }
    }

    /// Rebuilds the event on the receiving shard, inserting the cell
    /// into that shard's arena.
    fn unpack(self, cells: &mut osiris_atm::CellSlab) -> (SimTime, PushKey, Event) {
        let r = cells.insert(self.cell);
        let ev = match self.ev {
            WireEvent::Arrival { to, lane } => Event::CellArrival { to, lane, cell: r },
            WireEvent::Transit { from, to, lane } => Event::FabricTransit {
                from,
                to,
                lane,
                cell: r,
            },
        };
        (self.at, self.key, ev)
    }
}

/// One directed cross-shard channel: a fixed-capacity SPSC ring (the
/// common case, lock-free) with a mutex-guarded spill vector for
/// bursts beyond the ring. Receivers drain both and re-sort by
/// `(time, key)`, so which path a message took is unobservable.
struct Channel {
    ring: SpscRing<WireMsg>,
    spill: Mutex<Vec<WireMsg>>,
}

impl Channel {
    fn new() -> Self {
        Channel {
            ring: SpscRing::new(1024),
            spill: Mutex::new(Vec::new()),
        }
    }

    /// Sends `msg`, returning `true` if it spilled past the ring. Both
    /// the return and the post-push [`SpscRing::len`] are deterministic
    /// per round: consumers only drain after the round's second
    /// barrier, so within the exec phase a channel fills monotonically
    /// under its single producer.
    fn send(&self, msg: WireMsg) -> bool {
        if let Err(m) = self.ring.push(msg) {
            self.spill.lock().expect("spill lock").push(m);
            return true;
        }
        false
    }
}

/// Per-shard slice of the merged outcome, for scaling reports.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Events this shard's queue accepted (seeds + local + ingested).
    pub events_scheduled: u64,
    /// Events this shard dispatched.
    pub events_dispatched: u64,
    /// Peak live cells in this shard's arena.
    pub slab_high_water: f64,
    /// Barrier rounds this shard participated in (0 when sequential).
    pub rounds: u64,
    /// Wall-clock nanoseconds this shard spent waiting at round
    /// barriers — the engine's own load-imbalance cost, and the one
    /// deliberately non-virtual number in the outcome.
    pub barrier_stall_ns: u64,
    /// Cross-shard messages that overflowed an SPSC ring into the
    /// mutex-guarded spill path.
    pub spills: u64,
    /// Peak occupancy of any outbound SPSC ring, in messages.
    pub ring_high_water: f64,
}

/// The merged result of a scenario run, identical in shape whether it
/// ran on one thread or many.
#[derive(Debug)]
pub struct RunOutcome {
    /// Merged registry snapshot: counters summed, gauges maxed, and
    /// partition-dependent `cells.*` entries re-scoped to
    /// `shard<k>.cells.*` (plus a fabric-level max
    /// `cells.slab_high_water` gauge).
    pub snapshot: Snapshot,
    /// Merged end-to-end latency moments (float merge; use the
    /// histogram for exact cross-run comparison).
    pub latency: LatencyStats,
    /// Merged end-to-end latency histogram (bucket-exact).
    pub latency_hist: DurationHistogram,
    /// Merged goodput meter (exact under the scenarios' zero warmup).
    pub meter: ThroughputMeter,
    /// Whether any shard saw its completion condition.
    pub done: bool,
    /// Total verification failures across shards.
    pub verify_failures: u64,
    /// PDUs delivered to sinks, across shards.
    pub delivered: u64,
    /// Total events scheduled (equals the sequential engine's
    /// `engine.events.scheduled`).
    pub scheduled: u64,
    /// Total events dispatched (equals the sequential step count).
    pub dispatched: u64,
    /// Timestamp of the last dispatched event.
    pub last_event_time: SimTime,
    /// Shard count this outcome was produced under.
    pub shards: usize,
    /// Per-shard breakdown (one entry when sequential).
    pub per_shard: Vec<ShardStats>,
    /// Sampled time series when `cfg.sim.sample_every` was set (`None`
    /// otherwise). Sharded runs return every shard's series prefixed
    /// `shard<k>.`; the sequential engine's series keep plain names.
    pub series: Option<SeriesDump>,
}

impl RunOutcome {
    /// The partition-invariant view of the snapshot: everything except
    /// the metric families that legitimately depend on the partitioning
    /// or the engine's mechanics — the cell-arena placement metrics
    /// (`cells.*`), the engine self-profile (`profile.*`, wall-clock
    /// and per-shard by nature), the telemetry plane's own bookkeeping
    /// (`obs.*`, present only when sampling is on), the event-queue
    /// internals (`engine.queue.*`, backend-dependent), the switch's
    /// instantaneous depth gauge (last-writer), and the `shard<k>.`
    /// re-scoped spellings of all of these. Byte-compare its rendered
    /// JSON across shard counts, queue backends, and sampling on/off.
    pub fn semantic_snapshot(&self) -> Snapshot {
        fn keep(k: &str) -> bool {
            !is_partition_dependent_key(k)
        }
        Snapshot {
            counters: self
                .snapshot
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .snapshot
                .gauges
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            hists: self
                .snapshot
                .hists
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// A `BENCH_loss`-style one-line summary built exclusively from
    /// partition-invariant quantities, for byte-comparison across
    /// shard counts.
    pub fn goodput_line(&self) -> String {
        let s = self.semantic_snapshot();
        let sum = |suffix: &str| -> u64 {
            s.counters
                .iter()
                .filter(|(k, _)| k.ends_with(suffix))
                .map(|(_, v)| *v)
                .sum()
        };
        format!(
            "goodput {:>7.1} Mbps, p99 {:>8.1} us, {} delivered, {} retrans, {} reaps, {} dropped, {} corrupted, {} gave up",
            self.meter.mbps(),
            self.latency_hist.percentile_us(0.99),
            self.delivered,
            sum("stack.retransmits"),
            sum("board.rx.pdus_dropped_timeout"),
            sum("link.cells_dropped"),
            sum("link.cells_corrupted"),
            sum("stack.gave_up"),
        )
    }

    /// Load-imbalance headline: the busiest shard's dispatched-event
    /// count over the per-shard mean (`1.0` = perfectly balanced, and
    /// by construction for a sequential run). Deterministic — dispatch
    /// counts are part of the bit-identical result.
    pub fn shard_imbalance(&self) -> f64 {
        let max = self
            .per_shard
            .iter()
            .map(|s| s.events_dispatched)
            .max()
            .unwrap_or(0);
        if self.per_shard.is_empty() || self.dispatched == 0 {
            return 1.0;
        }
        let mean = self.dispatched as f64 / self.per_shard.len() as f64;
        max as f64 / mean
    }
}

/// Key prefixes whose values legitimately differ across partitionings,
/// queue backends, or sampling on/off — stripped from the semantic
/// snapshot (in both plain and `shard<k>.`-re-scoped spellings):
///
/// * `cells.` — arena placement depends on which cells co-reside;
/// * `profile.` — per-shard engine self-profiling, partly wall-clock;
/// * `obs.` — the sampler's own bookkeeping, present only when on;
/// * `engine.queue.` — calendar-queue internals, backend-dependent.
const PARTITION_DEPENDENT_PREFIXES: &[&str] = &["cells.", "profile.", "obs.", "engine.queue."];

/// True for keys the semantic snapshot must strip (see
/// [`PARTITION_DEPENDENT_PREFIXES`]), plus the switch's instantaneous
/// depth gauge, whose last writer depends on shard interleaving (its
/// high-water companion is max-merged and stays).
fn is_partition_dependent_key(k: &str) -> bool {
    let dependent = |k: &str| {
        PARTITION_DEPENDENT_PREFIXES
            .iter()
            .any(|p| k.starts_with(p))
            || k == "fabric.switch.queue_depth_cells"
    };
    if dependent(k) {
        return true;
    }
    if let Some(rest) = k.strip_prefix("shard") {
        if let Some(dot) = rest.find('.') {
            return !rest[..dot].is_empty()
                && rest[..dot].bytes().all(|b| b.is_ascii_digit())
                && dependent(&rest[dot + 1..]);
        }
    }
    false
}

/// True for keys the sharded merge re-scopes to `shard<k>.<key>`
/// instead of merging: per-shard state where a sum or max across
/// replicas would be meaningless.
fn is_per_shard_key(k: &str) -> bool {
    k.starts_with("cells.") || k.starts_with("profile.")
}

/// Runs `scenario` under `cfg.sim.shards` shards. `shards <= 1` is the
/// untouched sequential engine; `>= 2` is the parallel engine. Both
/// return the same [`RunOutcome`] shape.
pub fn run_scenario(scenario: Scenario, cfg: TestbedConfig) -> RunOutcome {
    let shards = cfg.sim.shards;
    if shards <= 1 {
        run_sequential(scenario, cfg)
    } else {
        run_sharded(scenario, cfg, shards)
    }
}

/// The historical engine, wrapped into a [`RunOutcome`]. When
/// `cfg.sim.sample_every` is set, the run loop additionally samples the
/// telemetry grid between dispatches — same dispatch order, same final
/// time, registry untouched but for the sampler's own `obs.*` scope.
fn run_sequential(scenario: Scenario, cfg: TestbedConfig) -> RunOutcome {
    let mut sim = scenario.launch(cfg);
    let sampler = sim.model.cfg.sim.sample_every.map(|every| {
        Sampler::new(
            &sim.model.registry,
            &sim.model.registry.probe("obs"),
            every,
            sim.model.cfg.sim.series_capacity,
        )
    });
    match &sampler {
        Some(s) => run_sampled(&mut sim, s),
        None => sim.run_to_completion(),
    }
    let series = sampler.map(|s| s.finish(sim.now()));
    let snapshot = sim.model.snapshot();
    let tb = &sim.model;
    RunOutcome {
        latency: tb.latency.clone(),
        latency_hist: tb.latency_hist.clone(),
        meter: tb.meter.clone(),
        done: tb.done,
        verify_failures: tb.verify_failures,
        delivered: tb.delivered_count,
        scheduled: sim.queue.total_pushed(),
        dispatched: sim.steps(),
        last_event_time: sim.now(),
        shards: 1,
        per_shard: vec![ShardStats {
            shard: 0,
            events_scheduled: sim.queue.total_pushed(),
            events_dispatched: sim.steps(),
            slab_high_water: snapshot.gauge("cells.slab_high_water"),
            rounds: 0,
            barrier_stall_ns: 0,
            spills: 0,
            ring_high_water: 0.0,
        }],
        snapshot,
        series,
    }
}

/// What one shard thread hands back for merging.
struct ShardResult {
    /// Registry state right after `Scenario::build`, before the probe
    /// attach and the seeds. Construction has real simulated cost
    /// (e.g. receive-buffer provisioning rides the bus), and every
    /// replica pays it for *all* nodes — so the merge sums per-shard
    /// deltas over this baseline and adds the (replica-identical)
    /// baseline back exactly once.
    base: Snapshot,
    snapshot: Snapshot,
    /// The scenario's global delivery target (identical in every
    /// replica). `done` must be judged against the *summed* delivered
    /// count: sink-terminated scenarios spread their sinks across
    /// shards, so no single shard sees every delivery.
    expected_deliveries: u64,
    latency: LatencyStats,
    latency_hist: DurationHistogram,
    meter: ThroughputMeter,
    done: bool,
    verify_failures: u64,
    delivered: u64,
    scheduled: u64,
    dispatched: u64,
    last_event_time: SimTime,
    /// This shard's sampled series (plain names; the merge prefixes
    /// them `shard<k>.`), when sampling was on.
    series: Option<SeriesDump>,
}

/// One shard's self-profiling instruments, registered under the
/// replica registry's `profile.*` scope (re-scoped `shard<k>.profile.*`
/// by the merge, stripped from the semantic snapshot — barrier stall
/// is wall-clock, the rest is per-shard by nature).
struct ShardProfile {
    rounds: Counter,
    barrier_stall_ns: Counter,
    spills: Counter,
    ring_high_water: Gauge,
    gmin_ps: Gauge,
    /// Shadow of `ring_high_water` (gauges have no read-modify max).
    ring_hw: f64,
}

impl ShardProfile {
    fn new(tb: &crate::testbed::Testbed) -> ShardProfile {
        let pp = tb.registry.probe("profile");
        ShardProfile {
            rounds: pp.counter("rounds"),
            barrier_stall_ns: pp.counter("barrier_stall_ns"),
            spills: pp.counter("spills"),
            ring_high_water: pp.gauge("ring_high_water"),
            gmin_ps: pp.gauge("gmin_ps"),
            ring_hw: 0.0,
        }
    }

    fn note_ring_occupancy(&mut self, occ: u32) {
        if occ as f64 > self.ring_hw {
            self.ring_hw = occ as f64;
            self.ring_high_water.set(self.ring_hw);
        }
    }
}

/// Spawns one thread per shard, runs the barrier-stepped rounds to
/// global quiescence, and merges the per-shard results.
fn run_sharded(scenario: Scenario, cfg: TestbedConfig, shards: usize) -> RunOutcome {
    // One STS-3c cell time: the hard floor on cross-shard latency. A
    // cell must fully serialise onto its transmit link before it can
    // arrive anywhere, and every cross-shard event is a cell arrival
    // or a switch transit at wire-arrival time.
    let lookahead = LinkSpec::sts3c_back_to_back().cell_time();
    let barrier = Barrier::new(shards);
    // Each shard owns one slot and publishes its earliest pending
    // timestamp there each round (u64::MAX = idle). Single-writer
    // slots avoid any fetch-min reset race.
    let slots: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
    // channels[s][d]: the directed s -> d lane (single producer,
    // single consumer by construction).
    let channels: Vec<Vec<Channel>> = (0..shards)
        .map(|_| (0..shards).map(|_| Channel::new()).collect())
        .collect();

    let results: Vec<ShardResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|k| {
                let cfg = &cfg;
                let barrier = &barrier;
                let slots = &slots[..];
                let channels = &channels[..];
                scope.spawn(move || {
                    run_shard(
                        k, shards, scenario, cfg, lookahead, barrier, slots, channels,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });

    merge(shards, results)
}

/// One shard's event loop: build a full replica, seed, then barrier-
/// stepped rounds of publish-min / agree-on-horizon / execute / drain.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    k: usize,
    shards: usize,
    scenario: Scenario,
    cfg: &TestbedConfig,
    lookahead: SimDuration,
    barrier: &Barrier,
    slots: &[AtomicU64],
    channels: &[Vec<Channel>],
) -> ShardResult {
    let mut tb = scenario.build(cfg.clone());
    let base = tb.snapshot();
    let mut q: ShardQueue<Event> = ShardQueue::new();
    q.attach_probe(&tb.registry.probe("engine"));
    // Registered after `base` so the merge's baseline add-back never
    // sees them; re-scoped per shard there instead.
    let mut profile = ShardProfile::new(&tb);
    let sampler = cfg.sim.sample_every.map(|every| {
        Sampler::new(
            &tb.registry,
            &tb.registry.probe("obs"),
            every,
            cfg.sim.series_capacity,
        )
    });
    // Handlers stage into a plain queue; the shard loop re-keys and
    // routes each staged event. Reused across dispatches.
    let mut staging: EventQueue<Event> = EventQueue::new();
    let n = tb.nodes.len();
    // Per-origin push counters — the `ctr` component of PushKey. All
    // replicas advance all counters identically (foreign events are
    // counted even though they are not enqueued locally), so a key
    // assigned by any shard matches the one the sequential engine's
    // FIFO order implies.
    let mut ctr = vec![0u64; n];

    for (owner, ev) in scenario.seed_events(&mut tb) {
        let key = PushKey::seed(owner.0 as u32, ctr[owner.0]);
        ctr[owner.0] += 1;
        if shard_of(owner, shards) == k {
            q.push(SimTime::ZERO, key, ev);
        }
    }

    let mut now = SimTime::ZERO;
    let mut dispatched = 0u64;
    let mut incoming: Vec<WireMsg> = Vec::new();

    loop {
        // Publish this shard's earliest pending work and agree on the
        // global minimum. Between the two barrier crossings every
        // shard is inside the same round, so the slot values are
        // stable while read.
        slots[k].store(q.peek_time().map_or(u64::MAX, |t| t.0), Ordering::Release);
        let stall = Instant::now();
        barrier.wait();
        profile
            .barrier_stall_ns
            .add(stall.elapsed().as_nanos() as u64);
        let gmin = slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .min()
            .expect("at least one shard");
        if gmin == u64::MAX {
            // Globally quiescent: all queues empty and (because every
            // round ends with a full channel drain) nothing in flight.
            break;
        }
        profile.rounds.incr();
        profile.gmin_ps.set(gmin as f64);
        if let Some(s) = &sampler {
            // Every event strictly before gmin — on every shard — has
            // already been dispatched (the previous round's horizon is
            // a lower bound on every queue), so grid points below gmin
            // read final state: the same values the sequential sampler
            // reads between its dispatches.
            s.sample_grid_before(SimTime(gmin));
        }
        let horizon = SimTime(gmin) + lookahead;

        // Execute every local event strictly before the horizon. Any
        // event this generates for a foreign node is a cell arrival at
        // least one cell time in the future, i.e. at or past the
        // horizon — asserted below.
        while q.peek_time().is_some_and(|t| t < horizon) {
            let (t, _key, ev) = q.pop().expect("peeked");
            debug_assert!(t >= now, "shard {k}: causality violation");
            debug_assert_eq!(shard_of(ev.owner(), shards), k, "event on wrong shard");
            now = t;
            dispatched += 1;
            if let Some(s) = &sampler {
                s.note_dispatch();
            }
            let origin = ev.owner();
            tb.handle(t, ev, &mut staging);
            while let Some((at, staged)) = staging.pop() {
                let key = PushKey {
                    t_push: t,
                    origin: origin.0 as u32,
                    ctr: ctr[origin.0],
                };
                ctr[origin.0] += 1;
                let dest = shard_of(staged.owner(), shards);
                if dest == k {
                    q.push(at, key, staged);
                } else {
                    debug_assert!(
                        at >= horizon,
                        "shard {k}: cross-shard event at {at:?} violates horizon {horizon:?}"
                    );
                    let ch = &channels[k][dest];
                    if ch.send(WireMsg::pack(at, key, staged, &mut tb.cells)) {
                        profile.spills.incr();
                    } else {
                        profile.note_ring_occupancy(ch.ring.len());
                    }
                }
            }
        }

        // Rendezvous, then drain everything the other shards sent this
        // round. Sorting by (time, key) before insertion keeps the
        // arena's slot-assignment order deterministic too.
        let stall = Instant::now();
        barrier.wait();
        profile
            .barrier_stall_ns
            .add(stall.elapsed().as_nanos() as u64);
        for (s, row) in channels.iter().enumerate() {
            if s == k {
                continue;
            }
            let ch = &row[k];
            while let Some(m) = ch.ring.pop() {
                incoming.push(m);
            }
            incoming.append(&mut ch.spill.lock().expect("spill lock"));
        }
        incoming.sort_by_key(|m| (m.at, m.key));
        for m in incoming.drain(..) {
            let (at, key, ev) = m.unpack(&mut tb.cells);
            q.push(at, key, ev);
        }
    }

    let series = sampler.map(|s| s.finish(now));
    ShardResult {
        base,
        snapshot: tb.snapshot(),
        expected_deliveries: tb.expected_deliveries,
        latency: tb.latency.clone(),
        latency_hist: tb.latency_hist.clone(),
        meter: tb.meter.clone(),
        done: tb.done,
        verify_failures: tb.verify_failures,
        delivered: tb.delivered_count,
        scheduled: q.total_pushed(),
        dispatched,
        last_event_time: now,
        series,
    }
}

/// Merges per-shard results into one [`RunOutcome`]. Counters sum
/// (each is driven by exactly one shard; replicas leave foreign scopes
/// at zero), gauges max, and the per-shard families — the arena's
/// `cells.*` and the engine self-profile's `profile.*` — are re-scoped
/// `shard<k>.*`, with a fabric-level `cells.slab_high_water` maximum
/// kept under the original name. Per-shard series dumps are prefixed
/// `shard<k>.` and absorbed into one [`SeriesDump`].
fn merge(shards: usize, results: Vec<ShardResult>) -> RunOutcome {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    let mut hists = BTreeMap::new();
    let mut latency = LatencyStats::default();
    let mut latency_hist: Option<DurationHistogram> = None;
    let mut meter: Option<ThroughputMeter> = None;
    let mut done = false;
    let mut verify_failures = 0;
    let mut delivered = 0;
    let mut scheduled = 0;
    let mut dispatched = 0;
    let mut last_event_time = SimTime::ZERO;
    let mut per_shard = Vec::with_capacity(results.len());
    let mut series: Option<SeriesDump> = None;

    for (k, r) in results.iter().enumerate() {
        for (key, v) in &r.snapshot.counters {
            if is_per_shard_key(key) {
                counters.insert(format!("shard{k}.{key}"), *v);
            } else {
                // Sum what this shard *did*, not what its replica
                // inherited from construction — the baseline is added
                // back once, below.
                let built = r.base.counters.get(key).copied().unwrap_or(0);
                *counters.entry(key.clone()).or_insert(0) += *v - built;
            }
        }
        for (key, g) in &r.snapshot.gauges {
            if is_per_shard_key(key) {
                gauges.insert(format!("shard{k}.{key}"), *g);
                if key != "cells.slab_high_water" {
                    continue;
                }
                // Fall through: also fold into the fabric-level max.
            }
            let e = gauges.entry(key.clone()).or_insert(*g);
            if *g > *e {
                *e = *g;
            }
        }
        for (key, h) in &r.snapshot.hists {
            hists.entry(key.clone()).or_insert(*h);
        }
        latency.absorb(&r.latency);
        latency_hist = Some(match latency_hist.take() {
            None => r.latency_hist.clone(),
            Some(mut h) => {
                h.absorb(&r.latency_hist);
                h
            }
        });
        meter = Some(match meter.take() {
            None => r.meter.clone(),
            Some(mut m) => {
                m.absorb(&r.meter);
                m
            }
        });
        done |= r.done;
        verify_failures += r.verify_failures;
        delivered += r.delivered;
        scheduled += r.scheduled;
        dispatched += r.dispatched;
        if r.last_event_time > last_event_time {
            last_event_time = r.last_event_time;
        }
        per_shard.push(ShardStats {
            shard: k,
            events_scheduled: r.scheduled,
            events_dispatched: r.dispatched,
            slab_high_water: r.snapshot.gauge("cells.slab_high_water"),
            rounds: r.snapshot.counter("profile.rounds"),
            barrier_stall_ns: r.snapshot.counter("profile.barrier_stall_ns"),
            spills: r.snapshot.counter("profile.spills"),
            ring_high_water: r.snapshot.gauge("profile.ring_high_water"),
        });
        if let Some(d) = r.series.clone() {
            let prefixed = d.prefixed(&format!("shard{k}"));
            match &mut series {
                None => series = Some(prefixed),
                Some(s) => s.absorb(prefixed),
            }
        }
    }
    // Sink-terminated scenarios complete when the fleet as a whole has
    // delivered everything; a single shard only ever sees its own
    // sinks' deliveries, so re-judge the flag globally.
    let expected = results[0].expected_deliveries;
    if expected > 0 {
        done = delivered >= expected;
    }
    // Construction cost is identical in every replica (the build is
    // deterministic and complete on each shard); add it back exactly
    // once so e.g. provisioning-time bus words are counted as the
    // sequential engine counts them.
    for (key, v) in &results[0].base.counters {
        if !is_per_shard_key(key) {
            *counters.entry(key.clone()).or_insert(0) += *v;
        }
    }
    // The merged scheduled counter must read as the sequential one:
    // the per-shard probes all published under `engine.events.
    // scheduled` and counters sum, so the merged snapshot already
    // equals `scheduled` — no fix-up needed, but make it explicit.
    debug_assert_eq!(counters.get("engine.events.scheduled"), Some(&scheduled));

    RunOutcome {
        snapshot: Snapshot {
            counters,
            gauges,
            hists,
        },
        latency,
        latency_hist: latency_hist.expect("at least one shard"),
        meter: meter.expect("at least one shard"),
        done,
        verify_failures,
        delivered,
        scheduled,
        dispatched,
        last_event_time,
        shards,
        per_shard,
        series,
    }
}
