//! Declarative topology + workload descriptions.
//!
//! A [`Scenario`] names a shape (how many nodes, which fabric, which
//! VCIs connect whom) and a workload (who sends, who absorbs, when the
//! run is complete). [`Scenario::build`] assembles the [`Testbed`];
//! [`Scenario::launch`] additionally wraps it in a
//! [`osiris_sim::Simulation`], attaches the event-queue probe, and seeds
//! the initial events — the way every experiment starts.

use osiris_adc::AdcManager;
use osiris_atm::{CellSlab, Vci};
use osiris_sim::stats::{DurationHistogram, LatencyStats, ThroughputMeter};
use osiris_sim::{EventQueue, Registry, SimDuration, SimTime, Simulation, Timeline, Trace};

use crate::config::{Layer, TestbedConfig};
use crate::fabric::{BackToBack, Fabric, SwitchedFabric};
use crate::node::{Endpoint, HostNode, NodeId, Role};
use crate::testbed::{DispatchCounters, Event, TbSyms, Testbed};

/// A topology + workload the testbed can assemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Two hosts, full duplex: node 0 pings, node 1 echoes (Table 1).
    Pair,
    /// One host absorbing fictitious PDUs from its own receive processor
    /// (Figures 2 and 3).
    RxBench,
    /// One host streaming out; cells vanish at the far end (Figure 4).
    TxBench,
    /// `senders` sources all streaming at one receiver through the
    /// switched fabric — the N-to-1 workload where free-ring pressure
    /// and interrupt suppression actually bite.
    Incast {
        /// Number of sending nodes (the receiver is one more node).
        senders: usize,
    },
    /// One source spraying messages round-robin at `receivers` sinks
    /// through the switched fabric (raw ATM only).
    FanOut {
        /// Number of receiving nodes (the source is one more node).
        receivers: usize,
    },
    /// `pairs` independent source→sink streams through the switched
    /// fabric: node `2k` streams `cfg.messages` messages at node
    /// `2k+1`. The embarrassingly-parallel counterpart to `Incast` —
    /// every stream owns its own receiver, so this is the workload the
    /// sharded engine's `scale` bench uses to measure speedup.
    ManyPairs {
        /// Number of source→sink pairs (the fabric has `2 * pairs` nodes).
        pairs: usize,
    },
}

impl Scenario {
    /// Number of nodes this scenario assembles.
    pub fn node_count(&self) -> usize {
        match *self {
            Scenario::Pair => 2,
            Scenario::RxBench | Scenario::TxBench => 1,
            Scenario::Incast { senders } => senders + 1,
            Scenario::FanOut { receivers } => receivers + 1,
            Scenario::ManyPairs { pairs } => 2 * pairs,
        }
    }

    /// The connection table: `endpoints[i]` are node `i`'s connections.
    fn endpoints(&self, cfg: &TestbedConfig) -> Vec<Vec<Endpoint>> {
        match *self {
            Scenario::Pair => (0..2)
                .map(|i| {
                    // Back-to-back, both directions use VCI 100 (separate
                    // physical links); through the switch each receiver
                    // owns a distinct VCI so directions stay separable.
                    let (tx_vci, rx_vci) = if cfg.switched_fabric {
                        (Vci(100 + (1 - i) as u16), Vci(100 + i as u16))
                    } else {
                        (Vci(100), Vci(100))
                    };
                    vec![Endpoint {
                        tx_vci,
                        rx_vci,
                        local_port: if i == 0 { 1000 } else { 2000 },
                        remote_port: if i == 0 { 2000 } else { 1000 },
                        remote_host: 1 - i as u16,
                        src: NodeId(1 - i),
                    }]
                })
                .collect(),
            Scenario::RxBench | Scenario::TxBench => vec![vec![Endpoint {
                tx_vci: Vci(100),
                rx_vci: Vci(100),
                local_port: 1000,
                remote_port: 2000,
                remote_host: 1,
                // The bench node's traffic carries its own pattern.
                src: NodeId(0),
            }]],
            Scenario::Incast { senders } => {
                // Forward VCIs 100+s carry sender s's data to the
                // receiver; reverse VCIs 200+s carry the receiver's
                // reliable-mode acks back to sender s (unused — but
                // routed — when reliable mode is off).
                let rcv = NodeId(senders);
                let mut eps: Vec<Vec<Endpoint>> = (0..senders)
                    .map(|s| {
                        vec![Endpoint {
                            tx_vci: Vci(100 + s as u16),
                            rx_vci: Vci(200 + s as u16),
                            local_port: 2000 + s as u16,
                            remote_port: 1000,
                            remote_host: senders as u16,
                            src: rcv,
                        }]
                    })
                    .collect();
                eps.push(
                    (0..senders)
                        .map(|s| Endpoint {
                            tx_vci: Vci(200 + s as u16),
                            rx_vci: Vci(100 + s as u16),
                            local_port: 1000,
                            remote_port: 2000 + s as u16,
                            remote_host: s as u16,
                            src: NodeId(s),
                        })
                        .collect(),
                );
                eps
            }
            Scenario::FanOut { receivers } => {
                let mut eps: Vec<Vec<Endpoint>> = vec![(1..=receivers)
                    .map(|j| Endpoint {
                        tx_vci: Vci(100 + j as u16),
                        rx_vci: Vci(100 + j as u16),
                        local_port: 1000,
                        remote_port: 2000 + j as u16,
                        remote_host: j as u16,
                        src: NodeId(j),
                    })
                    .collect()];
                for j in 1..=receivers {
                    eps.push(vec![Endpoint {
                        tx_vci: Vci(100 + j as u16),
                        rx_vci: Vci(100 + j as u16),
                        local_port: 2000 + j as u16,
                        remote_port: 1000,
                        remote_host: 0,
                        src: NodeId(0),
                    }]);
                }
                eps
            }
            Scenario::ManyPairs { pairs } => (0..2 * pairs)
                .map(|i| {
                    // Pair k: forward data on VCI 100+2k (source 2k →
                    // sink 2k+1), reverse (reliable-mode acks) on VCI
                    // 101+2k. Each node binds its receive VCI; ports
                    // are per-node, so 1000/2000 recur across pairs.
                    let k = i / 2;
                    let (fwd, rev) = (Vci(100 + 2 * k as u16), Vci(101 + 2 * k as u16));
                    if i % 2 == 0 {
                        vec![Endpoint {
                            tx_vci: fwd,
                            rx_vci: rev,
                            local_port: 1000,
                            remote_port: 2000,
                            remote_host: (i + 1) as u16,
                            src: NodeId(i + 1),
                        }]
                    } else {
                        vec![Endpoint {
                            tx_vci: rev,
                            rx_vci: fwd,
                            local_port: 2000,
                            remote_port: 1000,
                            remote_host: (i - 1) as u16,
                            src: NodeId(i - 1),
                        }]
                    }
                })
                .collect(),
        }
    }

    /// Assembles the testbed: nodes, fabric, roles, completion rule.
    pub fn build(&self, cfg: TestbedConfig) -> Testbed {
        match *self {
            Scenario::Incast { senders } => assert!(senders >= 1, "incast needs a sender"),
            Scenario::FanOut { receivers } => {
                assert!(receivers >= 1, "fan-out needs a receiver");
                assert_eq!(
                    cfg.layer,
                    Layer::RawAtm,
                    "fan-out sprays one source at many remotes; the UDP \
                     path binding is per-connection (use RawAtm)"
                );
            }
            Scenario::ManyPairs { pairs } => assert!(pairs >= 1, "many-pairs needs a pair"),
            _ => {}
        }
        let n = self.node_count();
        let registry = Registry::new();
        let sim_probe = registry.probe("sim");
        let trace = Trace::with_probe(cfg.sim.trace_capacity, &sim_probe);
        // Created before the nodes so every layer can hold a handle to
        // the one shared timeline (disabled until a caller opts in).
        let timeline = Timeline::with_probe(cfg.sim.timeline_capacity, &sim_probe);
        let endpoints = self.endpoints(&cfg);
        let mut nodes: Vec<HostNode> = Vec::with_capacity(n);
        let mut adc_mgrs: Vec<AdcManager> = Vec::new();
        for (i, eps) in endpoints.iter().enumerate() {
            let (node, adc) = HostNode::build(&cfg, NodeId(i), &registry, eps, &timeline);
            nodes.push(node);
            if let Some(m) = adc {
                adc_mgrs.push(m);
            }
        }

        // The fabric: back-to-back links by default; a switch when the
        // scenario (or the config, for pairs) asks for one.
        let switched = matches!(
            self,
            Scenario::Incast { .. } | Scenario::FanOut { .. } | Scenario::ManyPairs { .. }
        ) || (cfg.switched_fabric && *self == Scenario::Pair);
        let fabric: Box<dyn Fabric> = if switched {
            let mut f = SwitchedFabric::new(&cfg, &registry, n);
            // Each connection's VCI routes to the node that binds it.
            match *self {
                Scenario::Pair => {
                    for i in 0..2 {
                        f.connect(Vci(100 + i as u16), NodeId(i));
                    }
                }
                Scenario::Incast { senders } => {
                    for s in 0..senders {
                        f.connect(Vci(100 + s as u16), NodeId(senders));
                        // The reverse (ack) path back to each sender.
                        f.connect(Vci(200 + s as u16), NodeId(s));
                    }
                }
                Scenario::FanOut { receivers } => {
                    for j in 1..=receivers {
                        f.connect(Vci(100 + j as u16), NodeId(j));
                    }
                }
                Scenario::ManyPairs { pairs } => {
                    for k in 0..pairs {
                        f.connect(Vci(100 + 2 * k as u16), NodeId(2 * k + 1));
                        f.connect(Vci(101 + 2 * k as u16), NodeId(2 * k));
                    }
                }
                Scenario::RxBench | Scenario::TxBench => {}
            }
            Box::new(f)
        } else {
            Box::new(BackToBack::new(&cfg, &registry, n))
        };

        // The early-visibility bound (modelling note in `testbed`): one
        // receive DMA grant over the largest transfer the DMA mode (or
        // failing that, a whole page) permits.
        let max_xfer = cfg
            .rx_dma
            .max_len()
            .map(u64::from)
            .unwrap_or(cfg.machine.page_size as u64)
            .min(cfg.buffer_bytes as u64)
            .max(1);
        let drain_ahead_bound = nodes[0].host.mem_sys.spec.dma_write_time(max_xfer);

        // The cell arena and the dispatcher's interned timeline keys.
        let mut cells = CellSlab::new();
        cells.attach_probe(&registry.probe("cells"));
        let syms = TbSyms::intern(&timeline, n);
        let dispatch = DispatchCounters::new(&registry.probe("engine.dispatch"));

        let mut tb = Testbed {
            cfg,
            nodes,
            fabric,
            latency: LatencyStats::new(),
            latency_hist: DurationHistogram::new(),
            meter: ThroughputMeter::new(0),
            done: false,
            verify_failures: 0,
            adc: adc_mgrs,
            trace,
            registry,
            timeline,
            cells,
            syms,
            max_drain_ahead: SimDuration::ZERO,
            ping_sent_at: None,
            deliver_to_meter: false,
            tx_meter: false,
            expected_deliveries: 0,
            delivered_count: 0,
            drain_ahead_bound,
            eop_pushed: std::collections::HashMap::new(),
            switch_span_floor: std::collections::HashMap::new(),
            reap_scheduled: vec![false; n],
            reap_idle: vec![0; n],
            dispatch,
        };

        // Workload: roles, budgets, completion rule.
        match *self {
            Scenario::Pair => {
                tb.nodes[0].role = Role::PingClient;
                tb.nodes[0].remaining = tb.cfg.messages;
                tb.nodes[1].role = Role::PongServer;
            }
            Scenario::RxBench => {
                tb.nodes[0].role = Role::Generator;
                tb.nodes[0].remaining = tb.cfg.messages;
                tb.deliver_to_meter = true;
            }
            Scenario::TxBench => {
                tb.nodes[0].role = Role::Source;
                tb.nodes[0].remaining = tb.cfg.messages;
                tb.tx_meter = true;
            }
            Scenario::Incast { senders } => {
                for s in 0..senders {
                    tb.nodes[s].role = Role::Source;
                    tb.nodes[s].remaining = tb.cfg.messages;
                }
                tb.nodes[senders].role = Role::Sink;
                tb.deliver_to_meter = true;
                tb.expected_deliveries = senders as u64 * tb.cfg.messages;
            }
            Scenario::FanOut { receivers } => {
                tb.nodes[0].role = Role::Source;
                tb.nodes[0].remaining = tb.cfg.messages;
                // The source rotates over its connections per message.
                tb.nodes[0].tx_vcis = (1..=receivers).map(|j| Vci(100 + j as u16)).collect();
                for j in 1..=receivers {
                    tb.nodes[j].role = Role::Sink;
                }
                tb.deliver_to_meter = true;
                tb.expected_deliveries = tb.cfg.messages;
            }
            Scenario::ManyPairs { pairs } => {
                for k in 0..pairs {
                    tb.nodes[2 * k].role = Role::Source;
                    tb.nodes[2 * k].remaining = tb.cfg.messages;
                    tb.nodes[2 * k + 1].role = Role::Sink;
                }
                tb.deliver_to_meter = true;
                tb.expected_deliveries = pairs as u64 * tb.cfg.messages;
            }
        }
        tb
    }

    /// The scenario's initial events at time zero, in seeding order,
    /// with each event tagged by the node it drives. Performs the
    /// budget side effects (a seeded `AppSend` is message 1), so call
    /// it exactly once per built testbed. Shared by the sequential
    /// launch path and the per-shard replicas of the parallel engine —
    /// both must seed identically for the runs to match.
    pub(crate) fn seed_events(&self, tb: &mut Testbed) -> Vec<(NodeId, Event)> {
        match *self {
            Scenario::Pair => vec![(NodeId(0), Event::AppSend { host: NodeId(0) })],
            Scenario::RxBench => vec![(NodeId(0), Event::GenKick)],
            Scenario::TxBench | Scenario::FanOut { .. } => {
                // The seeded AppSend is message 1.
                tb.nodes[0].decrement_remaining();
                vec![(NodeId(0), Event::AppSend { host: NodeId(0) })]
            }
            Scenario::Incast { senders } => (0..senders)
                .map(|s| {
                    tb.nodes[s].decrement_remaining();
                    (NodeId(s), Event::AppSend { host: NodeId(s) })
                })
                .collect(),
            Scenario::ManyPairs { pairs } => (0..pairs)
                .map(|k| {
                    let src = NodeId(2 * k);
                    tb.nodes[src.0].decrement_remaining();
                    (src, Event::AppSend { host: src })
                })
                .collect(),
        }
    }

    /// Builds the testbed, wraps it in a simulation, attaches the
    /// event-queue probe (`engine.events.scheduled`), and seeds the
    /// scenario's initial events.
    pub fn launch(&self, cfg: TestbedConfig) -> Simulation<Testbed> {
        let tb = self.build(cfg);
        let mut sim = Simulation::new(tb);
        // The config selects the queue backend (calendar by default);
        // `(time, seq)` FIFO order is identical under either, so this
        // can never change results.
        sim.queue = EventQueue::with_kind(sim.model.cfg.sim.queue);
        sim.queue.attach_probe(&sim.model.registry.probe("engine"));
        for (_owner, ev) in self.seed_events(&mut sim.model) {
            sim.queue.push(SimTime::ZERO, ev);
        }
        sim
    }

    /// Runs the scenario to event-queue exhaustion under
    /// `cfg.sim.shards` shards and returns the merged outcome:
    /// `shards <= 1` is exactly [`Scenario::launch`] +
    /// `run_to_completion` (the historical engine, untouched);
    /// `shards >= 2` runs the conservative-lookahead parallel engine
    /// (see [`crate::shard`]), which produces byte-identical semantic
    /// snapshots by construction and by test.
    pub fn run(&self, cfg: TestbedConfig) -> crate::shard::RunOutcome {
        crate::shard::run_scenario(*self, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts() {
        assert_eq!(Scenario::Pair.node_count(), 2);
        assert_eq!(Scenario::RxBench.node_count(), 1);
        assert_eq!(Scenario::Incast { senders: 4 }.node_count(), 5);
        assert_eq!(Scenario::FanOut { receivers: 3 }.node_count(), 4);
    }

    #[test]
    fn pair_build_matches_legacy_constructor_shape() {
        let tb = Scenario::Pair.build(TestbedConfig::ds5000_200_udp());
        assert_eq!(tb.nodes.len(), 2);
        assert_eq!(tb.nodes[0].role, Role::PingClient);
        assert_eq!(tb.nodes[1].role, Role::PongServer);
        assert_eq!(tb.nodes[0].vci, Vci(100));
        assert_eq!(tb.nodes[1].vci, Vci(100));
        assert_eq!(tb.fabric.node_count(), 2);
    }

    #[test]
    fn incast_build_assigns_distinct_vcis_per_sender() {
        let tb = Scenario::Incast { senders: 4 }.build(TestbedConfig::ds5000_200_udp());
        assert_eq!(tb.nodes.len(), 5);
        for s in 0..4 {
            assert_eq!(tb.nodes[s].role, Role::Source);
            // Data goes out on 100+s; the reverse (ack) VCI 200+s is
            // what the sender binds for receive.
            assert_eq!(tb.nodes[s].tx_vcis, vec![Vci(100 + s as u16)]);
            assert_eq!(tb.nodes[s].vci, Vci(200 + s as u16));
        }
        assert_eq!(tb.nodes[4].role, Role::Sink);
        // The receiver binds every sender's VCI and knows the reverse
        // path back to each sender.
        for s in 0..4u16 {
            assert!(tb.nodes[4].src_of_vci.contains_key(&Vci(100 + s)));
            assert_eq!(tb.nodes[4].tx_vci_of_host.get(&s), Some(&Vci(200 + s)));
        }
    }

    #[test]
    fn launch_attaches_the_event_queue_probe() {
        let sim = Scenario::Pair.launch(TestbedConfig::ds5000_200_udp());
        assert_eq!(
            sim.model
                .registry
                .snapshot()
                .counter("engine.events.scheduled"),
            sim.queue.total_pushed()
        );
        assert_eq!(sim.queue.total_pushed(), 1);
    }
}
