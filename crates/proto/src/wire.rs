//! Wire formats with real byte encodings.
//!
//! Deviation (recorded in DESIGN.md): to support the paper's >64 KB
//! messages (footnote 5), the IP-like header carries 32-bit total-length
//! and fragment-offset fields (24 bytes total) and the UDP-like header a
//! 32-bit length (12 bytes total). Everything else — version field,
//! identification, more-fragments flag, protocol number, one's-complement
//! header checksum — follows IPv4/UDP structure, and the header checksum
//! is really computed and really verified.

use osiris_host::machine::internet_checksum;

/// Bytes in the IP-like header.
pub const IP_HEADER_BYTES: usize = 24;
/// Bytes in the UDP-like header.
pub const UDP_HEADER_BYTES: usize = 12;

/// The IP protocol number we use for UDP (matching IPv4).
pub const IPPROTO_UDP: u8 = 17;

/// The IP-like header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpHeader {
    /// Datagram identification (fragment grouping key).
    pub id: u32,
    /// Total payload length of the *original* datagram in bytes.
    pub total_len: u32,
    /// This fragment's payload offset in bytes.
    pub frag_off: u32,
    /// More fragments follow.
    pub more_frags: bool,
    /// Payload protocol.
    pub proto: u8,
    /// Source host (model-level address).
    pub src: u16,
    /// Destination host.
    pub dst: u16,
}

impl IpHeader {
    /// Encodes with a valid header checksum.
    pub fn encode(&self) -> [u8; IP_HEADER_BYTES] {
        let mut b = [0u8; IP_HEADER_BYTES];
        b[0] = 0x45; // version 4, "header length" marker
        b[1] = self.proto;
        b[2..4].copy_from_slice(&self.src.to_be_bytes());
        b[4..6].copy_from_slice(&self.dst.to_be_bytes());
        b[6..10].copy_from_slice(&self.id.to_be_bytes());
        b[10..14].copy_from_slice(&self.total_len.to_be_bytes());
        b[14..18].copy_from_slice(&self.frag_off.to_be_bytes());
        b[18] = self.more_frags as u8;
        // b[19] reserved, b[20..22] checksum, b[22..24] padding.
        let ck = internet_checksum(&b);
        b[20..22].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Decodes and verifies the header checksum.
    pub fn decode(b: &[u8]) -> Option<IpHeader> {
        if b.len() < IP_HEADER_BYTES || b[0] != 0x45 {
            return None;
        }
        // Re-checksum with the checksum field zeroed.
        let mut copy = [0u8; IP_HEADER_BYTES];
        copy.copy_from_slice(&b[..IP_HEADER_BYTES]);
        let stored = u16::from_be_bytes([copy[20], copy[21]]);
        copy[20] = 0;
        copy[21] = 0;
        if internet_checksum(&copy) != stored {
            return None;
        }
        Some(IpHeader {
            proto: b[1],
            src: u16::from_be_bytes([b[2], b[3]]),
            dst: u16::from_be_bytes([b[4], b[5]]),
            id: u32::from_be_bytes([b[6], b[7], b[8], b[9]]),
            total_len: u32::from_be_bytes([b[10], b[11], b[12], b[13]]),
            frag_off: u32::from_be_bytes([b[14], b[15], b[16], b[17]]),
            more_frags: b[18] != 0,
        })
    }
}

/// The UDP-like header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Data length in bytes (excluding this header).
    pub len: u32,
    /// Optional data checksum; 0 = checksumming disabled (as in §4's
    /// latency measurements: "UDP checksumming was turned off").
    pub cksum: u16,
}

impl UdpHeader {
    /// Encodes the header.
    pub fn encode(&self) -> [u8; UDP_HEADER_BYTES] {
        let mut b = [0u8; UDP_HEADER_BYTES];
        b[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        b[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        b[4..8].copy_from_slice(&self.len.to_be_bytes());
        b[8..10].copy_from_slice(&self.cksum.to_be_bytes());
        b
    }

    /// Decodes the header (no checksum over the header itself, as in UDP).
    pub fn decode(b: &[u8]) -> Option<UdpHeader> {
        if b.len() < UDP_HEADER_BYTES {
            return None;
        }
        Some(UdpHeader {
            src_port: u16::from_be_bytes([b[0], b[1]]),
            dst_port: u16::from_be_bytes([b[2], b[3]]),
            len: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            cksum: u16::from_be_bytes([b[8], b[9]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> IpHeader {
        IpHeader {
            id: 0xDEADBEEF,
            total_len: 100_000,
            frag_off: 16 * 1024,
            more_frags: true,
            proto: IPPROTO_UDP,
            src: 1,
            dst: 2,
        }
    }

    #[test]
    fn ip_roundtrip() {
        let h = hdr();
        let b = h.encode();
        assert_eq!(IpHeader::decode(&b), Some(h));
    }

    #[test]
    fn ip_supports_large_datagrams() {
        // The >64 KB modification of footnote 5.
        let mut h = hdr();
        h.total_len = 256 * 1024;
        h.frag_off = 240 * 1024;
        let b = h.encode();
        let d = IpHeader::decode(&b).unwrap();
        assert_eq!(d.total_len, 256 * 1024);
        assert_eq!(d.frag_off, 240 * 1024);
    }

    #[test]
    fn ip_header_checksum_catches_corruption() {
        let b = hdr().encode();
        for i in 0..IP_HEADER_BYTES {
            // Skip the padding bytes that don't affect decode, but still
            // require the checksum to catch changes to live fields.
            if i == 19 || i >= 22 {
                continue;
            }
            let mut bad = b;
            bad[i] ^= 0x40;
            assert_eq!(
                IpHeader::decode(&bad),
                None,
                "byte {i} corruption undetected"
            );
        }
    }

    #[test]
    fn ip_rejects_short_or_alien_input() {
        assert_eq!(IpHeader::decode(&[0u8; 10]), None);
        let mut b = hdr().encode();
        b[0] = 0x60; // "IPv6"
        assert_eq!(IpHeader::decode(&b), None);
    }

    #[test]
    fn udp_roundtrip() {
        let h = UdpHeader {
            src_port: 5001,
            dst_port: 7,
            len: 1 << 20,
            cksum: 0xABCD,
        };
        assert_eq!(UdpHeader::decode(&h.encode()), Some(h));
        assert_eq!(UdpHeader::decode(&[0u8; 4]), None);
    }
}
