//! Protocol paths: the connection ↔ VCI binding of §3.1.
//!
//! "The x-kernel provides a mechanism for establishing a path through the
//! protocol graph, where a path is given by the sequence of sessions that
//! will process incoming and outgoing messages on behalf of a particular
//! application-level connection. Each path is then bound to an unused VCI
//! by the device driver." The path table is the host-side mirror of the
//! board's VCI table: it keys fbuf caches, ADC ownership, and delivery.

use std::collections::HashMap;

use osiris_atm::{Vci, VciTable};
use osiris_host::domain::DomainId;

/// A path (connection) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub u32);

/// A UDP-level endpoint pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortAddr {
    /// Local port.
    pub local_port: u16,
    /// Remote port.
    pub remote_port: u16,
    /// Remote host (model address).
    pub remote_host: u16,
}

/// One established path.
#[derive(Debug, Clone, Copy)]
pub struct PathEntry {
    /// The path's VCI (bound for the connection's lifetime).
    pub vci: Vci,
    /// The UDP endpoints.
    pub ports: PortAddr,
    /// The protection domain that owns the endpoint.
    pub domain: DomainId,
    /// The board queue page serving this path (0 = kernel).
    pub queue_page: usize,
}

/// Host-side path registry + VCI allocation.
#[derive(Debug)]
pub struct PathTable {
    vcis: VciTable,
    paths: HashMap<PathId, PathEntry>,
    by_port: HashMap<u16, PathId>,
    next_id: u32,
}

impl Default for PathTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PathTable {
    /// A table treating VCIs as abundant (hundreds available).
    pub fn new() -> Self {
        PathTable {
            vcis: VciTable::new(32, 1024),
            paths: HashMap::new(),
            by_port: HashMap::new(),
            next_id: 1,
        }
    }

    /// Opens a path: binds a fresh VCI for the connection's lifetime.
    pub fn open(
        &mut self,
        ports: PortAddr,
        domain: DomainId,
        queue_page: usize,
    ) -> Option<(PathId, Vci)> {
        let id = PathId(self.next_id);
        let vci = self.vcis.bind_fresh(id.0)?;
        self.next_id += 1;
        self.paths.insert(
            id,
            PathEntry {
                vci,
                ports,
                domain,
                queue_page,
            },
        );
        self.by_port.insert(ports.local_port, id);
        Some((id, vci))
    }

    /// Opens a path on a *specific* VCI (the passive side agrees on the
    /// initiator's choice out of band, as the testbed harness does).
    pub fn open_on_vci(
        &mut self,
        vci: Vci,
        ports: PortAddr,
        domain: DomainId,
        queue_page: usize,
    ) -> Option<PathId> {
        if !self.vcis.bind(vci, self.next_id) {
            return None;
        }
        let id = PathId(self.next_id);
        self.next_id += 1;
        self.paths.insert(
            id,
            PathEntry {
                vci,
                ports,
                domain,
                queue_page,
            },
        );
        self.by_port.insert(ports.local_port, id);
        Some(id)
    }

    /// Path lookup by id.
    pub fn get(&self, id: PathId) -> Option<&PathEntry> {
        self.paths.get(&id)
    }

    /// Delivery demultiplexing by local port.
    pub fn by_local_port(&self, port: u16) -> Option<(PathId, &PathEntry)> {
        let id = *self.by_port.get(&port)?;
        Some((id, self.paths.get(&id)?))
    }

    /// Tears a path down, releasing its VCI.
    pub fn close(&mut self, id: PathId) {
        if let Some(e) = self.paths.remove(&id) {
            self.vcis.unbind(e.vci);
            self.by_port.remove(&e.ports.local_port);
        }
    }

    /// Number of live paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no paths are open.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ports(p: u16) -> PortAddr {
        PortAddr {
            local_port: p,
            remote_port: p + 1,
            remote_host: 2,
        }
    }

    #[test]
    fn open_binds_fresh_vcis() {
        let mut t = PathTable::new();
        let (a, va) = t.open(ports(100), DomainId::KERNEL, 0).unwrap();
        let (b, vb) = t.open(ports(200), DomainId(1), 3).unwrap();
        assert_ne!(va, vb);
        assert_ne!(a, b);
        assert_eq!(t.get(a).unwrap().queue_page, 0);
        assert_eq!(t.get(b).unwrap().domain, DomainId(1));
    }

    #[test]
    fn port_demux() {
        let mut t = PathTable::new();
        let (id, _) = t.open(ports(7), DomainId::KERNEL, 0).unwrap();
        let (found, entry) = t.by_local_port(7).unwrap();
        assert_eq!(found, id);
        assert_eq!(entry.ports.remote_port, 8);
        assert!(t.by_local_port(99).is_none());
    }

    #[test]
    fn close_releases_everything() {
        let mut t = PathTable::new();
        let (id, vci) = t.open(ports(7), DomainId::KERNEL, 0).unwrap();
        t.close(id);
        assert!(t.is_empty());
        assert!(t.by_local_port(7).is_none());
        // The VCI can be reused by an explicit binding.
        assert!(t.open_on_vci(vci, ports(9), DomainId::KERNEL, 0).is_some());
    }

    #[test]
    fn hundreds_of_paths() {
        let mut t = PathTable::new();
        for i in 0..500u16 {
            assert!(t.open(ports(1000 + i), DomainId::KERNEL, 0).is_some());
        }
        assert_eq!(t.len(), 500);
    }
}
