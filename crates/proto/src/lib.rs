//! # osiris-proto — the protocol substrate (x-kernel analog)
//!
//! The paper's host software is "the Mach 3.0 operating system retrofitted
//! with a network subsystem based on the x-kernel", running UDP/IP over the
//! OSIRIS driver with a 16 KB MTU and optional UDP checksumming. This crate
//! supplies that stack:
//!
//! * [`wire`] — header formats with real byte encodings and the Internet
//!   checksum. Following the paper's footnote ("our otherwise standard
//!   implementations of IP and UDP were modified to support message sizes
//!   larger than 64 KB"), length and offset fields are 32-bit.
//! * [`frag`] — IP fragmentation arithmetic, including §2.2's rule:
//!   "choosing an MTU size that is a multiple of the page size, plus the
//!   IP header size … ensures that fragment boundaries align with page
//!   boundaries".
//! * [`msg`] — the x-kernel message tool: a chain of address/length
//!   segments supporting cheap header prepend and fragment split without
//!   copying data.
//! * [`stack`] — the cost-charging protocol engine: builds real packets in
//!   host memory on output, parses and reassembles on input, and — when
//!   UDP checksumming meets a stale cache (§2.3) — performs the paper's
//!   lazy invalidate-and-re-evaluate recovery.
//! * [`graph`] — protocol paths: the connection ↔ VCI binding that feeds
//!   early demultiplexing (§3.1).

pub mod frag;
pub mod graph;
pub mod msg;
pub mod stack;
pub mod wire;

pub use frag::{fragment_layout, FragPlan};
pub use graph::{PathId, PathTable, PortAddr};
pub use msg::Message;
pub use stack::{ProtoConfig, ProtoStack, RxVerdict, TxPacket};
pub use wire::{IpHeader, UdpHeader, IP_HEADER_BYTES, UDP_HEADER_BYTES};
