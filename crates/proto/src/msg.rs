//! The x-kernel message tool.
//!
//! A message is a chain of `(address, length)` segments; protocols prepend
//! headers and split messages *without copying data* — the property that
//! makes the copy-free data path of reference \[9\] possible and that turns into the
//! physical-buffer-count arithmetic of §2.2 once addresses are translated.
//!
//! The chain is generic over its address type: `Message<VirtAddr>` on the
//! transmit side (application/kernel virtual memory), `Message<PhysAddr>`
//! on the receive side (the driver's physically contiguous buffers).

/// Address types a message can reference.
pub trait MsgAddr: Copy + std::fmt::Debug {
    /// Address arithmetic.
    fn add(self, bytes: u64) -> Self;
}

impl MsgAddr for osiris_mem::VirtAddr {
    fn add(self, bytes: u64) -> Self {
        self.offset(bytes)
    }
}

impl MsgAddr for osiris_mem::PhysAddr {
    fn add(self, bytes: u64) -> Self {
        self.offset(bytes)
    }
}

/// One contiguous segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg<A> {
    /// Segment start.
    pub addr: A,
    /// Length in bytes.
    pub len: u32,
}

/// A message: an ordered chain of segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message<A> {
    segs: Vec<Seg<A>>,
}

impl<A: MsgAddr> Default for Message<A> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<A: MsgAddr> Message<A> {
    /// The empty message.
    pub fn empty() -> Self {
        Message { segs: Vec::new() }
    }

    /// A message of one segment.
    pub fn single(addr: A, len: u32) -> Self {
        let mut m = Message::empty();
        if len > 0 {
            m.segs.push(Seg { addr, len });
        }
        m
    }

    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.segs.iter().map(|s| s.len as u64).sum()
    }

    /// True if the message carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// The segments, in order.
    pub fn segs(&self) -> &[Seg<A>] {
        &self.segs
    }

    /// Prepends a header segment (x-kernel `msgPush`).
    pub fn push_header(&mut self, addr: A, len: u32) {
        if len > 0 {
            self.segs.insert(0, Seg { addr, len });
        }
    }

    /// Strips `n` bytes from the front (x-kernel `msgPop`), returning the
    /// stripped prefix as its own message. Panics if `n > len`.
    pub fn pop_header(&mut self, n: u32) -> Message<A> {
        assert!(n as u64 <= self.len(), "pop beyond message");
        let mut popped = Message::empty();
        let mut need = n;
        while need > 0 {
            let first = self.segs[0];
            if first.len <= need {
                popped.segs.push(first);
                self.segs.remove(0);
                need -= first.len;
            } else {
                popped.segs.push(Seg {
                    addr: first.addr,
                    len: need,
                });
                self.segs[0] = Seg {
                    addr: first.addr.add(need as u64),
                    len: first.len - need,
                };
                need = 0;
            }
        }
        popped
    }

    /// Splits off the first `n` bytes (x-kernel fragmentation), leaving the
    /// remainder in `self`. Panics if `n > len`.
    pub fn split_off_front(&mut self, n: u64) -> Message<A> {
        assert!(n <= self.len(), "split beyond message");
        let mut front = Message::empty();
        let mut need = n;
        while need > 0 {
            let first = self.segs[0];
            if first.len as u64 <= need {
                front.segs.push(first);
                self.segs.remove(0);
                need -= first.len as u64;
            } else {
                front.segs.push(Seg {
                    addr: first.addr,
                    len: need as u32,
                });
                self.segs[0] = Seg {
                    addr: first.addr.add(need),
                    len: first.len - need as u32,
                };
                need = 0;
            }
        }
        front
    }

    /// Appends another message (x-kernel `msgJoin`).
    pub fn join(&mut self, other: Message<A>) {
        self.segs.extend(other.segs);
    }

    /// Number of segments (each becomes at least one physical buffer).
    pub fn seg_count(&self) -> usize {
        self.segs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_mem::VirtAddr;

    fn va(x: u64) -> VirtAddr {
        VirtAddr(x)
    }

    #[test]
    fn single_and_len() {
        let m = Message::single(va(0x1000), 500);
        assert_eq!(m.len(), 500);
        assert_eq!(m.seg_count(), 1);
        assert!(Message::<VirtAddr>::single(va(0), 0).is_empty());
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut m = Message::single(va(0x1000), 100);
        m.push_header(va(0x2000), 24);
        assert_eq!(m.len(), 124);
        assert_eq!(m.seg_count(), 2);
        let hdr = m.pop_header(24);
        assert_eq!(hdr.len(), 24);
        assert_eq!(hdr.segs()[0].addr, va(0x2000));
        assert_eq!(m.len(), 100);
        assert_eq!(m.segs()[0].addr, va(0x1000));
    }

    #[test]
    fn pop_across_segments() {
        let mut m = Message::single(va(0x1000), 10);
        m.push_header(va(0x2000), 4);
        let popped = m.pop_header(7); // all of the header + 3 data bytes
        assert_eq!(popped.len(), 7);
        assert_eq!(popped.seg_count(), 2);
        assert_eq!(m.len(), 7);
        assert_eq!(m.segs()[0].addr, va(0x1003));
    }

    #[test]
    fn split_partial_segment() {
        let mut m = Message::single(va(0), 1000);
        let front = m.split_off_front(300);
        assert_eq!(front.len(), 300);
        assert_eq!(m.len(), 700);
        assert_eq!(m.segs()[0].addr, va(300));
    }

    #[test]
    fn split_and_rejoin_preserves_layout() {
        let mut m = Message::single(va(0), 4096);
        m.push_header(va(0x9000), 24);
        let original = m.clone();
        let front = m.split_off_front(2000);
        let mut rejoined = front;
        rejoined.join(m);
        assert_eq!(rejoined.len(), original.len());
        // Byte-position ↔ address mapping is preserved even if the segment
        // count differs.
        let flat = |msg: &Message<VirtAddr>| -> Vec<(u64, u64)> {
            msg.segs().iter().map(|s| (s.addr.0, s.len as u64)).fold(
                Vec::new(),
                |mut acc, (a, l)| {
                    // Coalesce adjacent for comparison.
                    if let Some(last) = acc.last_mut() {
                        if last.0 + last.1 == a {
                            last.1 += l;
                            return acc;
                        }
                    }
                    acc.push((a, l));
                    acc
                },
            )
        };
        assert_eq!(flat(&rejoined), flat(&original));
    }

    #[test]
    #[should_panic(expected = "split beyond message")]
    fn split_too_far_panics() {
        let mut m = Message::single(va(0), 10);
        m.split_off_front(11);
    }

    #[test]
    fn fragmenting_a_message_like_ip_does() {
        // 16 KB message, 4072-byte fragments (the misaligned case).
        let mut m = Message::single(va(0x4000), 16 * 1024);
        let mut frags = Vec::new();
        while !m.is_empty() {
            let take = m.len().min(4072);
            frags.push(m.split_off_front(take));
        }
        assert_eq!(frags.len(), 5);
        assert_eq!(frags.iter().map(|f| f.len()).sum::<u64>(), 16 * 1024);
        // Each fragment starts where the previous ended.
        for w in frags.windows(2) {
            let end = w[0].segs().last().map(|s| s.addr.0 + s.len as u64).unwrap();
            assert_eq!(w[1].segs()[0].addr.0, end);
        }
    }
}
